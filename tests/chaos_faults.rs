//! Chaos suite for the fault-injection plane: under *any* fault schedule the
//! join must return either the exact brute-force pair set or a typed error —
//! never a silently wrong result. The suite also pins the two guarantees the
//! plane's design leans on: same-seed runs are bit-for-bit repeatable, and an
//! attached-but-empty plane is indistinguishable from no plane at all.
//!
//! CI shifts the seed matrix without editing this file by exporting
//! `CHAOS_SEED_BASE` (default 0); every seeded test offsets its seeds by it.

use proptest::prelude::*;
use simjoin::{
    Balancing, BatchingConfig, HybridPolicy, RecoveryPolicy, SelfJoin, SelfJoinConfig,
    ShardStrategy, SortBackend,
};
use sj_integration_support::{
    brute_force_dyn, chaos_dataset, join_dyn_chaos, join_dyn_hybrid_chaos, join_fleet_dyn_chaos,
    small_batches,
};
use sj_telemetry::{Event, JsonTelemetry, Value, NULL};
use warpsim::{FaultPlane, FaultProfile, FaultSchedule};

const BALANCINGS: [Balancing; 3] = [
    Balancing::None,
    Balancing::SortByWorkload,
    Balancing::WorkQueue,
];

fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Telemetry events with host wall-clock fields removed: only the model
/// (pairs, cycles, model seconds) is deterministic across runs, so
/// byte-identity claims must ignore `host_ns`-style observations.
fn model_events(sink: &JsonTelemetry) -> Vec<Event> {
    sink.events()
        .into_iter()
        .map(|mut e| {
            e.fields.retain(|(k, _)| !k.contains("host"));
            e
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every named fault profile, any seed, any balancing: the join either
    /// matches brute force exactly or fails with a typed, renderable error.
    #[test]
    fn seeded_profiles_are_exact_or_typed(
        seed in 0u64..1_000_000,
        profile_idx in 0usize..6,
        balancing_idx in 0usize..3,
    ) {
        let (pts, eps) = chaos_dataset();
        let expected = brute_force_dyn(&pts, eps);
        let name = FaultProfile::names()[profile_idx];
        let profile = FaultProfile::by_name(name).unwrap();
        let plane = FaultPlane::seeded(seed_base().wrapping_add(seed), &profile);
        let config = SelfJoinConfig::new(eps)
            .with_balancing(BALANCINGS[balancing_idx])
            .with_batching(small_batches(expected.len()));
        match join_dyn_chaos(&pts, config, &plane, &NULL) {
            Ok((pairs, report)) => {
                prop_assert_eq!(pairs, expected, "profile {} corrupted the result", name);
                // Any injected fault must be visible in the report.
                if plane.injected_faults() > 0 {
                    prop_assert!(report.degradation.is_some(), "profile {}", name);
                }
            }
            Err(err) => {
                prop_assert!(!err.to_string().is_empty());
            }
        }
    }

    /// Hand-composed schedules (not just the named profiles): the builder
    /// combinators stack without breaking exactness.
    #[test]
    fn composed_schedules_are_exact_or_typed(
        transient_launch in 0u64..4,
        bump in 1u64..16,
        stall_s in 1e-3f64..0.5,
        overflow_launch in 0u64..4,
    ) {
        let (pts, eps) = chaos_dataset();
        let expected = brute_force_dyn(&pts, eps);
        let schedule = FaultSchedule::new()
            .transient_at(transient_launch)
            .counter_bump_at(2, bump)
            .transfer_stall_at(1, stall_s)
            .overflow_at(overflow_launch);
        let plane = FaultPlane::new(schedule);
        let config = SelfJoinConfig::optimized(eps).with_batching(small_batches(expected.len()));
        match join_dyn_chaos(&pts, config, &plane, &NULL) {
            Ok((pairs, _)) => prop_assert_eq!(pairs, expected),
            Err(err) => prop_assert!(!err.to_string().is_empty()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fault schedules landing during the device sort/scan pre-pass obey the
    /// same contract as mid-join faults: the join returns the exact pair set
    /// or a typed error, and any injected fault is visible — either as batch
    /// degradation or on the pre-pass report (retries / host fallback).
    #[test]
    fn prepass_fault_schedules_are_exact_or_typed(
        seed in 0u64..1_000_000,
        profile_idx in 0usize..6,
        balancing_idx in 1usize..3, // SortByWorkload | WorkQueue: the pre-pass runs
    ) {
        let (pts, eps) = chaos_dataset();
        let expected = brute_force_dyn(&pts, eps);
        let name = FaultProfile::names()[profile_idx];
        let profile = FaultProfile::by_name(name).unwrap();
        let plane = FaultPlane::seeded(seed_base().wrapping_add(seed), &profile);
        let config = SelfJoinConfig::new(eps)
            .with_balancing(BALANCINGS[balancing_idx])
            .with_batching(BatchingConfig {
                balanced_queue: true,
                ..small_batches(expected.len())
            })
            .with_sort_backend(SortBackend::Device);
        match join_dyn_chaos(&pts, config, &plane, &NULL) {
            Ok((pairs, report)) => {
                prop_assert_eq!(pairs, expected, "profile {} corrupted the result", name);
                if plane.injected_faults() > 0 {
                    let pp = report.prepass.unwrap_or_default();
                    prop_assert!(
                        report.degradation.is_some()
                            || pp.transient_retries > 0
                            || pp.degraded_to_host,
                        "profile {}: injected fault invisible in the report",
                        name
                    );
                }
            }
            Err(err) => {
                prop_assert!(!err.to_string().is_empty());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fleet failover invariant: for any seeded fault schedule landing on
    /// any device of a 1–4 device fleet, the resharding executor returns
    /// **exactly** the clean pair set (the CPU last resort guarantees no
    /// typed error under the default policy) — never a wrong result.
    #[test]
    fn fleet_reshard_is_exact_under_any_seeded_schedule(
        seed in 0u64..1_000_000,
        profile_idx in 0usize..6,
        devices in 1usize..=4,
        faulted_offset in 0usize..4,
        balancing_idx in 0usize..3,
    ) {
        let (pts, eps) = chaos_dataset();
        let expected = brute_force_dyn(&pts, eps);
        let name = FaultProfile::names()[profile_idx];
        let profile = FaultProfile::by_name(name).unwrap();
        let config = SelfJoinConfig::new(eps)
            .with_balancing(BALANCINGS[balancing_idx])
            .with_batching(small_batches(expected.len()));
        let faults = vec![(
            faulted_offset % devices,
            FaultSchedule::seeded(seed_base().wrapping_add(seed), &profile),
        )];
        match join_fleet_dyn_chaos(&pts, config, devices, ShardStrategy::WorkloadAware, &faults) {
            Ok((pairs, _, fleet)) => {
                prop_assert_eq!(
                    pairs, expected,
                    "profile {} on device {}/{} corrupted the fleet result",
                    name, faulted_offset % devices, devices
                );
                prop_assert_eq!(fleet.shards.len(), devices);
            }
            Err(err) => prop_assert!(!err.to_string().is_empty()),
        }
    }

    /// Hand-composed schedules on *several* devices at once: builder
    /// combinators stack across the fleet without breaking exactness.
    #[test]
    fn fleet_survives_composed_schedules_on_multiple_devices(
        transient_launch in 0u64..4,
        lost_launch in 0u64..6,
        bump in 1u64..16,
        overflow_launch in 0u64..4,
        devices in 2usize..=4,
    ) {
        let (pts, eps) = chaos_dataset();
        let expected = brute_force_dyn(&pts, eps);
        let config = SelfJoinConfig::new(eps)
            .with_balancing(Balancing::WorkQueue)
            .with_batching(small_batches(expected.len()));
        let faults = vec![
            (0, FaultSchedule::new().device_lost_at(lost_launch)),
            (
                1,
                FaultSchedule::new()
                    .transient_at(transient_launch)
                    .counter_bump_at(1, bump)
                    .overflow_at(overflow_launch),
            ),
        ];
        match join_fleet_dyn_chaos(&pts, config, devices, ShardStrategy::WorkloadAware, &faults) {
            Ok((pairs, _, fleet)) => {
                prop_assert_eq!(pairs, expected, "multi-device schedule corrupted the result");
                // Device 0 is lost at some launch; if it had work and died
                // before finishing it, recovery must have intervened.
                if fleet.recovery.devices_lost > 0 {
                    prop_assert!(
                        fleet.recovery.reshard_rounds > 0
                            || fleet.recovery.cpu_last_resort_points > 0
                            || fleet.recovery.reassigned_units == 0,
                        "a lost device's remnants must be reassigned or CPU-finished"
                    );
                }
            }
            Err(err) => prop_assert!(!err.to_string().is_empty()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hybrid co-processing under chaos: for any seeded fault schedule and
    /// any balancing, `ExecMode::Hybrid` under the reshard policy returns
    /// the exact brute-force pair set or a typed error — and a device lost
    /// mid-run hands its unexecuted remainder to the CPU **backend** (a
    /// peer, visible as spilled units), never to last-resort degradation.
    #[test]
    fn hybrid_reshard_spills_to_cpu_backend_under_any_seeded_schedule(
        seed in 0u64..1_000_000,
        profile_idx in 0usize..6,
        balancing_idx in 0usize..3,
        jobs in 1usize..=4,
    ) {
        let (pts, eps) = chaos_dataset();
        let expected = brute_force_dyn(&pts, eps);
        let name = FaultProfile::names()[profile_idx];
        let profile = FaultProfile::by_name(name).unwrap();
        let plane = FaultPlane::seeded(seed_base().wrapping_add(seed), &profile);
        let config = SelfJoinConfig::new(eps)
            .with_balancing(BALANCINGS[balancing_idx])
            .with_batching(small_batches(expected.len()))
            .with_recovery(RecoveryPolicy::reshard());
        let policy = HybridPolicy::default().with_jobs(jobs);
        match join_dyn_hybrid_chaos(&pts, config, &policy, &plane, &NULL) {
            Ok((pairs, report, hybrid)) => {
                prop_assert_eq!(pairs, expected, "profile {} corrupted the hybrid result", name);
                // Reshard policy: a lost device's remnants spill to the CPU
                // backend; the last-resort degradation path must stay idle.
                if let Some(d) = report.degradation.as_ref() {
                    prop_assert_eq!(
                        d.points_degraded, 0,
                        "profile {}: reshard recovery must not degrade points", name
                    );
                    if d.device_lost {
                        prop_assert!(
                            hybrid.spilled_units > 0 || hybrid.cpu_units > 0,
                            "profile {}: a lost device's remainder must reach \
                             the CPU backend", name
                        );
                    }
                }
            }
            Err(err) => prop_assert!(!err.to_string().is_empty()),
        }
    }

    /// Hand-composed fault schedules under a *forced* hybrid split: the cut
    /// and the fault plane interleave arbitrarily, and the result is still
    /// exact or typed.
    #[test]
    fn hybrid_forced_split_survives_composed_schedules(
        lost_launch in 0u64..6,
        transient_launch in 0u64..4,
        overflow_launch in 0u64..4,
        fraction in 0.0f64..=1.0,
    ) {
        let (pts, eps) = chaos_dataset();
        let expected = brute_force_dyn(&pts, eps);
        let schedule = FaultSchedule::new()
            .device_lost_at(lost_launch)
            .transient_at(transient_launch)
            .overflow_at(overflow_launch);
        let plane = FaultPlane::new(schedule);
        let config = SelfJoinConfig::optimized(eps)
            .with_batching(small_batches(expected.len()))
            .with_recovery(RecoveryPolicy::reshard());
        let policy = HybridPolicy::default().with_forced_cpu_fraction(fraction);
        match join_dyn_hybrid_chaos(&pts, config, &policy, &plane, &NULL) {
            Ok((pairs, _, hybrid)) => {
                prop_assert_eq!(pairs, expected, "forced split corrupted the result");
                prop_assert!(hybrid.forced);
            }
            Err(err) => prop_assert!(!err.to_string().is_empty()),
        }
    }
}

/// A device lost mid-run under `ExecMode::Hybrid` + reshard recovery hands
/// the GPU's unexecuted remainder to the CPU backend: the spill is visible
/// on the hybrid report and in `hybrid.spill` telemetry, the last-resort
/// degradation path stays idle, and the merged join is exact.
#[test]
fn hybrid_device_loss_reshards_remainder_onto_cpu_backend() {
    let (pts, eps) = chaos_dataset();
    let expected = brute_force_dyn(&pts, eps);
    let plane = FaultPlane::new(FaultSchedule::new().device_lost_at(1));
    let sink = JsonTelemetry::new("hybrid-device-lost");
    let config = SelfJoinConfig::optimized(eps)
        .with_batching(small_batches(expected.len()))
        .with_recovery(RecoveryPolicy::reshard());
    let (pairs, report, hybrid) =
        join_dyn_hybrid_chaos(&pts, config, &HybridPolicy::default(), &plane, &sink).unwrap();

    assert_eq!(pairs, expected, "resharded hybrid join must stay exact");
    assert!(
        hybrid.spilled_units > 0,
        "the lost device's remainder must spill onto the CPU backend"
    );
    if let Some(d) = report.degradation.as_ref() {
        assert!(d.device_lost);
        assert_eq!(
            d.points_degraded, 0,
            "reshard recovery must not use the last-resort degradation path"
        );
    }
    let spills = sink.events_named("hybrid", "spill");
    assert_eq!(spills.len(), 1, "spill event is emitted exactly once");
    assert_eq!(
        spills[0].field("device_lost"),
        Some(&Value::Bool(true)),
        "the spill must be attributed to the device loss"
    );
    assert_eq!(
        spills[0].field("units"),
        Some(&Value::U64(hybrid.spilled_units as u64))
    );
}

/// A transient launch fault landing on the *first pre-pass dispatch* is
/// retried inside the pre-pass: the join stays exact, the retry and its
/// backoff are accounted on the pre-pass report, and nothing degrades.
#[test]
fn transient_prepass_fault_is_retried_and_exact() {
    let (pts, eps) = chaos_dataset();
    let expected = brute_force_dyn(&pts, eps);
    let plane = FaultPlane::new(FaultSchedule::new().transient_at(0));
    let sink = JsonTelemetry::new("prepass-transient");
    let config = SelfJoinConfig::new(eps)
        .with_balancing(Balancing::SortByWorkload)
        .with_batching(small_batches(expected.len()))
        .with_sort_backend(SortBackend::Device);
    let (pairs, report) = join_dyn_chaos(&pts, config, &plane, &sink).unwrap();

    assert_eq!(pairs, expected, "retried pre-pass must not change the join");
    assert_eq!(
        plane.injected_faults(),
        1,
        "the transient landed in the pre-pass"
    );
    assert!(
        report.degradation.is_none(),
        "a pre-pass retry is not a batch degradation"
    );
    let pp = report.prepass.expect("device pre-pass report");
    assert_eq!(pp.transient_retries, 1);
    assert!(pp.backoff_s > 0.0, "retry backoff must be accounted");
    assert!(!pp.degraded_to_host);
    assert!(
        pp.sort_invocations > 0,
        "the sort ran on the device after retry"
    );
    assert_eq!(
        sink.events_named("executor", "prepass_degraded").len(),
        0,
        "a recovered transient is not a degradation"
    );
}

/// Losing the device on the first pre-pass dispatch degrades the *sort* to
/// the host path — with a telemetry event recording the degradation — while
/// the join itself still completes exactly.
#[test]
fn device_loss_in_prepass_degrades_sort_to_host_with_event() {
    let (pts, eps) = chaos_dataset();
    let expected = brute_force_dyn(&pts, eps);
    let plane = FaultPlane::new(FaultSchedule::new().device_lost_at(0));
    let sink = JsonTelemetry::new("prepass-lost");
    let config = SelfJoinConfig::new(eps)
        .with_balancing(Balancing::WorkQueue)
        .with_batching(BatchingConfig {
            balanced_queue: true,
            ..small_batches(expected.len())
        })
        .with_sort_backend(SortBackend::Device);
    let (pairs, report) = join_dyn_chaos(&pts, config, &plane, &sink).unwrap();

    assert_eq!(pairs, expected, "host-degraded planning must stay exact");
    let pp = report.prepass.expect("device pre-pass report");
    assert!(pp.degraded_to_host, "pre-pass must record the fallback");
    assert_eq!(
        pp.sort_invocations, 0,
        "after the loss no device primitive completes"
    );
    let events = sink.events_named("executor", "prepass_degraded");
    assert_eq!(events.len(), 1, "degradation event is emitted exactly once");
    assert_eq!(
        events[0].field("class"),
        Some(&Value::Str("device_lost".into()))
    );
    assert_eq!(
        events[0].field("site"),
        Some(&Value::Str("workqueue_order".into()))
    );
}

#[test]
fn same_seed_replays_to_the_same_outcome() {
    let (pts, eps) = chaos_dataset();
    let expected = brute_force_dyn(&pts, eps);
    for name in FaultProfile::names() {
        let profile = FaultProfile::by_name(name).unwrap();
        let run = || {
            let plane = FaultPlane::seeded(seed_base().wrapping_add(42), &profile);
            let config =
                SelfJoinConfig::optimized(eps).with_batching(small_batches(expected.len()));
            let outcome = join_dyn_chaos(&pts, config, &plane, &NULL);
            (outcome, plane.injected_faults())
        };
        let (first, first_faults) = run();
        let (second, second_faults) = run();
        assert_eq!(first_faults, second_faults, "{name}: fault count drifted");
        match (first, second) {
            (Ok((pairs_a, report_a)), Ok((pairs_b, report_b))) => {
                assert_eq!(pairs_a, pairs_b, "{name}: pair set drifted");
                assert_eq!(
                    report_a.response_time_s(),
                    report_b.response_time_s(),
                    "{name}: model time drifted"
                );
                assert_eq!(
                    report_a.degradation, report_b.degradation,
                    "{name}: recovery accounting drifted"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "{name}"),
            (a, b) => panic!("{name}: outcomes diverged: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn empty_plane_run_is_identical_to_no_plane_run() {
    let (pts, eps) = chaos_dataset();
    let config = SelfJoinConfig::optimized(eps);

    let bare_sink = JsonTelemetry::new("no-plane");
    let bare = SelfJoin::new(&pts.as_fixed::<2>().unwrap(), config.clone())
        .unwrap()
        .with_telemetry(&bare_sink)
        .run()
        .unwrap();

    let plane = FaultPlane::new(FaultSchedule::new());
    let plane_sink = JsonTelemetry::new("empty-plane");
    let (pairs, report) = join_dyn_chaos(&pts, config, &plane, &plane_sink).unwrap();

    assert_eq!(plane.injected_faults(), 0);
    assert_eq!(pairs, bare.result.sorted_pairs());
    assert_eq!(report.response_time_s(), bare.report.response_time_s());
    assert_eq!(report.pipeline.total_s, bare.report.pipeline.total_s);
    assert_eq!(report.totals.cycles, bare.report.totals.cycles);
    assert!(
        report.degradation.is_none(),
        "clean run must not report recovery"
    );
    // Event-for-event identical once host wall-clock observations are
    // stripped — attaching an idle plane changes nothing the model can see.
    assert_eq!(model_events(&plane_sink), model_events(&bare_sink));
}

#[test]
fn device_lost_mid_join_degrades_with_visible_report() {
    let (pts, eps) = chaos_dataset();
    let expected = brute_force_dyn(&pts, eps);
    let plane = FaultPlane::new(FaultSchedule::new().device_lost_at(1));
    let sink = JsonTelemetry::new("device-lost");
    let config = SelfJoinConfig::optimized(eps).with_batching(small_batches(expected.len()));
    let (pairs, report) = join_dyn_chaos(&pts, config, &plane, &sink).unwrap();

    assert_eq!(pairs, expected, "degraded join must still be exact");
    let d = report.degradation.expect("device loss must be reported");
    assert!(d.device_lost);
    assert!(d.batches_salvaged >= 1, "at least one GPU batch salvaged");
    assert!(d.points_degraded > 0, "remaining points went to the CPU");
    assert!(d.cpu_pairs > 0);
    assert!(d.cpu_model_s > 0.0);

    // The degradation must be visible in telemetry, not only in the report.
    let events = sink.events_named("executor", "degradation");
    assert_eq!(events.len(), 1);
    let event = &events[0];
    assert_eq!(
        event.field("points_degraded"),
        Some(&Value::U64(d.points_degraded as u64))
    );
    assert_eq!(event.field("cpu_pairs"), Some(&Value::U64(d.cpu_pairs)));
    let summary = sink.events_named("executor", "join_summary");
    assert_eq!(summary.len(), 1);
    assert_eq!(summary[0].field("degraded"), Some(&Value::Bool(true)));
}
