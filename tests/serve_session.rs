//! End-to-end tests of the always-on serve daemon ([`simjoin::serve`]):
//! the strict-JSON line protocol stays exact against a brute-force oracle
//! while the dataset churns, admission failures are typed (never panics,
//! never a dead session), and the service telemetry stream is strict JSON.
//!
//! Barrier-flush semantics under test: mutations, `flush`, `stats`, and
//! `shutdown` all execute the queued queries first, so every queued query
//! is answered against the dataset exactly as it stood at admission.

use simjoin::{Reply, Request, SelfJoinConfig, ServeConfig, ServeSession};
use sj_telemetry::json::{self, JsonValue};
use sj_telemetry::JsonTelemetry;
use sjdata::DatasetSpec;

/// A small skewed 2-D dataset plus a mid-sweep ε — the serve sessions here
/// are oracle-checked, so they stay brute-forceable.
fn serve_dataset() -> (Vec<[f32; 2]>, f32) {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(250).as_fixed::<2>().unwrap();
    let eps = spec.epsilons[2] * 1.5;
    (pts, eps)
}

/// The exact ε-neighborhood of `point_id` in `pts`, ascending.
fn oracle_neighbors(pts: &[[f32; 2]], point_id: u32, eps: f32) -> Vec<u32> {
    let mut out: Vec<u32> = simjoin::brute_force_join(pts, eps)
        .into_iter()
        .filter(|&(a, _)| a == point_id)
        .map(|(_, b)| b)
        .collect();
    out.sort_unstable();
    out
}

/// Drives a whole churn-and-query session through the line protocol and
/// checks every answer against a brute-force mirror of the point set.
/// Every response line must also round-trip through the strict JSON
/// parser — the protocol promises RFC 8259 output, not almost-JSON.
#[test]
fn line_protocol_session_is_exact_under_churn() {
    let (pts, eps) = serve_dataset();
    let mut mirror = pts.clone();
    let mut session =
        ServeSession::new(pts, SelfJoinConfig::new(eps), ServeConfig::default()).unwrap();

    let probe = |mirror: &Vec<[f32; 2]>| [3u32, 17, 42, (mirror.len() - 1) as u32];
    let mut lines: Vec<String> = Vec::new();
    for round in 0..3 {
        // Mutate first: the swap-remove mirror must apply the same moves.
        let seed = mirror[(round * 7) % mirror.len()];
        let new_point = [seed[0] + 0.02, seed[1] + 0.01];
        lines.push(format!(
            "{{\"op\": \"insert\", \"point\": [{}, {}]}}",
            new_point[0], new_point[1]
        ));
        mirror.push(new_point);
        let victim = (round * 11) as u32;
        lines.push(format!("{{\"op\": \"remove\", \"point_id\": {victim}}}"));
        mirror.swap_remove(victim as usize);
        // Queries admitted after the mutations see the mutated dataset.
        for pid in probe(&mirror) {
            lines.push(format!(
                "{{\"op\": \"query\", \"point_id\": {pid}, \"eps\": {eps}}}"
            ));
        }
        lines.push(format!("{{\"op\": \"join\", \"eps\": {eps}}}"));
        lines.push("{\"op\": \"flush\"}".to_string());
    }
    lines.push("{\"op\": \"stats\"}".to_string());
    lines.push("{\"op\": \"shutdown\"}".to_string());

    // Expected answers, in protocol order: the flush at the end of each
    // round answers that round's queries against that round's mirror.
    let mut expected: Vec<Vec<u32>> = Vec::new();
    {
        let mut m = serve_dataset().0;
        for round in 0..3 {
            let seed = m[(round * 7) % m.len()];
            m.push([seed[0] + 0.02, seed[1] + 0.01]);
            m.swap_remove(round * 11);
            for pid in probe(&m) {
                expected.push(oracle_neighbors(&m, pid, eps));
            }
        }
    }
    let expected_pairs = simjoin::brute_force_join(&mirror, eps).len() as u64;

    let mut answers: Vec<Vec<u32>> = Vec::new();
    let mut join_pairs: Vec<u64> = Vec::new();
    for line in &lines {
        for response in session.handle_line(line) {
            let doc = json::parse(&response)
                .unwrap_or_else(|e| panic!("response is not strict JSON: {e}\n{response}"));
            assert_eq!(
                doc.get("ok").and_then(JsonValue::as_bool),
                Some(true),
                "unexpected failure line: {response}"
            );
            match doc.get("op").and_then(JsonValue::as_str) {
                Some("query") => answers.push(
                    doc.get("neighbors")
                        .and_then(JsonValue::as_array)
                        .expect("neighbors array")
                        .iter()
                        .map(|v| v.as_u64().expect("neighbor id") as u32)
                        .collect(),
                ),
                Some("join") => {
                    join_pairs.push(doc.get("pairs").and_then(JsonValue::as_u64).unwrap());
                }
                _ => {}
            }
        }
    }
    assert!(session.is_shut_down());
    assert_eq!(
        answers, expected,
        "a served neighborhood diverged from brute force"
    );
    assert_eq!(join_pairs.last().copied(), Some(expected_pairs));
    let report = session.report();
    assert_eq!(report.queries, 12);
    assert_eq!(report.joins, 3);
    assert_eq!(report.inserts, 3);
    assert_eq!(report.removes, 3);
    assert_eq!(report.errors, 0);
    assert_eq!(report.rejected, 0);
    assert_eq!(
        report.incremental_reindexes + report.full_rebuilds,
        6,
        "every mutation must be accounted as incremental or rebuild"
    );
}

/// Overflowing the bounded admission queue is a typed `queue_full` line;
/// the session keeps serving afterwards, and the queued work still
/// executes exactly.
#[test]
fn queue_overflow_is_typed_and_the_session_survives() {
    let (pts, eps) = serve_dataset();
    let mirror = pts.clone();
    let cfg = ServeConfig {
        queue_capacity: 2,
        ..ServeConfig::default()
    };
    let mut session = ServeSession::new(pts, SelfJoinConfig::new(eps), cfg).unwrap();
    for pid in [1u32, 2] {
        assert!(session
            .handle_line(&format!(
                "{{\"op\": \"query\", \"point_id\": {pid}, \"eps\": {eps}}}"
            ))
            .is_empty());
    }
    let rejected = session.handle_line(&format!(
        "{{\"op\": \"query\", \"point_id\": 3, \"eps\": {eps}}}"
    ));
    assert_eq!(rejected.len(), 1);
    let doc = json::parse(&rejected[0]).unwrap();
    assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        doc.get("kind").and_then(JsonValue::as_str),
        Some("queue_full")
    );
    // The two admitted queries still flush exactly.
    let flushed = session.handle_line("{\"op\": \"flush\"}");
    let mut seen = 0;
    for line in &flushed {
        let doc = json::parse(line).unwrap();
        if doc.get("op").and_then(JsonValue::as_str) == Some("query") {
            let pid = doc.get("point_id").and_then(JsonValue::as_u64).unwrap() as u32;
            let neighbors: Vec<u32> = doc
                .get("neighbors")
                .and_then(JsonValue::as_array)
                .unwrap()
                .iter()
                .map(|v| v.as_u64().unwrap() as u32)
                .collect();
            assert_eq!(neighbors, oracle_neighbors(&mirror, pid, eps));
            seen += 1;
        }
    }
    assert_eq!(seen, 2);
    let report = session.report();
    assert_eq!(report.rejected, 1);
    assert_eq!(report.errors, 0);
}

/// The service telemetry stream (request, coalesce, reindex events) is a
/// strict-JSON document, and every mutation emits exactly one reindex
/// event naming its maintenance kind.
#[test]
fn serve_telemetry_is_strict_json_and_names_reindex_kinds() {
    let (pts, eps) = serve_dataset();
    let sink = JsonTelemetry::new("serve-test");
    let mut session = ServeSession::new(pts, SelfJoinConfig::new(eps), ServeConfig::default())
        .unwrap()
        .with_telemetry(&sink);
    session.request(Request::Insert {
        point: [0.21, 0.17],
    });
    session.request(Request::Query {
        point_id: 0,
        epsilon: eps,
    });
    session.request(Request::Query {
        point_id: 9,
        epsilon: eps,
    });
    session.request(Request::Remove { point_id: 4 });
    session.request(Request::Shutdown);
    drop(session);

    let doc = json::parse(&sink.to_json()).expect("serve telemetry must be strict JSON");
    let events = doc.get("events").and_then(JsonValue::as_array).unwrap();
    let named = |name: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("scope").and_then(JsonValue::as_str) == Some("serve")
                    && e.get("name").and_then(JsonValue::as_str) == Some(name)
            })
            .count()
    };
    assert_eq!(named("reindex"), 2, "one reindex event per mutation");
    assert!(
        named("request") >= 4,
        "every query and mutation is recorded"
    );
    assert!(
        named("coalesce") >= 1,
        "the two same-ε queries share a launch and record it"
    );
    for event in events {
        if event.get("name").and_then(JsonValue::as_str) == Some("reindex") {
            let kind = event
                .get("fields")
                .and_then(|f| f.get("kind"))
                .and_then(JsonValue::as_str)
                .unwrap();
            assert!(kind == "incremental" || kind == "rebuild", "kind = {kind}");
        }
    }
}

/// Structured-API churn at a foreign ε (≠ the maintained grid's ε) still
/// answers exactly: the daemon falls back to a throwaway index rather
/// than serving approximate answers from the wrong grid.
#[test]
fn foreign_epsilon_queries_stay_exact_after_churn() {
    let (pts, eps) = serve_dataset();
    let mut mirror = pts.clone();
    let mut session =
        ServeSession::new(pts, SelfJoinConfig::new(eps), ServeConfig::default()).unwrap();
    session.request(Request::Insert {
        point: [0.42, 0.13],
    });
    mirror.push([0.42, 0.13]);
    session.request(Request::Remove { point_id: 2 });
    mirror.swap_remove(2);

    let foreign = eps * 1.7;
    let responses = session.request(Request::Query {
        point_id: 5,
        epsilon: foreign,
    });
    assert!(responses.is_empty(), "queries queue until a barrier");
    let flushed = session.request(Request::Flush);
    let neighbors = flushed
        .iter()
        .find_map(|r| match &r.reply {
            Reply::Neighbors { neighbors, .. } => Some(neighbors.clone()),
            _ => None,
        })
        .expect("the flush answers the queued query");
    assert_eq!(neighbors, oracle_neighbors(&mirror, 5, foreign));
}
