//! LID-UNICOMP pair coverage on degenerate grids (§III-B): 1×N strips,
//! single-cell datasets, and points sitting exactly on cell boundaries.
//!
//! These are the geometries where the linearized-id ±1 window reasoning is
//! easiest to get wrong: a strip collapses one grid axis, a single cell has
//! no neighbor cells at all, and boundary points make both the cell
//! assignment and the `distance ≤ ε` test sit on the knife edge.

use proptest::prelude::*;
use simjoin::{brute_force_join, AccessPattern, SelfJoin, SelfJoinConfig};

fn lid_pairs(pts: &[[f32; 2]], eps: f32) -> Vec<(u32, u32)> {
    let config = SelfJoinConfig::new(eps).with_pattern(AccessPattern::LidUnicomp);
    let outcome = SelfJoin::new(pts, config).unwrap().run().unwrap();
    outcome.result.sorted_pairs()
}

fn expected(pts: &[[f32; 2]], eps: f32) -> Vec<(u32, u32)> {
    let mut pairs = brute_force_join(pts, eps);
    pairs.sort_unstable();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All points on one line: the grid degenerates to a 1×N strip, so every
    /// neighbor lies along a single axis of the window.
    #[test]
    fn strip_grid_matches_brute_force(
        xs in prop::collection::vec(-20.0f32..20.0, 1..60),
        eps in 0.1f32..5.0,
    ) {
        let pts: Vec<[f32; 2]> = xs.iter().map(|&x| [x, 0.0]).collect();
        prop_assert_eq!(lid_pairs(&pts, eps), expected(&pts, eps));
    }

    /// Every point inside one ε-cell: the whole join is the local-cell
    /// interaction LID-UNICOMP handles separately from its window halves.
    #[test]
    fn single_cell_matches_brute_force(
        pts in prop::collection::vec(prop::array::uniform2(0.0f32..0.9), 1..60),
    ) {
        let eps = 1.0;
        prop_assert_eq!(lid_pairs(&pts, eps), expected(&pts, eps));
    }

    /// Coordinates that are exact multiples of ε: many coincident points,
    /// distances exactly ε, and cell assignments on bin boundaries.
    #[test]
    fn boundary_points_match_brute_force(
        cells in prop::collection::vec(prop::array::uniform2(0u32..6u32), 1..50),
        eps in 0.25f32..2.0,
    ) {
        let pts: Vec<[f32; 2]> =
            cells.iter().map(|&[i, j]| [i as f32 * eps, j as f32 * eps]).collect();
        prop_assert_eq!(lid_pairs(&pts, eps), expected(&pts, eps));
    }
}
