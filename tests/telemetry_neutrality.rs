//! The telemetry layer is observation-only: attaching the JSON sink must not
//! change the pair set, the elapsed model cycles, the WEE, or the model
//! seconds of any run — telemetry on vs off is invisible to the simulation.

use simjoin::{AccessPattern, Balancing, SelfJoinConfig};
use sj_telemetry::{JsonTelemetry, Telemetry, SCHEMA_VERSION};
use sjdata::DatasetSpec;

fn run2d(
    pts: &[[f32; 2]],
    config: SelfJoinConfig,
    telemetry: &dyn Telemetry,
) -> (Vec<(u32, u32)>, simjoin::JoinReport) {
    let outcome = simjoin::SelfJoin::new(pts, config)
        .expect("config")
        .with_telemetry(telemetry)
        .run()
        .expect("join");
    (outcome.result.sorted_pairs(), outcome.report)
}

#[test]
fn json_sink_changes_nothing_in_the_gpu_join() {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(2_500).as_fixed::<2>().unwrap();
    let configs = [
        ("baseline", SelfJoinConfig::new(0.4)),
        (
            "optimized",
            SelfJoinConfig::new(0.4)
                .with_balancing(Balancing::WorkQueue)
                .with_pattern(AccessPattern::LidUnicomp)
                .with_k(8),
        ),
    ];
    for (label, config) in configs {
        let sink = JsonTelemetry::new(label);
        let (pairs_null, report_null) = run2d(&pts, config.clone(), &sj_telemetry::NULL);
        let (pairs_json, report_json) = run2d(&pts, config, &sink);

        assert_eq!(pairs_null, pairs_json, "{label}: pair set");
        assert_eq!(report_null.wee(), report_json.wee(), "{label}: WEE");
        assert_eq!(
            report_null.response_time_s(),
            report_json.response_time_s(),
            "{label}: model seconds"
        );
        assert_eq!(
            report_null.num_batches, report_json.num_batches,
            "{label}: batches"
        );
        let cycles = |r: &simjoin::JoinReport| {
            r.batches
                .iter()
                .map(|b| b.launch.elapsed_cycles())
                .collect::<Vec<_>>()
        };
        assert_eq!(
            cycles(&report_null),
            cycles(&report_json),
            "{label}: elapsed cycles"
        );

        // And the sink actually observed the run.
        assert!(!sink.is_empty(), "{label}: sink recorded nothing");
        let doc = sink.to_json();
        assert!(
            doc.contains(SCHEMA_VERSION),
            "{label}: missing schema version"
        );
        assert!(doc.contains("\"scope\": \"warpsim.launch\""), "{label}");
        assert!(doc.contains("\"scope\": \"executor.phase\""), "{label}");
        assert!(doc.contains("\"name\": \"join_summary\""), "{label}");
    }
}

#[test]
fn json_sink_changes_nothing_in_superego() {
    let spec = DatasetSpec::by_name("Unif3D2M").unwrap();
    let pts = spec.generate(1_500).as_fixed::<3>().unwrap();
    let config = superego::SuperEgoConfig::new(0.8);
    let sink = JsonTelemetry::new("superego");

    let plain = superego::super_ego_join(&pts, &config);
    let observed = superego::super_ego_join_with(&pts, &config, &sink);

    let sort = |mut v: Vec<(u32, u32)>| {
        v.sort_unstable();
        v
    };
    assert_eq!(sort(plain.pairs), sort(observed.pairs));
    assert_eq!(plain.stats.distance_calcs, observed.stats.distance_calcs);
    assert_eq!(plain.stats.pairs_found, observed.stats.pairs_found);
    assert!(sink.to_json().contains("\"scope\": \"superego.phase\""));
}
