//! End-to-end equivalence: every kernel variant, on every dataset family,
//! returns exactly the brute-force pair set.

use simjoin::{AccessPattern, Balancing, SelfJoinConfig};
use sj_integration_support::{brute_force_dyn, join_dyn, small_datasets};

#[test]
fn all_variants_match_brute_force_on_all_families() {
    for (name, pts, eps) in small_datasets(400) {
        let expected = brute_force_dyn(&pts, eps);
        for pattern in [
            AccessPattern::FullWindow,
            AccessPattern::Unicomp,
            AccessPattern::LidUnicomp,
        ] {
            for balancing in [
                Balancing::None,
                Balancing::SortByWorkload,
                Balancing::WorkQueue,
            ] {
                let config = SelfJoinConfig::new(eps)
                    .with_pattern(pattern)
                    .with_balancing(balancing);
                let label = format!("{name}: {}", config.label());
                let (pairs, _) = join_dyn(&pts, config);
                assert_eq!(pairs, expected, "{label}");
            }
        }
    }
}

#[test]
fn k_granularity_matches_brute_force_on_all_families() {
    for (name, pts, eps) in small_datasets(300) {
        let expected = brute_force_dyn(&pts, eps);
        for k in [2u32, 4, 8, 16] {
            let config = SelfJoinConfig::optimized(eps).with_k(k);
            let (pairs, _) = join_dyn(&pts, config);
            assert_eq!(pairs, expected, "{name}, k = {k}");
        }
    }
}

#[test]
fn duplicate_and_degenerate_data_survive_the_pipeline() {
    // Many coincident points (zero-extent grid dimensions) plus outliers.
    let mut coords = Vec::new();
    for _ in 0..50 {
        coords.extend_from_slice(&[1.0f32, 2.0]);
    }
    coords.extend_from_slice(&[100.0, 2.0, 1.0, 200.0]);
    let pts = epsgrid::DynPoints::from_interleaved(2, coords);
    let expected = brute_force_dyn(&pts, 0.5);
    assert_eq!(expected.len(), 50 * 49);
    for config in [SelfJoinConfig::new(0.5), SelfJoinConfig::optimized(0.5)] {
        let (pairs, _) = join_dyn(&pts, config);
        assert_eq!(pairs, expected);
    }
}
