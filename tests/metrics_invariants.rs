//! Invariants of the efficiency metrics and the paper's qualitative claims
//! about them, checked end-to-end on generated datasets.

use simjoin::{AccessPattern, Balancing, SelfJoinConfig};
use sj_integration_support::join_dyn;
use sjdata::DatasetSpec;

#[test]
fn wee_is_a_valid_efficiency_everywhere() {
    for (spec, eps_ix) in DatasetSpec::table1()
        .into_iter()
        .zip([0usize, 2, 4].into_iter().cycle())
    {
        let pts = spec.generate(800);
        let eps = spec.epsilons[eps_ix] * 1.5;
        let (_, report) = join_dyn(&pts, SelfJoinConfig::new(eps));
        let wee = report.wee();
        assert!((0.0..=1.0).contains(&wee), "{}: WEE {wee}", spec.name);
    }
}

#[test]
fn workqueue_improves_wee_and_time_on_skewed_data() {
    // Table V's headline claim, end-to-end on the exponential dataset.
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(8_000);
    let eps = 0.5;
    let (_, base) = join_dyn(&pts, SelfJoinConfig::new(eps));
    let (_, wq) = join_dyn(
        &pts,
        SelfJoinConfig::new(eps).with_balancing(Balancing::WorkQueue),
    );
    assert!(
        wq.wee() > base.wee(),
        "WORKQUEUE WEE {:.3} must beat baseline {:.3}",
        wq.wee(),
        base.wee()
    );
    assert!(
        wq.response_time_s() < base.response_time_s() * 1.05,
        "WORKQUEUE must not lose time on skewed data"
    );
}

#[test]
fn workqueue_does_not_help_uniform_data_much() {
    // Fig. 11 (c)-(d): on uniform data, balancing buys little.
    let spec = DatasetSpec::by_name("Unif2D2M").unwrap();
    let pts = spec.generate(8_000);
    let eps = spec.epsilons[4];
    let (_, base) = join_dyn(&pts, SelfJoinConfig::new(eps));
    let (_, wq) = join_dyn(
        &pts,
        SelfJoinConfig::new(eps).with_balancing(Balancing::WorkQueue),
    );
    let ratio = base.response_time_s() / wq.response_time_s();
    assert!(
        (0.7..1.5).contains(&ratio),
        "uniform data speedup should be near 1×, got {ratio:.2}×"
    );
}

#[test]
fn unidirectional_patterns_halve_distance_work() {
    let spec = DatasetSpec::by_name("SW2DB").unwrap();
    let pts = spec.generate(6_000);
    let eps = 1.0;
    let (_, full) = join_dyn(&pts, SelfJoinConfig::new(eps));
    let (_, uni) = join_dyn(
        &pts,
        SelfJoinConfig::new(eps).with_pattern(AccessPattern::Unicomp),
    );
    let (_, lid) = join_dyn(
        &pts,
        SelfJoinConfig::new(eps).with_pattern(AccessPattern::LidUnicomp),
    );
    assert_eq!(uni.distance_calcs(), lid.distance_calcs());
    let ratio = full.distance_calcs() as f64 / lid.distance_calcs() as f64;
    assert!((1.6..2.6).contains(&ratio), "halving ratio {ratio}");
}

#[test]
fn k8_improves_wee_on_skewed_data_with_same_total_work() {
    let spec = DatasetSpec::by_name("Expo3D2M").unwrap();
    let pts = spec.generate(6_000);
    let eps = 1.0;
    let (_, k1) = join_dyn(&pts, SelfJoinConfig::new(eps));
    let (_, k8) = join_dyn(&pts, SelfJoinConfig::new(eps).with_k(8));
    assert_eq!(k1.distance_calcs(), k8.distance_calcs());
    assert!(
        k8.wee() > k1.wee(),
        "k=8 WEE {:.3} must beat k=1 WEE {:.3}",
        k8.wee(),
        k1.wee()
    );
}

#[test]
fn pipeline_overlap_hides_transfers_with_three_streams() {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(6_000);
    // Force several batches so the stream pipeline has something to overlap.
    let config = SelfJoinConfig::new(0.5).with_batching(simjoin::BatchingConfig {
        batch_result_capacity: 100_000,
        ..simjoin::BatchingConfig::default()
    });
    let (_, report) = join_dyn(&pts, config);
    assert!(report.num_batches >= 3);
    assert!(report.pipeline.transfer_hidden_fraction() > 0.5);
    assert!(report.response_time_s() >= report.kernel_time_s());
}

#[test]
fn warp_stats_reflect_sorting() {
    // SORTBYWL packs similar workloads per warp: the per-warp duration CV
    // cannot get (much) worse than the unsorted baseline.
    let spec = DatasetSpec::by_name("Gaia").unwrap();
    let pts = spec.generate(8_000);
    let eps = 2.5;
    let (_, base) = join_dyn(&pts, SelfJoinConfig::new(eps));
    let (_, sorted) = join_dyn(
        &pts,
        SelfJoinConfig::new(eps).with_balancing(Balancing::SortByWorkload),
    );
    let base_cv = base.warp_stats().unwrap().cv();
    let sorted_cv = sorted.warp_stats().unwrap().cv();
    // Sorting concentrates workloads: warp durations become *more* varied
    // across warps (heavy warps first) but each warp is internally
    // coherent → WEE must not degrade.
    assert!(
        sorted.wee() >= base.wee() * 0.95,
        "sorted WEE {} vs base {}",
        sorted.wee(),
        base.wee()
    );
    // And the numbers exist and are finite.
    assert!(base_cv.is_finite() && sorted_cv.is_finite());
}
