//! The whole pipeline — generators, index, simulator, join — is
//! deterministic given its seeds.

use simjoin::{Balancing, BatchingConfig, SelfJoinConfig};
use sj_integration_support::{assert_canonical_reports_identical, brute_force_dyn, join_dyn};
use sjdata::DatasetSpec;
use warpsim::StepMode;

#[test]
fn generators_are_reproducible() {
    for spec in DatasetSpec::table1() {
        let a = spec.generate(300);
        let b = spec.generate(300);
        assert_eq!(a.raw(), b.raw(), "{}", spec.name);
    }
}

#[test]
fn join_results_and_timings_are_reproducible() {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(2_000);
    for balancing in [
        Balancing::None,
        Balancing::SortByWorkload,
        Balancing::WorkQueue,
    ] {
        let config = SelfJoinConfig::new(0.3).with_balancing(balancing);
        let (pairs_a, report_a) = join_dyn(&pts, config.clone());
        let (pairs_b, report_b) = join_dyn(&pts, config);
        assert_eq!(pairs_a, pairs_b, "{balancing:?}");
        assert_eq!(
            report_a.response_time_s(),
            report_b.response_time_s(),
            "{balancing:?}"
        );
        assert_eq!(report_a.wee(), report_b.wee(), "{balancing:?}");
        assert_eq!(report_a.num_batches, report_b.num_batches, "{balancing:?}");
    }
}

/// The host-parallel invariant: `host_jobs` threads the inside of one join
/// (independent batches on the pool, warp stepping inside each launch) but
/// is allowed to change wall-clock only — the pair set and the canonical
/// report are bit-identical for any thread count, in both step modes.
#[test]
fn host_jobs_never_changes_results() {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(1_200);
    let eps = spec.epsilons[2] * 1.5;
    let truth = brute_force_dyn(&pts, eps);
    // Tighten the batch capacity so the plan holds several independent
    // units — otherwise the batch-level layer has nothing to parallelize
    // and the matrix would only exercise warp stepping.
    let batching = BatchingConfig {
        batch_result_capacity: truth.len() / 10 + 8,
        ..BatchingConfig::default()
    };
    for step_mode in [StepMode::Stepped, StepMode::RunLength] {
        let config = |jobs: usize| {
            SelfJoinConfig::new(eps)
                .with_balancing(Balancing::WorkQueue)
                .with_batching(batching)
                .with_step_mode(step_mode)
                .with_host_jobs(jobs)
        };
        let (pairs_1, report_1) = join_dyn(&pts, config(1));
        assert_eq!(pairs_1, truth, "{step_mode:?}: serial run must be exact");
        assert!(
            report_1.num_batches >= 4,
            "{step_mode:?}: need several batches to exercise the pool, got {}",
            report_1.num_batches
        );
        for jobs in [2usize, 4, 8] {
            let ctx = format!("host_jobs={jobs}, {step_mode:?}");
            let (pairs_n, report_n) = join_dyn(&pts, config(jobs));
            assert_eq!(pairs_1, pairs_n, "pair set drifted [{ctx}]");
            assert_canonical_reports_identical(&report_1, &report_n, &ctx);
        }
    }
}

#[test]
fn scheduler_seed_changes_timing_not_results() {
    let spec = DatasetSpec::by_name("SW2DA").unwrap();
    let pts = spec.generate(2_000);
    let mut base = SelfJoinConfig::new(1.0);
    base.scheduler_seed = 1;
    let mut other = SelfJoinConfig::new(1.0);
    other.scheduler_seed = 999;
    let (pairs_a, report_a) = join_dyn(&pts, base);
    let (pairs_b, report_b) = join_dyn(&pts, other);
    assert_eq!(pairs_a, pairs_b, "seed must not affect the result set");
    // WEE is intra-warp and independent of issue order.
    assert_eq!(report_a.wee(), report_b.wee());
}
