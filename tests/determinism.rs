//! The whole pipeline — generators, index, simulator, join — is
//! deterministic given its seeds.

use simjoin::{Balancing, SelfJoinConfig};
use sj_integration_support::join_dyn;
use sjdata::DatasetSpec;

#[test]
fn generators_are_reproducible() {
    for spec in DatasetSpec::table1() {
        let a = spec.generate(300);
        let b = spec.generate(300);
        assert_eq!(a.raw(), b.raw(), "{}", spec.name);
    }
}

#[test]
fn join_results_and_timings_are_reproducible() {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(2_000);
    for balancing in [
        Balancing::None,
        Balancing::SortByWorkload,
        Balancing::WorkQueue,
    ] {
        let config = SelfJoinConfig::new(0.3).with_balancing(balancing);
        let (pairs_a, report_a) = join_dyn(&pts, config.clone());
        let (pairs_b, report_b) = join_dyn(&pts, config);
        assert_eq!(pairs_a, pairs_b, "{balancing:?}");
        assert_eq!(
            report_a.response_time_s(),
            report_b.response_time_s(),
            "{balancing:?}"
        );
        assert_eq!(report_a.wee(), report_b.wee(), "{balancing:?}");
        assert_eq!(report_a.num_batches, report_b.num_batches, "{balancing:?}");
    }
}

#[test]
fn scheduler_seed_changes_timing_not_results() {
    let spec = DatasetSpec::by_name("SW2DA").unwrap();
    let pts = spec.generate(2_000);
    let mut base = SelfJoinConfig::new(1.0);
    base.scheduler_seed = 1;
    let mut other = SelfJoinConfig::new(1.0);
    other.scheduler_seed = 999;
    let (pairs_a, report_a) = join_dyn(&pts, base);
    let (pairs_b, report_b) = join_dyn(&pts, other);
    assert_eq!(pairs_a, pairs_b, "seed must not affect the result set");
    // WEE is intra-warp and independent of issue order.
    assert_eq!(report_a.wee(), report_b.wee());
}
