//! End-to-end differential suite for the run-length fast path: a join run
//! under [`StepMode::RunLength`] must be bit-identical to the
//! [`StepMode::Stepped`] oracle — same pair set, same warp counters, same
//! per-batch cycles and model-time — across every access pattern, workload
//! quantification k, scheduler (balancing and issue-order override), and
//! fault profile. The step mode is a host-side knob only; any observable
//! difference is a bug in the fast path.

use proptest::prelude::*;
use simjoin::{
    AccessPattern, Balancing, BatchingConfig, JoinReport, SelfJoinConfig, ShardStrategy,
    SortBackend,
};
use sj_integration_support::{brute_force_dyn, join_dyn, join_dyn_chaos, join_fleet_dyn};
use sj_telemetry::{JsonTelemetry, Value, NULL};
use sjdata::DatasetSpec;
use warpsim::{FaultPlane, FaultProfile, FaultSchedule, IssueOrder, StepMode};

const PATTERNS: [AccessPattern; 3] = [
    AccessPattern::FullWindow,
    AccessPattern::Unicomp,
    AccessPattern::LidUnicomp,
];

const BALANCINGS: [Balancing; 3] = [
    Balancing::None,
    Balancing::SortByWorkload,
    Balancing::WorkQueue,
];

/// A small skewed dataset: dense enough for multiple warps per launch and
/// real divergence, small enough to keep the full matrix fast.
fn dataset() -> (epsgrid::DynPoints, f32) {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(300);
    let eps = spec.epsilons[2] * 1.5;
    (pts, eps)
}

/// Bit-level equality for model seconds: the two modes must agree on the
/// exact float, not merely within a tolerance.
fn assert_bits_eq(a: f64, b: f64, what: &str, ctx: &str) {
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "{what} differs [{ctx}]: {a} vs {b}"
    );
}

fn assert_reports_identical(stepped: &JoinReport, fast: &JoinReport, ctx: &str) {
    assert_eq!(stepped.totals, fast.totals, "warp totals differ [{ctx}]");
    assert_eq!(
        stepped.num_batches, fast.num_batches,
        "batch count differs [{ctx}]"
    );
    assert_eq!(
        stepped.total_pairs, fast.total_pairs,
        "pair count differs [{ctx}]"
    );
    assert_eq!(
        stepped.degradation, fast.degradation,
        "degradation accounting differs [{ctx}]"
    );
    assert_bits_eq(
        stepped.pipeline.total_s,
        fast.pipeline.total_s,
        "pipeline time",
        ctx,
    );
    assert_bits_eq(
        stepped.response_time_s(),
        fast.response_time_s(),
        "response time",
        ctx,
    );
    for (i, (s, f)) in stepped.batches.iter().zip(&fast.batches).enumerate() {
        let bctx = format!("{ctx}, batch {i}");
        assert_eq!(s.pairs, f.pairs, "batch pairs differ [{bctx}]");
        assert_bits_eq(s.kernel_s, f.kernel_s, "kernel time", &bctx);
        assert_bits_eq(s.transfer_s, f.transfer_s, "transfer time", &bctx);
        assert_eq!(
            s.launch.totals, f.launch.totals,
            "launch totals differ [{bctx}]"
        );
        assert_eq!(
            s.launch.warp_cycles, f.launch.warp_cycles,
            "warp cycles differ [{bctx}]"
        );
        assert_eq!(
            s.launch.makespan.makespan, f.launch.makespan.makespan,
            "makespan differs [{bctx}]"
        );
        assert_eq!(
            s.launch.pairs_emitted, f.launch.pairs_emitted,
            "emitted pairs differ [{bctx}]"
        );
    }
}

/// Runs one config under both step modes and checks bit-identity (and, via
/// the provided truth set, exactness of both).
fn check_cell(pts: &epsgrid::DynPoints, config: SelfJoinConfig, truth: &[(u32, u32)], ctx: &str) {
    let (pairs_s, report_s) = join_dyn(pts, config.clone().with_step_mode(StepMode::Stepped));
    let (pairs_f, report_f) = join_dyn(pts, config.with_step_mode(StepMode::RunLength));
    assert_eq!(pairs_s, truth, "stepped pairs wrong [{ctx}]");
    assert_eq!(pairs_f, truth, "run-length pairs wrong [{ctx}]");
    assert_reports_identical(&report_s, &report_f, ctx);
}

/// Every pattern × k × balancing cell agrees bit-for-bit across modes.
#[test]
fn step_modes_agree_across_pattern_k_balancing() {
    let (pts, eps) = dataset();
    let truth = brute_force_dyn(&pts, eps);
    for pattern in PATTERNS {
        for k in [1u32, 2, 8] {
            for balancing in BALANCINGS {
                let config = SelfJoinConfig::new(eps)
                    .with_pattern(pattern)
                    .with_k(k)
                    .with_balancing(balancing);
                let ctx = format!("{pattern:?}, k={k}, {balancing:?}");
                check_cell(&pts, config, &truth, &ctx);
            }
        }
    }
}

/// Scheduler overrides (forced issue orders, including the adversarial
/// reversed order and a seeded arbitrary shuffle) don't break bit-identity.
#[test]
fn step_modes_agree_under_issue_overrides() {
    let (pts, eps) = dataset();
    let truth = brute_force_dyn(&pts, eps);
    for order in [
        IssueOrder::InOrder,
        IssueOrder::Reversed,
        IssueOrder::Arbitrary { seed: 0xC0FFEE },
    ] {
        for balancing in [Balancing::None, Balancing::WorkQueue] {
            let config = SelfJoinConfig::new(eps)
                .with_pattern(AccessPattern::LidUnicomp)
                .with_balancing(balancing)
                .with_issue_override(order);
            let ctx = format!("{order:?}, {balancing:?}");
            check_cell(&pts, config, &truth, &ctx);
        }
    }
}

/// Multi-batch plans (tight result buffers) agree bit-for-bit too: batching
/// interacts with per-batch warp sourcing, the main place a fast-path bug
/// could hide from single-batch tests.
#[test]
fn step_modes_agree_across_batch_plans() {
    let (pts, eps) = dataset();
    let truth = brute_force_dyn(&pts, eps);
    let batching = BatchingConfig {
        batch_result_capacity: truth.len() / 3 + 8,
        ..BatchingConfig::default()
    };
    for pattern in PATTERNS {
        let config = SelfJoinConfig::new(eps)
            .with_pattern(pattern)
            .with_batching(batching);
        let ctx = format!("{pattern:?}, tight batches");
        check_cell(&pts, config, &truth, &ctx);
    }
}

/// Degenerate datasets and thresholds must be rejected (or answered)
/// *consistently* by every kernel variant and both step modes: an empty
/// dataset is a typed grid error and ε = 0 is the unified typed ε error
/// (the shared `validate_epsilon` chokepoint fires before index
/// construction) — never a panic or a variant-dependent outcome.
#[test]
fn degenerate_empty_dataset_and_zero_epsilon_are_rejected_everywhere() {
    let empty = epsgrid::DynPoints::new(2);
    let pts = epsgrid::point::to_dyn(&[[0.0f32, 0.0], [1.0, 1.0], [2.0, 0.5]]);
    for pattern in PATTERNS {
        for balancing in BALANCINGS {
            for mode in [StepMode::Stepped, StepMode::RunLength] {
                let config = SelfJoinConfig::new(0.1)
                    .with_pattern(pattern)
                    .with_balancing(balancing)
                    .with_step_mode(mode);
                let ctx = format!("{pattern:?}, {balancing:?}, {mode:?}");
                let on_empty =
                    simjoin::SelfJoin::new(&empty.as_fixed::<2>().unwrap(), config.clone())
                        .map(|_| ());
                assert!(
                    matches!(on_empty, Err(simjoin::JoinError::Grid(_))),
                    "empty dataset must be a typed grid error [{ctx}]"
                );
                let zero_eps = simjoin::SelfJoin::new(
                    &pts.as_fixed::<2>().unwrap(),
                    SelfJoinConfig {
                        epsilon: 0.0,
                        ..config
                    },
                )
                .map(|_| ());
                assert!(
                    matches!(zero_eps, Err(simjoin::JoinError::Epsilon(_))),
                    "epsilon = 0 must be the typed epsilon error [{ctx}]"
                );
            }
        }
    }
}

/// A singleton dataset joins to the empty pair set under every variant and
/// step mode — exercising the estimator's single-point path end to end.
#[test]
fn degenerate_singleton_dataset_yields_no_pairs_everywhere() {
    let pts = epsgrid::point::to_dyn(&[[0.25f32, 0.75]]);
    for pattern in PATTERNS {
        for balancing in BALANCINGS {
            for mode in [StepMode::Stepped, StepMode::RunLength] {
                let config = SelfJoinConfig::new(0.1)
                    .with_pattern(pattern)
                    .with_balancing(balancing)
                    .with_step_mode(mode);
                let ctx = format!("{pattern:?}, {balancing:?}, {mode:?}");
                let (pairs, report) = join_dyn(&pts, config);
                assert!(pairs.is_empty(), "singleton produced pairs [{ctx}]");
                assert_eq!(report.total_pairs, 0, "[{ctx}]");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Clusters of all-identical points are the worst-case degenerate
    /// input: every point is every other point's neighbor, candidate sets
    /// are maximal, and the pair count is exactly n·(n−1). Every kernel
    /// variant, both step modes, and the CPU fallback (forced by losing
    /// the device on launch 0) must agree with brute force.
    #[test]
    fn degenerate_identical_point_clusters_agree_everywhere(
        n in 1usize..=16,
        x in -40.0f32..40.0,
        y in -40.0f32..40.0,
        eps in 0.001f32..0.5,
    ) {
        let pts = epsgrid::point::to_dyn(&vec![[x, y]; n]);
        let truth = brute_force_dyn(&pts, eps);
        prop_assert_eq!(truth.len(), n * (n - 1));
        for pattern in PATTERNS {
            for balancing in BALANCINGS {
                let config = SelfJoinConfig::new(eps)
                    .with_pattern(pattern)
                    .with_balancing(balancing);
                let ctx = format!("{pattern:?}, {balancing:?}");
                check_cell(&pts, config.clone(), &truth, &ctx);
                // The exact CPU fallback replays the same probe lists.
                let plane = FaultPlane::new(FaultSchedule::new().device_lost_at(0));
                let (cpu_pairs, report) =
                    join_dyn_chaos(&pts, config, &plane, &NULL).expect("fallback");
                prop_assert_eq!(&cpu_pairs, &truth, "CPU fallback differs [{}]", ctx);
                let d = report.degradation.expect("fallback must report");
                prop_assert!(d.device_lost, "[{}]", ctx);
                prop_assert_eq!(d.points_degraded, n, "[{}]", ctx);
            }
        }
    }
}

/// The sort backend is the same kind of host-side knob as the step mode:
/// [`SortBackend::Device`] must return the exact canonical pair set and the
/// bit-identical report of the [`SortBackend::Host`] oracle for every
/// pattern × balancing × step-mode cell. (The device pre-pass may differ
/// only in [`JoinReport::prepass`] and telemetry — never in planning.)
#[test]
fn sort_backends_agree_across_pattern_balancing_and_mode() {
    let (pts, eps) = dataset();
    let truth = brute_force_dyn(&pts, eps);
    // A tight result buffer forces multiple batches, so SORTBYWL issues one
    // device sort per batch; the balanced queue cut adds the scan site.
    let batching = BatchingConfig {
        batch_result_capacity: truth.len() / 3 + 8,
        balanced_queue: true,
        ..BatchingConfig::default()
    };
    for pattern in PATTERNS {
        for balancing in BALANCINGS {
            for mode in [StepMode::Stepped, StepMode::RunLength] {
                let config = SelfJoinConfig::new(eps)
                    .with_pattern(pattern)
                    .with_balancing(balancing)
                    .with_batching(batching)
                    .with_step_mode(mode);
                let ctx = format!("{pattern:?}, {balancing:?}, {mode:?}");
                let (pairs_h, report_h) =
                    join_dyn(&pts, config.clone().with_sort_backend(SortBackend::Host));
                let (pairs_d, report_d) =
                    join_dyn(&pts, config.with_sort_backend(SortBackend::Device));
                assert_eq!(pairs_h, truth, "host pairs wrong [{ctx}]");
                assert_eq!(pairs_d, truth, "device pairs wrong [{ctx}]");
                assert_reports_identical(&report_h, &report_d, &ctx);
                assert!(
                    report_h.prepass.is_none(),
                    "host run has a pre-pass [{ctx}]"
                );
                let pp = report_d
                    .prepass
                    .expect("device run must report its pre-pass");
                assert!(!pp.degraded_to_host, "clean run degraded [{ctx}]");
                match balancing {
                    Balancing::None => assert_eq!(pp.sort_invocations, 0, "[{ctx}]"),
                    Balancing::SortByWorkload => {
                        assert!(pp.sort_invocations > 0, "[{ctx}]");
                        assert!(pp.sort_model_s > 0.0, "sort cost is zero [{ctx}]");
                    }
                    Balancing::WorkQueue => {
                        assert!(pp.sort_invocations > 0, "[{ctx}]");
                        assert!(pp.scan_invocations > 0, "queue cut not scanned [{ctx}]");
                        assert!(pp.model_s() > 0.0, "pre-pass cost is zero [{ctx}]");
                    }
                }
            }
        }
    }
}

/// With telemetry attached, a `SortBackend::Device` run emits `sort`/`scan`
/// phase events carrying nonzero model seconds — the costed-pre-pass
/// acceptance criterion — while the recorded response time stays
/// bit-identical to the host backend's.
#[test]
fn device_backend_reports_sort_and_scan_phases_in_telemetry() {
    let (pts, eps) = dataset();
    let truth = brute_force_dyn(&pts, eps);
    let batching = BatchingConfig {
        batch_result_capacity: truth.len() / 3 + 8,
        balanced_queue: true,
        ..BatchingConfig::default()
    };
    let config = SelfJoinConfig::new(eps)
        .with_balancing(Balancing::WorkQueue)
        .with_batching(batching)
        .with_sort_backend(SortBackend::Device);
    let plane = FaultPlane::new(FaultSchedule::new());
    let sink = JsonTelemetry::new("device-backend");
    let (pairs, report) = join_dyn_chaos(&pts, config, &plane, &sink).expect("clean run");
    assert_eq!(pairs, truth);
    let phase_model_s = |name: &str| -> f64 {
        let events = sink.events_named("executor.phase", name);
        assert_eq!(events.len(), 1, "expected one {name} phase event");
        match events[0].field("model_s") {
            Some(Value::F64(v)) => *v,
            other => panic!("{name} phase event lacks model_s: {other:?}"),
        }
    };
    let sort_s = phase_model_s("sort");
    let scan_s = phase_model_s("scan");
    assert!(sort_s > 0.0, "sort phase reports zero model seconds");
    assert!(scan_s > 0.0, "scan phase reports zero model seconds");
    let pp = report.prepass.expect("device pre-pass report");
    assert_eq!(sort_s.to_bits(), pp.sort_model_s.to_bits());
    assert_eq!(scan_s.to_bits(), pp.scan_model_s.to_bits());
    assert_eq!(
        sink.events_named("executor", "prepass_degraded").len(),
        0,
        "clean run must not degrade"
    );
}

/// Fleet runs cut shard regions from the same workload prefix on both
/// backends: identical shard regions, identical canonical report, identical
/// merged pair set — for each shard strategy and device count.
#[test]
fn sort_backends_agree_on_fleet_cuts() {
    let (pts, eps) = dataset();
    let truth = brute_force_dyn(&pts, eps);
    let batching = BatchingConfig {
        batch_result_capacity: truth.len() / 3 + 8,
        ..BatchingConfig::default()
    };
    for strategy in [ShardStrategy::WorkloadAware, ShardStrategy::EqualCount] {
        for devices in [2usize, 3] {
            let config = SelfJoinConfig::new(eps)
                .with_balancing(Balancing::WorkQueue)
                .with_batching(batching);
            let ctx = format!("{strategy:?}, {devices} devices");
            let (pairs_h, report_h, fleet_h) = join_fleet_dyn(
                &pts,
                config.clone().with_sort_backend(SortBackend::Host),
                devices,
                strategy,
            );
            let (pairs_d, report_d, fleet_d) = join_fleet_dyn(
                &pts,
                config.with_sort_backend(SortBackend::Device),
                devices,
                strategy,
            );
            assert_eq!(pairs_h, truth, "host fleet pairs wrong [{ctx}]");
            assert_eq!(pairs_d, truth, "device fleet pairs wrong [{ctx}]");
            assert_reports_identical(&report_h, &report_d, &ctx);
            for (i, (sh, sd)) in fleet_h.shards.iter().zip(&fleet_d.shards).enumerate() {
                assert_eq!(sh.units, sd.units, "shard {i} region differs [{ctx}]");
                assert_eq!(
                    sh.workload, sd.workload,
                    "shard {i} workload differs [{ctx}]"
                );
                assert_eq!(sh.pairs, sd.pairs, "shard {i} pairs differ [{ctx}]");
            }
            assert_bits_eq(fleet_h.makespan_s, fleet_d.makespan_s, "makespan", &ctx);
        }
    }
}

/// Under every named fault profile the two modes produce the *same
/// outcome*: identical recovered pair sets and degradation accounting, or
/// the identical typed error. Faults are seeded per launch index, and the
/// fast path never changes how many launches happen or what they do, so the
/// whole chaos trajectory must replay exactly.
#[test]
fn step_modes_agree_under_fault_profiles() {
    let (pts, eps) = dataset();
    let truth = brute_force_dyn(&pts, eps);
    let batching = BatchingConfig {
        batch_result_capacity: truth.len() / 3 + 8,
        ..BatchingConfig::default()
    };
    for name in FaultProfile::names() {
        let profile = FaultProfile::by_name(name).unwrap();
        for seed in [7u64, 1007] {
            for balancing in [Balancing::None, Balancing::WorkQueue] {
                let config = SelfJoinConfig::new(eps)
                    .with_balancing(balancing)
                    .with_batching(batching);
                let ctx = format!("profile={name}, seed={seed}, {balancing:?}");
                let run = |mode: StepMode| {
                    let plane = FaultPlane::seeded(seed, &profile);
                    join_dyn_chaos(&pts, config.clone().with_step_mode(mode), &plane, &NULL)
                };
                match (run(StepMode::Stepped), run(StepMode::RunLength)) {
                    (Ok((pairs_s, report_s)), Ok((pairs_f, report_f))) => {
                        assert_eq!(pairs_s, pairs_f, "recovered pairs differ [{ctx}]");
                        assert_reports_identical(&report_s, &report_f, &ctx);
                    }
                    (Err(e_s), Err(e_f)) => {
                        assert_eq!(
                            format!("{e_s:?}"),
                            format!("{e_f:?}"),
                            "typed errors differ [{ctx}]"
                        );
                    }
                    (s, f) => panic!(
                        "outcomes diverge [{ctx}]: stepped={:?}, run-length={:?}",
                        s.map(|(p, _)| p.len()),
                        f.map(|(p, _)| p.len())
                    ),
                }
            }
        }
    }
}
