//! The batching scheme's core guarantee: result buffers never overflow, and
//! splitting the join across batches never changes the result.

use simjoin::{Balancing, BatchingConfig, SelfJoinConfig};
use sj_integration_support::{brute_force_dyn, join_dyn};
use sjdata::DatasetSpec;

fn tight_batching(capacity: usize) -> BatchingConfig {
    BatchingConfig {
        batch_result_capacity: capacity,
        ..BatchingConfig::default()
    }
}

#[test]
fn tight_buffers_force_batches_without_changing_results() {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(3_000);
    let eps = 0.5;
    let expected = brute_force_dyn(&pts, eps);
    assert!(
        expected.len() > 1_000,
        "test needs a non-trivial result set"
    );
    for balancing in [
        Balancing::None,
        Balancing::SortByWorkload,
        Balancing::WorkQueue,
    ] {
        let config = SelfJoinConfig::new(eps)
            .with_balancing(balancing)
            .with_batching(tight_batching(expected.len() / 4 + 512));
        let (pairs, report) = join_dyn(&pts, config);
        assert!(
            report.num_batches >= 3,
            "{balancing:?}: got {} batches",
            report.num_batches
        );
        assert_eq!(pairs, expected, "{balancing:?}");
        for batch in &report.batches {
            assert!(batch.pairs <= expected.len() / 4 + 512, "{balancing:?}");
        }
    }
}

#[test]
fn workqueue_prefix_estimate_is_pessimistic() {
    // §III-D: sampling the heaviest prefix of D' must estimate at least as
    // many results as the strided sample, so the WORKQUEUE runs at least as
    // many batches.
    let spec = DatasetSpec::by_name("Gaia").unwrap();
    let pts = spec.generate(6_000);
    let eps = 2.0;
    let capacity = 20_000;
    let (_, strided) = join_dyn(
        &pts,
        SelfJoinConfig::new(eps).with_batching(tight_batching(capacity)),
    );
    let (_, queued) = join_dyn(
        &pts,
        SelfJoinConfig::new(eps)
            .with_balancing(Balancing::WorkQueue)
            .with_batching(tight_batching(capacity)),
    );
    assert!(
        queued.estimate.estimated_total >= strided.estimate.estimated_total,
        "prefix estimate {} must be ≥ strided estimate {}",
        queued.estimate.estimated_total,
        strided.estimate.estimated_total
    );
    assert!(queued.num_batches >= strided.num_batches);
}

#[test]
fn pathological_underestimate_recovers_by_replanning() {
    // One hot cluster hidden between sampled points: the strided sample at a
    // tiny fraction misses it, the planned batch overflows, and the executor
    // must recover.
    let spec = DatasetSpec::by_name("Unif2D2M").unwrap();
    let mut raw = spec.generate(2_000).into_raw();
    // Insert a dense clump of 120 coincident points.
    for _ in 0..120 {
        raw.extend_from_slice(&[7.77, 7.77]);
    }
    let pts = epsgrid::DynPoints::from_interleaved(2, raw);
    let eps = 0.4;
    let expected = brute_force_dyn(&pts, eps);
    let config = SelfJoinConfig::new(eps).with_batching(BatchingConfig {
        batch_result_capacity: expected.len() / 3 + 256,
        sample_fraction: 0.002,
        safety_factor: 1.0,
        ..BatchingConfig::default()
    });
    let (pairs, _) = join_dyn(&pts, config);
    assert_eq!(pairs, expected);
}

#[test]
fn heavy_tail_underestimate_splits_the_batch_and_stays_exact() {
    // Adversarial heavy tail: a dense coincident clump appended after the
    // uniform bulk. The tiny strided sample misses it entirely, so the 1%
    // estimator under-estimates, the planned batch overflows, and the
    // executor recovers by splitting the failing batch — salvaging every
    // completed batch — all observable through the telemetry events, and
    // none of it may change the result.
    let spec = DatasetSpec::by_name("Unif2D2M").unwrap();
    let mut raw = spec.generate(2_000).into_raw();
    for _ in 0..140 {
        raw.extend_from_slice(&[7.77, 7.77]);
    }
    let pts = epsgrid::DynPoints::from_interleaved(2, raw);
    // ε so small the uniform bulk contributes almost nothing: virtually the
    // entire result set is the clump's 140 × 139 pairs.
    let eps = 0.05;
    let expected = brute_force_dyn(&pts, eps);
    assert!(
        expected.len() > 15_000,
        "clump must dominate the result set"
    );
    // sample_fraction < 1/n → the strided sample is the single point at
    // index 0, which cannot see the clump's workload wherever the grid
    // placed it.
    let config = SelfJoinConfig::new(eps).with_batching(BatchingConfig {
        batch_result_capacity: 12_000,
        sample_fraction: 0.0004,
        safety_factor: 1.0,
        ..BatchingConfig::default()
    });

    let fixed = pts.as_fixed::<2>().unwrap();
    let join = simjoin::SelfJoin::new(&fixed, config.clone()).unwrap();
    let (estimate, first_plan) = join.plan();
    assert!(
        estimate.estimated_total < expected.len() as u64,
        "estimator must under-estimate ({} vs {} actual) for this test to bite",
        estimate.estimated_total,
        expected.len()
    );

    let sink = sj_telemetry::JsonTelemetry::new("overflow recovery");
    let outcome = simjoin::SelfJoin::new(&fixed, config)
        .unwrap()
        .with_telemetry(&sink)
        .run()
        .unwrap();
    assert_eq!(outcome.result.sorted_pairs(), expected);

    let recoveries: Vec<_> = sink
        .events()
        .into_iter()
        .filter(|e| e.scope == "executor" && e.name == "overflow_recovery")
        .collect();
    assert!(!recoveries.is_empty(), "the first plan must overflow");
    for r in &recoveries {
        assert_eq!(
            r.field("terminal"),
            Some(&sj_telemetry::Value::Bool(false)),
            "a recovered run must never record a terminal overflow"
        );
        assert!(r.field("left_queries").is_some() && r.field("right_queries").is_some());
    }
    // Every split adds exactly one batch over the original plan, and the
    // split count is mirrored in the degradation report.
    assert_eq!(
        outcome.report.num_batches,
        first_plan.num_batches() + recoveries.len()
    );
    let degradation = outcome
        .report
        .degradation
        .expect("overflow recovery must be reported");
    assert_eq!(degradation.overflow_splits as usize, recoveries.len());
    assert_eq!(
        degradation.points_degraded, 0,
        "overflow recovery stays on the GPU"
    );
    assert!(degradation.backoff_s > 0.0);
}

#[test]
fn overflow_split_ceiling_surfaces_a_typed_error_with_terminal_telemetry() {
    // The recovery budget is bounded: with a zero split budget the first
    // overflow must surface as a typed error — not loop — and telemetry
    // must record the terminal overflow_recovery event.
    let spec = DatasetSpec::by_name("Unif2D2M").unwrap();
    let mut raw = spec.generate(2_000).into_raw();
    for _ in 0..140 {
        raw.extend_from_slice(&[7.77, 7.77]);
    }
    let pts = epsgrid::DynPoints::from_interleaved(2, raw);
    let eps = 0.05;
    let config = SelfJoinConfig::new(eps)
        .with_batching(BatchingConfig {
            batch_result_capacity: 12_000,
            sample_fraction: 0.0004,
            safety_factor: 1.0,
            ..BatchingConfig::default()
        })
        .with_retry(simjoin::RetryPolicy {
            max_overflow_splits: 0,
            ..simjoin::RetryPolicy::default()
        });
    let fixed = pts.as_fixed::<2>().unwrap();
    let sink = sj_telemetry::JsonTelemetry::new("overflow ceiling");
    let err = simjoin::SelfJoin::new(&fixed, config)
        .unwrap()
        .with_telemetry(&sink)
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        simjoin::JoinError::Launch(warpsim::LaunchError::ResultOverflow(_))
    ));
    assert!(std::error::Error::source(&err).is_some(), "source() chains");
    let terminals: Vec<_> = sink
        .events()
        .into_iter()
        .filter(|e| {
            e.scope == "executor"
                && e.name == "overflow_recovery"
                && e.field("terminal") == Some(&sj_telemetry::Value::Bool(true))
        })
        .collect();
    assert_eq!(terminals.len(), 1, "exactly one terminal recovery event");
    assert_eq!(
        terminals[0].field("splits_used"),
        Some(&sj_telemetry::Value::U64(0))
    );
}

#[test]
fn single_batch_when_capacity_is_ample() {
    let spec = DatasetSpec::by_name("Unif3D2M").unwrap();
    let pts = spec.generate(2_000);
    let (_, report) = join_dyn(&pts, SelfJoinConfig::new(1.0));
    assert_eq!(report.num_batches, 1);
}
