//! Differential co-processing suite for the hybrid CPU/GPU executor: for
//! **any** access pattern, ε, and split fraction — forced all-GPU, forced
//! all-CPU, an arbitrary interior fraction, or the measured auto cut — the
//! merged hybrid pair set must equal the brute-force truth and the
//! single-device GPU run exactly, and the canonical join report must stay
//! **bit-identical** to the GPU run (the split is visible only on the
//! hybrid report and in `hybrid.*` telemetry). The suite also pins the
//! pool-independence guarantee (same outcome for `jobs = 1` and `jobs = N`)
//! and the telemetry schema of the three `hybrid.*` events.

use proptest::prelude::*;
use simjoin::{Balancing, HybridPolicy, SelfJoinConfig};
use sj_integration_support::{
    assert_canonical_reports_identical, brute_force_dyn, chaos_dataset, join_dyn, join_dyn_hybrid,
    join_dyn_hybrid_chaos, small_batches, small_datasets,
};
use sj_telemetry::{JsonTelemetry, Value};
use warpsim::{FaultPlane, FaultSchedule};

const BALANCINGS: [Balancing; 3] = [
    Balancing::None,
    Balancing::SortByWorkload,
    Balancing::WorkQueue,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random balancing × ε scale × split fraction (0.0, 1.0, or an
    /// arbitrary interior value) × worker count: the hybrid pair set equals
    /// brute force and the GPU run, and the canonical report is
    /// bit-identical to the GPU run's.
    #[test]
    fn any_forced_split_is_exact_and_report_invariant(
        balancing_idx in 0usize..3,
        eps_scale in 0.8f32..1.6,
        split_kind in 0usize..3,
        fraction in 0.0f64..=1.0,
        jobs in 1usize..=4,
    ) {
        let (pts, base_eps) = chaos_dataset();
        let eps = base_eps * eps_scale;
        let expected = brute_force_dyn(&pts, eps);
        let config = SelfJoinConfig::new(eps)
            .with_balancing(BALANCINGS[balancing_idx])
            .with_batching(small_batches(expected.len()));
        let (gpu_pairs, gpu_report) = join_dyn(&pts, config.clone());
        prop_assert_eq!(&gpu_pairs, &expected, "GPU reference lost exactness");

        let fraction = match split_kind {
            0 => 0.0,
            1 => 1.0,
            _ => fraction,
        };
        let policy = HybridPolicy::default()
            .with_forced_cpu_fraction(fraction)
            .with_jobs(jobs);
        let (pairs, report, hybrid) = join_dyn_hybrid(&pts, config, &policy);

        prop_assert_eq!(pairs, expected, "hybrid merge lost exactness (f = {})", fraction);
        assert_canonical_reports_identical(
            &gpu_report,
            &report,
            &format!("hybrid f = {fraction}, jobs = {jobs}"),
        );
        prop_assert!(hybrid.forced);
        prop_assert_eq!(hybrid.gpu_units, hybrid.cut, "clean run keeps the full GPU prefix");
        prop_assert!(hybrid.cpu_units <= hybrid.units - hybrid.cut);
        prop_assert_eq!(hybrid.spilled_units, 0, "no spills without faults");
        prop_assert_eq!(
            hybrid.makespan_s,
            hybrid.gpu_response_s.max(hybrid.cpu_model_s),
            "makespan must be the overlapped maximum"
        );
        if fraction == 0.0 {
            prop_assert_eq!(hybrid.cut, hybrid.units, "f = 0 is all-GPU");
            prop_assert_eq!(hybrid.cpu_units, 0);
        }
        if fraction == 1.0 {
            prop_assert_eq!(hybrid.cut, 0, "f = 1 is all-CPU");
            prop_assert_eq!(hybrid.gpu_units, 0);
        }
    }

    /// The measured auto cut under random balancing and ε: same exactness
    /// and report-invariance contract as the forced splits, plus chooser
    /// sanity (in-range cut, non-negative side predictions).
    #[test]
    fn auto_cut_is_exact_and_report_invariant(
        balancing_idx in 0usize..3,
        eps_scale in 0.8f32..1.6,
        jobs in 1usize..=4,
    ) {
        let (pts, base_eps) = chaos_dataset();
        let eps = base_eps * eps_scale;
        let expected = brute_force_dyn(&pts, eps);
        let config = SelfJoinConfig::new(eps)
            .with_balancing(BALANCINGS[balancing_idx])
            .with_batching(small_batches(expected.len()));
        let (gpu_pairs, gpu_report) = join_dyn(&pts, config.clone());
        prop_assert_eq!(&gpu_pairs, &expected);

        let policy = HybridPolicy::default().with_jobs(jobs);
        let (pairs, report, hybrid) = join_dyn_hybrid(&pts, config, &policy);

        prop_assert_eq!(pairs, expected, "auto-cut hybrid lost exactness");
        assert_canonical_reports_identical(
            &gpu_report,
            &report,
            &format!("hybrid auto, jobs = {jobs}"),
        );
        prop_assert!(!hybrid.forced);
        prop_assert!(hybrid.cut <= hybrid.units);
        prop_assert!(hybrid.predicted_gpu_s >= 0.0);
        prop_assert!(hybrid.predicted_cpu_s >= 0.0);
        prop_assert_eq!(hybrid.spilled_units, 0);
    }
}

/// Every Table-I dataset family through the full split sweep: the hybrid
/// executor's contract is dataset-independent, not an Expo2D artifact.
#[test]
fn all_dataset_families_survive_the_split_sweep() {
    for (name, pts, eps) in small_datasets(200) {
        let expected = brute_force_dyn(&pts, eps);
        let config = SelfJoinConfig::optimized(eps).with_batching(small_batches(expected.len()));
        let (gpu_pairs, gpu_report) = join_dyn(&pts, config.clone());
        assert_eq!(gpu_pairs, expected, "{name}: GPU reference");
        for fraction in [
            None,
            Some(0.0),
            Some(0.25),
            Some(0.5),
            Some(0.75),
            Some(1.0),
        ] {
            let mut policy = HybridPolicy::default().with_jobs(2);
            if let Some(f) = fraction {
                policy = policy.with_forced_cpu_fraction(f);
            }
            let ctx = format!("{name}, split {fraction:?}");
            let (pairs, report, hybrid) = join_dyn_hybrid(&pts, config.clone(), &policy);
            assert_eq!(pairs, expected, "pairs wrong [{ctx}]");
            assert_canonical_reports_identical(&gpu_report, &report, &ctx);
            assert_eq!(hybrid.forced, fraction.is_some(), "[{ctx}]");
        }
    }
}

/// The forced all-CPU run **is** the pure `cpu_join_queries` join: every
/// planned unit is recomputed on the host pool and differentially checked
/// against the GPU shadow, so equality here certifies the host join itself
/// against brute force and the kernel path.
#[test]
fn cpu_only_run_equals_the_pure_cpu_join() {
    let (pts, eps) = chaos_dataset();
    let expected = brute_force_dyn(&pts, eps);
    let config = SelfJoinConfig::optimized(eps).with_batching(small_batches(expected.len()));
    let (gpu_pairs, gpu_report) = join_dyn(&pts, config.clone());
    let (pairs, report, hybrid) = join_dyn_hybrid(&pts, config, &HybridPolicy::cpu_only());

    assert_eq!(pairs, expected, "the host join must match brute force");
    assert_eq!(pairs, gpu_pairs, "the host join must match the kernel path");
    assert_canonical_reports_identical(&gpu_report, &report, "cpu-only");
    assert_eq!(hybrid.cut, 0);
    assert_eq!(hybrid.gpu_units, 0, "no unit is kept from the GPU side");
    assert!(hybrid.cpu_units > 0);
    assert!(hybrid.cpu_stats.queries > 0);
    assert!(hybrid.cpu_stats.distance_calcs > 0);
    assert!(hybrid.cpu_model_s > 0.0);
}

/// Pool independence: the same configuration replayed with `jobs = 1` and
/// `jobs = N` yields the identical pair set, a bit-identical canonical
/// report, and the identical hybrid accounting (all model-side numbers are
/// scheduling-invariant; only the `jobs` field itself may differ).
#[test]
fn replay_is_deterministic_across_worker_counts() {
    let (pts, eps) = chaos_dataset();
    let expected = brute_force_dyn(&pts, eps);
    let config = SelfJoinConfig::optimized(eps).with_batching(small_batches(expected.len()));
    for fraction in [None, Some(0.37), Some(1.0)] {
        let run = |jobs: usize| {
            let mut policy = HybridPolicy::default().with_jobs(jobs);
            if let Some(f) = fraction {
                policy = policy.with_forced_cpu_fraction(f);
            }
            join_dyn_hybrid(&pts, config.clone(), &policy)
        };
        let (pairs_1, report_1, hybrid_1) = run(1);
        assert_eq!(pairs_1, expected, "split {fraction:?}");
        for jobs in [2usize, 8] {
            let (pairs_n, report_n, mut hybrid_n) = run(jobs);
            let ctx = format!("split {fraction:?}, jobs 1 vs {jobs}");
            assert_eq!(pairs_1, pairs_n, "pair set drifted [{ctx}]");
            assert_canonical_reports_identical(&report_1, &report_n, &ctx);
            assert_eq!(hybrid_n.jobs, jobs);
            hybrid_n.jobs = hybrid_1.jobs;
            assert_eq!(hybrid_1, hybrid_n, "hybrid accounting drifted [{ctx}]");
        }
    }
}

/// The `hybrid.*` telemetry contract: one `cut` event carrying the split
/// decision, then exactly one `backend_done` per backend whose pair counts
/// partition the merged result.
#[test]
fn hybrid_telemetry_records_the_cut_and_both_backends() {
    let (pts, eps) = chaos_dataset();
    let expected = brute_force_dyn(&pts, eps);
    let config = SelfJoinConfig::optimized(eps).with_batching(small_batches(expected.len()));
    let policy = HybridPolicy::default().with_forced_cpu_fraction(0.5);
    let sink = JsonTelemetry::new("hybrid-events");
    let plane = FaultPlane::new(FaultSchedule::new());
    let (pairs, _, hybrid) = join_dyn_hybrid_chaos(&pts, config, &policy, &plane, &sink).unwrap();
    assert_eq!(pairs, expected);

    let cuts = sink.events_named("hybrid", "cut");
    assert_eq!(cuts.len(), 1, "exactly one cut decision per run");
    assert_eq!(
        cuts[0].field("units"),
        Some(&Value::U64(hybrid.units as u64))
    );
    assert_eq!(cuts[0].field("cut"), Some(&Value::U64(hybrid.cut as u64)));
    assert_eq!(cuts[0].field("forced"), Some(&Value::Bool(true)));

    let done = sink.events_named("hybrid", "backend_done");
    assert_eq!(done.len(), 2, "one completion event per backend");
    let gpu = done
        .iter()
        .find(|e| e.field("backend") == Some(&Value::Str("gpu".into())))
        .expect("gpu backend event");
    let cpu = done
        .iter()
        .find(|e| e.field("backend") == Some(&Value::Str("cpu".into())))
        .expect("cpu backend event");
    let (Some(&Value::U64(gpu_pairs)), Some(&Value::U64(cpu_pairs))) =
        (gpu.field("pairs"), cpu.field("pairs"))
    else {
        panic!("backend_done events must carry u64 pair counts");
    };
    assert_eq!(
        gpu_pairs + cpu_pairs,
        pairs.len() as u64,
        "the two backends' pairs must partition the merged result"
    );
    assert!(cpu.field("host_ns").is_some(), "cpu side reports host time");
    assert_eq!(
        sink.events_named("hybrid", "spill").len(),
        0,
        "clean runs never spill"
    );
}
