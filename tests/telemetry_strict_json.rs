//! Every telemetry document the workspace emits must be *strict* JSON:
//! parseable by a validating parser with no extensions — no `NaN`, no
//! `Infinity`, no trailing commas. This guards the estimator-accuracy
//! event in particular: a zero-pair join must not leak a NaN accuracy
//! ratio into the stream (it flags `zero_actual` and omits the ratio
//! instead), and any telemetry artifact recorded under `results/` must
//! round-trip through the same parser.

use simjoin::{Balancing, SelfJoinConfig, ShardStrategy};
use sj_telemetry::JsonTelemetry;

// ---------------------------------------------------------------------------
// A minimal validating JSON parser (recursive descent, RFC 8259 grammar).
// Deliberately hand-rolled: the point is to accept *only* strict JSON, not
// whatever a lenient production parser happens to tolerate.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", b as char)))
        }
    }

    fn document(mut self) -> Result<(), String> {
        self.skip_ws();
        self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.fail("trailing content"));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.fail("bad literal"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            if !self.bump().is_some_and(|c| c.is_ascii_hexdigit()) {
                                return Err(self.fail("bad \\u escape"));
                            }
                        }
                    }
                    _ => return Err(self.fail("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.fail("raw control char in string")),
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.fail("bad number (NaN/Infinity are not JSON)")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.fail("bad fraction"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.fail("bad exponent"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

fn assert_strict_json(doc: &str, what: &str) {
    if let Err(e) = Parser::new(doc).document() {
        let ctx_start = doc.len().min(200);
        panic!(
            "{what} is not strict JSON: {e}\nhead: {}",
            &doc[..ctx_start]
        );
    }
}

#[test]
fn the_validator_rejects_json_extensions() {
    for bad in [
        r#"{"x": NaN}"#,
        r#"{"x": Infinity}"#,
        r#"{"x": -Infinity}"#,
        r#"{"x": 1,}"#,
        r#"[1, 2,]"#,
        r#"{"x": .5}"#,
        r#"{"x": 01}"#,
        r#"{'x': 1}"#,
        r#"{"x": 1} extra"#,
    ] {
        assert!(
            Parser::new(bad).document().is_err(),
            "validator accepted {bad:?}"
        );
    }
    for good in [
        r#"{"x": -1.5e-3, "y": [true, false, null], "z": "aé\n"}"#,
        r#"[]"#,
        r#"0"#,
    ] {
        Parser::new(good).document().unwrap_or_else(|e| {
            panic!("validator rejected {good:?}: {e}");
        });
    }
}

/// The estimator-accuracy regression: a join that finds zero pairs used to
/// emit `estimated / actual = NaN` into the JSON stream. It must now flag
/// `zero_actual` and omit the ratio, keeping the document strict JSON.
#[test]
fn zero_pair_join_telemetry_is_strict_json() {
    // Three points far beyond ε of each other: an exact zero-pair join.
    let pts: Vec<[f32; 2]> = vec![[0.0, 0.0], [10.0, 10.0], [20.0, 0.0]];
    let sink = JsonTelemetry::new("zero-pairs");
    let outcome = simjoin::SelfJoin::new(&pts, SelfJoinConfig::new(0.1))
        .unwrap()
        .with_telemetry(&sink)
        .run()
        .unwrap();
    assert_eq!(outcome.result.len(), 0);
    let doc = sink.to_json();
    assert_strict_json(&doc, "zero-pair join telemetry");
    assert!(!doc.contains("NaN"), "NaN leaked into telemetry:\n{doc}");
    assert!(
        doc.contains("\"zero_actual\": true"),
        "zero-pair join must flag zero_actual:\n{doc}"
    );
    assert!(
        !doc.contains("estimate_over_actual"),
        "accuracy ratio must be omitted on zero-pair joins:\n{doc}"
    );
}

/// A join that does find pairs still reports the accuracy ratio — the fix
/// must not silence the healthy path.
#[test]
fn nonzero_pair_join_still_reports_the_accuracy_ratio() {
    let pts: Vec<[f32; 2]> = (0..40).map(|i| [0.01 * i as f32, 0.0]).collect();
    let sink = JsonTelemetry::new("nonzero-pairs");
    let outcome = simjoin::SelfJoin::new(&pts, SelfJoinConfig::new(0.05))
        .unwrap()
        .with_telemetry(&sink)
        .run()
        .unwrap();
    assert!(!outcome.result.is_empty());
    let doc = sink.to_json();
    assert_strict_json(&doc, "nonzero-pair join telemetry");
    assert!(
        doc.contains("estimate_over_actual"),
        "ratio missing:\n{doc}"
    );
    assert!(
        doc.contains("\"zero_actual\": false"),
        "flag missing:\n{doc}"
    );
}

/// The fleet path tags per-device events and emits the fleet summary —
/// all of it strict JSON.
#[test]
fn fleet_join_telemetry_is_strict_json() {
    let pts: Vec<[f32; 2]> = (0..120)
        .map(|i| [0.03 * (i % 12) as f32, 0.05 * (i / 12) as f32])
        .collect();
    let config = SelfJoinConfig::new(0.08).with_balancing(Balancing::WorkQueue);
    let sink = JsonTelemetry::new("fleet");
    let fleet = warpsim::DeviceFleet::homogeneous(3, config.gpu);
    simjoin::SelfJoin::new(&pts, config)
        .unwrap()
        .with_telemetry(&sink)
        .run_on_fleet(&fleet, ShardStrategy::WorkloadAware)
        .unwrap();
    let doc = sink.to_json();
    assert_strict_json(&doc, "fleet telemetry");
    for needle in [
        "\"scope\": \"executor.fleet\"",
        "\"name\": \"shard_plan\"",
        "\"name\": \"shard_done\"",
        "\"name\": \"fleet_summary\"",
        "\"device\":",
        "\"makespan_model_s\":",
    ] {
        assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
    }
}

/// The hybrid co-executor's `hybrid.*` events — the cut decision and both
/// backend completions, including the CPU side's host-time observation —
/// are strict JSON and carry the schema EXPERIMENTS.md documents.
#[test]
fn hybrid_join_telemetry_is_strict_json() {
    let pts: Vec<[f32; 2]> = (0..120)
        .map(|i| [0.03 * (i % 12) as f32, 0.05 * (i / 12) as f32])
        .collect();
    let config = SelfJoinConfig::new(0.08).with_balancing(Balancing::WorkQueue);
    let sink = JsonTelemetry::new("hybrid");
    simjoin::SelfJoin::new(&pts, config)
        .unwrap()
        .with_telemetry(&sink)
        .run_hybrid(&simjoin::HybridPolicy::default().with_jobs(2))
        .unwrap();
    let doc = sink.to_json();
    assert_strict_json(&doc, "hybrid telemetry");
    for needle in [
        "\"scope\": \"hybrid\"",
        "\"name\": \"cut\"",
        "\"name\": \"backend_done\"",
        "\"backend\": \"gpu\"",
        "\"backend\": \"cpu\"",
        "\"predicted_gpu_model_s\":",
        "\"predicted_cpu_model_s\":",
        "\"host_ns\":",
    ] {
        assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
    }
}

/// Replaces the numeric value of every `host_*`-prefixed field with `0`.
/// Host-time observations (`host_ns`, `host_workers`, `host_exec_ns`, …)
/// are the *only* fields allowed to differ across `host_jobs` runs —
/// everything else in the document must be byte-identical.
fn mask_host_fields(doc: &str) -> String {
    let mut out = String::with_capacity(doc.len());
    let mut rest = doc;
    while let Some(hit) = rest.find("\"host_") {
        let Some(value_start) = rest[hit..].find("\": ").map(|p| hit + p + 3) else {
            break;
        };
        out.push_str(&rest[..value_start]);
        let tail = &rest[value_start..];
        let value_len = tail.find([',', '}']).unwrap_or(tail.len());
        out.push('0');
        rest = &tail[value_len..];
    }
    out.push_str(rest);
    out
}

/// The host-parallel byte-identity invariant: the telemetry document of a
/// join is byte-for-byte identical for any `host_jobs`, once the values of
/// `host_*`-prefixed fields (the explicitly host-dependent wall-clock and
/// worker-count observations) are masked. The executor's documented total
/// order — events appear exactly where the serial plan-order execution
/// would record them, with run-global indices restored at splice time —
/// means event kinds, order, counts, and every model-side value must not
/// move when the inside of the join runs on threads.
#[test]
fn telemetry_documents_are_byte_identical_across_host_jobs() {
    let pts: Vec<[f32; 2]> = (0..200)
        .map(|i| [0.03 * (i % 20) as f32, 0.05 * (i / 20) as f32])
        .collect();
    let doc_at = |jobs: usize| {
        let mut config = SelfJoinConfig::new(0.08)
            .with_balancing(Balancing::WorkQueue)
            .with_host_jobs(jobs);
        // Several batches plus overflow splits, so the batch layer both
        // has pool work and exercises the split/retry splice path.
        config.batching.batch_result_capacity = 64;
        let sink = JsonTelemetry::new("host-jobs");
        simjoin::SelfJoin::new(&pts, config)
            .unwrap()
            .with_telemetry(&sink)
            .run()
            .unwrap();
        mask_host_fields(&sink.to_json())
    };
    let base = doc_at(1);
    assert_strict_json(&base, "masked host-jobs telemetry");
    assert!(
        base.contains("\"name\": \"batch\""),
        "expected batch events in:\n{base}"
    );
    for jobs in [2usize, 4, 8] {
        assert_eq!(
            base,
            doc_at(jobs),
            "single-device telemetry drifted at host_jobs={jobs}"
        );
    }
    // The fleet path: per-device event streams are spliced in device order
    // and must land byte-identically too.
    let fleet_doc_at = |jobs: usize| {
        let mut config = SelfJoinConfig::new(0.08)
            .with_balancing(Balancing::WorkQueue)
            .with_host_jobs(jobs);
        config.batching.batch_result_capacity = 64;
        let sink = JsonTelemetry::new("host-jobs-fleet");
        let fleet = warpsim::DeviceFleet::homogeneous(3, config.gpu);
        simjoin::SelfJoin::new(&pts, config)
            .unwrap()
            .with_telemetry(&sink)
            .run_on_fleet(&fleet, ShardStrategy::WorkloadAware)
            .unwrap();
        mask_host_fields(&sink.to_json())
    };
    let fleet_base = fleet_doc_at(1);
    assert_strict_json(&fleet_base, "masked host-jobs fleet telemetry");
    for jobs in [2usize, 4, 8] {
        assert_eq!(
            fleet_base,
            fleet_doc_at(jobs),
            "fleet telemetry drifted at host_jobs={jobs}"
        );
    }
}

/// Every telemetry artifact recorded under `results/` must round-trip
/// through the strict parser. Skips silently when no artifacts exist (the
/// experiment driver hasn't been run in this checkout).
#[test]
fn recorded_result_artifacts_are_strict_json() {
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../results");
    let Ok(entries) = std::fs::read_dir(&results) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let doc = std::fs::read_to_string(&path).expect("readable artifact");
        assert_strict_json(&doc, &format!("{}", path.display()));
    }
}
