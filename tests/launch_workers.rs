//! Host-side parallelism is an implementation detail of the simulator:
//! `warpsim::kernel::launch` must return byte-identical reports and result
//! buffers no matter how many host worker threads execute the warp bodies.

use warpsim::{
    launch_with, DeviceBuffer, GpuConfig, IssueOrder, LaneProgram, LaneSink, LaunchOptions, Op,
    OpKind, WarpSource,
};

struct EmitLane {
    id: u32,
    remaining: u32,
}

impl LaneProgram for EmitLane {
    fn step(&mut self, sink: &mut LaneSink) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            sink.emit(self.id, self.id.wrapping_mul(31).wrapping_add(7));
        }
        Some(Op::new(OpKind::Distance, 8))
    }
}

struct VariedWarps {
    work: Vec<u32>,
    lanes: usize,
}

impl WarpSource for VariedWarps {
    type Lane = EmitLane;

    fn num_warps(&self) -> usize {
        self.work.len()
    }

    fn make_warp(&self, warp_id: u32) -> Vec<EmitLane> {
        (0..self.lanes)
            .map(|l| EmitLane {
                id: warp_id * self.lanes as u32 + l as u32,
                // Uneven per-lane work → divergence, so the serialization
                // counters in the report are non-trivial.
                remaining: 1 + self.work[warp_id as usize] + (l as u32 % 3),
            })
            .collect()
    }
}

#[test]
fn worker_count_is_invisible_in_the_report() {
    let gpu = GpuConfig::small_test();
    let work: Vec<u32> = (0..97u32).map(|i| (i * 13) % 41).collect();
    let source = VariedWarps { work, lanes: 4 };
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut runs = Vec::new();
    for workers in [Some(1), Some(parallelism), None] {
        let mut out = DeviceBuffer::with_capacity(10_000);
        let opts = LaunchOptions {
            workers,
            ..LaunchOptions::default()
        };
        let report = launch_with(
            &gpu,
            &source,
            IssueOrder::Arbitrary { seed: 42 },
            &mut out,
            &opts,
        )
        .expect("launch");
        runs.push((format!("{report:?}"), out.as_slice().to_vec()));
    }
    assert!(!runs[0].1.is_empty(), "test needs emitted pairs");
    assert_eq!(runs[0], runs[1], "1 worker vs available_parallelism");
    assert_eq!(runs[0], runs[2], "explicit vs default worker count");
}
