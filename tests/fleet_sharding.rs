//! End-to-end suite for the multi-device sharded executor: on a clean
//! homogeneous fleet the canonical outcome must be bit-identical to the
//! single-device run for **any** device count and either partitioning
//! strategy, the merged pair set must stay exact under per-device faults,
//! and on the paper's skewed (exponential) data the workload-aware cut must
//! beat naive equal-count partitioning on makespan.

use simjoin::{Balancing, BatchingConfig, SelfJoinConfig, ShardStrategy};
use sj_integration_support::{
    assert_canonical_reports_identical, brute_force_dyn, join_dyn, join_fleet_dyn,
    join_fleet_dyn_chaos, small_datasets,
};
use sjdata::DatasetSpec;
use warpsim::{FaultProfile, FaultSchedule};

const STRATEGIES: [ShardStrategy; 2] = [ShardStrategy::WorkloadAware, ShardStrategy::EqualCount];

/// Across every Table-I dataset family, every balancing, and both
/// strategies: the fleet result is exact, and the canonical report is
/// bit-identical between 1 and 4 devices and to the plain single-device
/// executor.
#[test]
fn fleet_is_exact_and_canonical_across_datasets() {
    for (name, pts, eps) in small_datasets(250) {
        let truth = brute_force_dyn(&pts, eps);
        let batching = BatchingConfig {
            batch_result_capacity: truth.len() / 5 + 8,
            ..BatchingConfig::default()
        };
        for balancing in [Balancing::None, Balancing::WorkQueue] {
            let config = SelfJoinConfig::new(eps)
                .with_balancing(balancing)
                .with_batching(batching);
            let (single_pairs, single_report) = join_dyn(&pts, config.clone());
            assert_eq!(single_pairs, truth, "{name}: single-device exactness");
            for strategy in STRATEGIES {
                for devices in [1usize, 4] {
                    let ctx = format!("{name}, {balancing:?}, {} x{devices}", strategy.label());
                    let (pairs, report, fleet) =
                        join_fleet_dyn(&pts, config.clone(), devices, strategy);
                    assert_eq!(pairs, truth, "pairs wrong [{ctx}]");
                    assert_canonical_reports_identical(&single_report, &report, &ctx);
                    assert_eq!(fleet.shards.len(), devices, "[{ctx}]");
                    assert!(
                        fleet.makespan_s <= report.response_time_s() + 1e-12,
                        "makespan exceeds serialized time [{ctx}]"
                    );
                }
            }
        }
    }
}

/// The acceptance experiment: on an exponential (λ = 40) dataset — the
/// paper's most skewed regime — a 4-device workload-aware partition of the
/// workload-sorted queue plan must report a lower makespan than naive
/// equal-count partitioning, because the sorted plan front-loads the
/// heaviest chunks into the first region.
#[test]
fn workload_aware_partition_beats_equal_count_makespan_on_skewed_data() {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(600);
    let eps = spec.epsilons[2] * 1.5;
    let truth = brute_force_dyn(&pts, eps);
    let config = SelfJoinConfig::new(eps)
        .with_balancing(Balancing::WorkQueue)
        .with_batching(BatchingConfig {
            batch_result_capacity: truth.len() / 12 + 8,
            ..BatchingConfig::default()
        });
    let (pairs_w, report_w, fleet_w) =
        join_fleet_dyn(&pts, config.clone(), 4, ShardStrategy::WorkloadAware);
    let (pairs_c, report_c, fleet_c) = join_fleet_dyn(&pts, config, 4, ShardStrategy::EqualCount);
    // Both are exact and canonically identical — only the cut differs.
    assert_eq!(pairs_w, truth);
    assert_eq!(pairs_c, truth);
    assert!(
        report_w.num_batches >= 8,
        "need enough chunks for a meaningful cut, got {}",
        report_w.num_batches
    );
    assert_eq!(
        report_w.response_time_s().to_bits(),
        report_c.response_time_s().to_bits(),
        "canonical time must not depend on the cut"
    );
    assert!(
        fleet_w.makespan_s < fleet_c.makespan_s,
        "workload-aware makespan {:.6} must beat equal-count {:.6}",
        fleet_w.makespan_s,
        fleet_c.makespan_s
    );
    assert!(
        fleet_w.workload_imbalance() <= fleet_c.workload_imbalance(),
        "workload imbalance: aware {:.3} vs count {:.3}",
        fleet_w.workload_imbalance(),
        fleet_c.workload_imbalance()
    );
}

/// Recovery determinism: replaying the same seeded fault schedule against
/// the same fleet is bit-for-bit repeatable — pair set, makespan bits, and
/// the full recovery accounting (health timeline included).
#[test]
fn same_seed_faulted_fleet_replays_bit_identically() {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(400);
    let eps = spec.epsilons[2] * 1.5;
    let truth = brute_force_dyn(&pts, eps);
    let config = SelfJoinConfig::new(eps)
        .with_balancing(Balancing::WorkQueue)
        .with_batching(BatchingConfig {
            batch_result_capacity: truth.len() / 10 + 8,
            ..BatchingConfig::default()
        });
    for name in ["device-lost", "transient", "mixed"] {
        let profile = FaultProfile::by_name(name).unwrap();
        let run = || {
            let faults = vec![(1usize, FaultSchedule::seeded(7, &profile))];
            join_fleet_dyn_chaos(
                &pts,
                config.clone(),
                4,
                ShardStrategy::WorkloadAware,
                &faults,
            )
        };
        match (run(), run()) {
            (Ok((pairs_a, report_a, fleet_a)), Ok((pairs_b, report_b, fleet_b))) => {
                assert_eq!(pairs_a, truth, "{name}: faulted fleet must stay exact");
                assert_eq!(pairs_a, pairs_b, "{name}: pair set drifted");
                assert_eq!(
                    report_a.response_time_s().to_bits(),
                    report_b.response_time_s().to_bits(),
                    "{name}: canonical time drifted"
                );
                assert_eq!(
                    fleet_a.makespan_s.to_bits(),
                    fleet_b.makespan_s.to_bits(),
                    "{name}: makespan drifted"
                );
                assert_eq!(
                    fleet_a.recovery, fleet_b.recovery,
                    "{name}: recovery accounting drifted"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "{name}"),
            (a, b) => panic!("{name}: outcomes diverged: {a:?} vs {b:?}"),
        }
    }
}

/// The host-parallel invariant across the fleet: for any `host_jobs`, any
/// device count, and any seeded fault profile, the merged pair set, the
/// canonical report, the fleet makespan bits, and the recovery accounting
/// are identical to the serial (`host_jobs = 1`) run — host threads
/// reshuffle wall-clock only, never results.
#[test]
fn host_jobs_invariant_across_devices_and_chaos() {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(400);
    let eps = spec.epsilons[2] * 1.5;
    let truth = brute_force_dyn(&pts, eps);
    let base = SelfJoinConfig::new(eps)
        .with_balancing(Balancing::WorkQueue)
        .with_batching(BatchingConfig {
            batch_result_capacity: truth.len() / 10 + 8,
            ..BatchingConfig::default()
        });
    // Clean fleets: host_jobs x device count.
    for devices in [1usize, 2, 4] {
        let run = |jobs: usize| {
            join_fleet_dyn(
                &pts,
                base.clone().with_host_jobs(jobs),
                devices,
                ShardStrategy::WorkloadAware,
            )
        };
        let (pairs_1, report_1, fleet_1) = run(1);
        assert_eq!(pairs_1, truth, "x{devices}: serial fleet must be exact");
        for jobs in [2usize, 4, 8] {
            let ctx = format!("clean x{devices}, host_jobs={jobs}");
            let (pairs_n, report_n, fleet_n) = run(jobs);
            assert_eq!(pairs_1, pairs_n, "pair set drifted [{ctx}]");
            assert_canonical_reports_identical(&report_1, &report_n, &ctx);
            assert_eq!(
                fleet_1.makespan_s.to_bits(),
                fleet_n.makespan_s.to_bits(),
                "makespan drifted [{ctx}]"
            );
        }
    }
    // Faulted fleets: host_jobs x chaos profile on 4 devices. A faulted
    // device routes itself back to the serial batch path, but the healthy
    // devices of the same round still run on the pool.
    for name in ["device-lost", "transient", "mixed"] {
        let profile = FaultProfile::by_name(name).unwrap();
        let run = |jobs: usize| {
            let faults = vec![(1usize, FaultSchedule::seeded(7, &profile))];
            join_fleet_dyn_chaos(
                &pts,
                base.clone().with_host_jobs(jobs),
                4,
                ShardStrategy::WorkloadAware,
                &faults,
            )
        };
        for jobs in [2usize, 4, 8] {
            match (run(1), run(jobs)) {
                (Ok((pairs_a, report_a, fleet_a)), Ok((pairs_b, report_b, fleet_b))) => {
                    let ctx = format!("{name}, host_jobs={jobs}");
                    assert_eq!(pairs_a, pairs_b, "pair set drifted [{ctx}]");
                    assert_canonical_reports_identical(&report_a, &report_b, &ctx);
                    assert_eq!(
                        fleet_a.makespan_s.to_bits(),
                        fleet_b.makespan_s.to_bits(),
                        "makespan drifted [{ctx}]"
                    );
                    assert_eq!(
                        fleet_a.recovery, fleet_b.recovery,
                        "recovery accounting drifted [{ctx}]"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "{name}, host_jobs={jobs}: error drifted"
                ),
                (a, b) => panic!("{name}, host_jobs={jobs}: outcomes diverged: {a:?} vs {b:?}"),
            }
        }
    }
}

/// Scaling sanity: with more devices the makespan never grows, and with
/// enough devices it drops strictly below the single-device response time.
#[test]
fn makespan_is_monotone_in_device_count() {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(500);
    let eps = spec.epsilons[2] * 1.5;
    let truth = brute_force_dyn(&pts, eps);
    let config = SelfJoinConfig::new(eps)
        .with_balancing(Balancing::WorkQueue)
        .with_batching(BatchingConfig {
            batch_result_capacity: truth.len() / 10 + 8,
            ..BatchingConfig::default()
        });
    let mut last = f64::INFINITY;
    for devices in [1usize, 2, 4, 8] {
        let (pairs, _, fleet) =
            join_fleet_dyn(&pts, config.clone(), devices, ShardStrategy::WorkloadAware);
        assert_eq!(pairs, truth, "{devices} devices");
        assert!(
            fleet.makespan_s <= last + 1e-12,
            "makespan grew from {last:.6} to {:.6} at {devices} devices",
            fleet.makespan_s
        );
        last = fleet.makespan_s;
    }
    let (_, report_1, fleet_1) =
        join_fleet_dyn(&pts, config.clone(), 1, ShardStrategy::WorkloadAware);
    assert_eq!(
        fleet_1.makespan_s.to_bits(),
        report_1.response_time_s().to_bits(),
        "one device: makespan is the whole join"
    );
    assert!(
        last < fleet_1.makespan_s,
        "8 devices ({last:.6}) must beat 1 device ({:.6})",
        fleet_1.makespan_s
    );
}
