//! The GPU join and the SUPER-EGO CPU comparator must agree pair-for-pair
//! on every dataset family — the cross-implementation oracle.

use simjoin::SelfJoinConfig;
use sj_integration_support::{join_dyn, small_datasets, superego_dyn};

#[test]
fn superego_and_gpu_join_agree_on_all_families() {
    for (name, pts, eps) in small_datasets(500) {
        let (gpu_pairs, _) = join_dyn(&pts, SelfJoinConfig::optimized(eps));
        let cpu_pairs = superego_dyn(&pts, eps);
        assert_eq!(gpu_pairs, cpu_pairs, "{name} at eps {eps}");
    }
}

#[test]
fn agreement_holds_across_epsilon_regimes() {
    let (_, pts, _) = small_datasets(800).remove(5); // Expo2D2M family entry
    for eps in [0.05f32, 0.2, 1.0, 5.0] {
        let (gpu_pairs, _) = join_dyn(&pts, SelfJoinConfig::new(eps));
        let cpu_pairs = superego_dyn(&pts, eps);
        assert_eq!(gpu_pairs, cpu_pairs, "eps {eps}");
    }
}

#[test]
fn superego_pruning_does_more_with_tighter_epsilon() {
    let (_, pts, _) = small_datasets(1_500).remove(0); // Unif2D2M
    let fixed = pts.as_fixed::<2>().unwrap();
    let loose = superego::super_ego_join(&fixed, &superego::SuperEgoConfig::new(5.0));
    let tight = superego::super_ego_join(&fixed, &superego::SuperEgoConfig::new(0.2));
    assert!(tight.stats.distance_calcs < loose.stats.distance_calcs);
}
