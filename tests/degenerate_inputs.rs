//! Degenerate-input regression tests for the seams hardened alongside the
//! serve daemon: every helper that a request loop can reach with empty or
//! minimal inputs must return a well-formed answer, not panic.
//!
//! These pin down the unwrap audit — each case here was reachable from the
//! serve request boundary (a maintained index handed to a balancing mode
//! that expects a profile, fleet partitioning of an empty plan, a hybrid
//! cut over zero units) and must stay panic-free.

use std::ops::Range;

use epsgrid::GridIndex;
use simjoin::{
    choose_cut, inclusive_weight_prefix, partition_units, partition_units_from_prefix, Balancing,
    SelfJoin, SelfJoinConfig, ShardStrategy,
};

fn grid_points() -> (Vec<[f32; 2]>, f32) {
    let pts: Vec<[f32; 2]> = (0..64)
        .map(|i| [0.04 * (i % 8) as f32, 0.05 * (i / 8) as f32])
        .collect();
    (pts, 0.09)
}

/// A maintained index handed to the work-queue balancer *without* a
/// per-cell workload vector: the executor must derive the profile itself
/// (the balancer needs one) instead of unwrapping an absent option.
#[test]
fn work_queue_join_on_maintained_index_without_profile_does_not_panic() {
    let (pts, eps) = grid_points();
    let grid = GridIndex::build(&pts, eps).unwrap();
    let config = SelfJoinConfig::new(eps).with_balancing(Balancing::WorkQueue);
    let outcome = SelfJoin::with_maintained_index(&pts, config, grid, None)
        .unwrap()
        .run()
        .unwrap();
    let mut expected = simjoin::brute_force_join(&pts, eps);
    expected.sort_unstable();
    assert_eq!(outcome.result.sorted_pairs(), expected);
}

/// The same seam for workload sorting, which also wants a profile.
#[test]
fn sorted_join_on_maintained_index_without_profile_does_not_panic() {
    let (pts, eps) = grid_points();
    let grid = GridIndex::build(&pts, eps).unwrap();
    let config = SelfJoinConfig::new(eps).with_balancing(Balancing::SortByWorkload);
    let outcome = SelfJoin::with_maintained_index(&pts, config, grid, None)
        .unwrap()
        .run()
        .unwrap();
    let mut expected = simjoin::brute_force_join(&pts, eps);
    expected.sort_unstable();
    assert_eq!(outcome.result.sorted_pairs(), expected);
}

/// Fleet partitioning of nothing: every device gets an empty range, and
/// the prefix of an empty weight vector is empty — no underflow, no panic.
#[test]
fn empty_fleet_partitions_are_well_formed() {
    assert_eq!(inclusive_weight_prefix(&[]), Vec::<u128>::new());
    for strategy in [ShardStrategy::EqualCount, ShardStrategy::WorkloadAware] {
        let parts = partition_units(&[], 4, strategy);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(Range::is_empty), "{strategy:?}: {parts:?}");
        let from_prefix = partition_units_from_prefix(&[], 3, strategy);
        assert_eq!(from_prefix.len(), 3);
        assert!(from_prefix.iter().all(Range::is_empty));
    }
    // Zero devices clamps to one rather than dividing by zero.
    assert_eq!(
        partition_units(&[5, 5], 0, ShardStrategy::EqualCount).len(),
        1
    );
}

/// A hybrid cut over zero units keeps everything on the GPU side and
/// predicts zero work for both substrates.
#[test]
fn hybrid_cut_over_zero_units_is_trivial() {
    let choice = choose_cut(&[], 1.0e9, 1.0e8, 0.0);
    assert_eq!(choice.cut, 0);
    assert_eq!(choice.predicted_gpu_s, 0.0);
    assert_eq!(choice.predicted_cpu_s, 0.0);
    // Degenerate rates must not poison the choice with NaN either.
    let nan_rates = choose_cut(&[3, 2, 1], f64::NAN, f64::NAN, f64::NAN);
    assert!(nan_rates.cut <= 3);
    assert!(nan_rates.predicted_gpu_s.is_finite());
    assert!(nan_rates.predicted_cpu_s.is_finite());
}
