//! Shared fixtures for the cross-crate integration tests.

use epsgrid::DynPoints;
use sjdata::DatasetSpec;

/// A small skewed dataset: dense enough that every fault class in the named
/// profiles can actually land (multiple launches, non-trivial buffers).
/// Shared by the chaos, fleet, and hybrid co-processing suites.
pub fn chaos_dataset() -> (DynPoints, f32) {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(400);
    let eps = spec.epsilons[2] * 1.5;
    (pts, eps)
}

/// Batching tight enough to split the run into several batches, so mid-join
/// faults leave salvageable completed work behind — and so a hybrid cut has
/// several units to choose between.
pub fn small_batches(expected_pairs: usize) -> simjoin::BatchingConfig {
    simjoin::BatchingConfig {
        batch_result_capacity: expected_pairs / 3 + 8,
        ..simjoin::BatchingConfig::default()
    }
}

/// Asserts that two canonical join reports are bit-identical — the invariant
/// every alternative execution substrate (fleet sharding, hybrid
/// co-processing) must uphold against the single-device GPU run.
pub fn assert_canonical_reports_identical(
    single: &simjoin::JoinReport,
    other: &simjoin::JoinReport,
    ctx: &str,
) {
    assert_eq!(single.estimate, other.estimate, "estimate differs [{ctx}]");
    assert_eq!(
        single.num_batches, other.num_batches,
        "batch count differs [{ctx}]"
    );
    assert_eq!(
        single.total_pairs, other.total_pairs,
        "pair count differs [{ctx}]"
    );
    assert_eq!(single.totals, other.totals, "warp totals differ [{ctx}]");
    assert_eq!(
        single.degradation, other.degradation,
        "degradation differs [{ctx}]"
    );
    assert_eq!(
        single.pipeline.total_s.to_bits(),
        other.pipeline.total_s.to_bits(),
        "pipeline time differs [{ctx}]"
    );
    assert_eq!(
        single.response_time_s().to_bits(),
        other.response_time_s().to_bits(),
        "response time differs [{ctx}]"
    );
    for (i, (s, f)) in single.batches.iter().zip(&other.batches).enumerate() {
        assert_eq!(s.pairs, f.pairs, "batch {i} pairs differ [{ctx}]");
        assert_eq!(
            s.kernel_s.to_bits(),
            f.kernel_s.to_bits(),
            "batch {i} kernel time differs [{ctx}]"
        );
        assert_eq!(
            s.transfer_s.to_bits(),
            f.transfer_s.to_bits(),
            "batch {i} transfer time differs [{ctx}]"
        );
        assert_eq!(
            s.launch.totals, f.launch.totals,
            "batch {i} launch totals differ [{ctx}]"
        );
    }
}

/// Small instances of every dataset family in Table I, sized for exhaustive
/// (brute-force-verified) integration testing.
pub fn small_datasets(n: usize) -> Vec<(String, DynPoints, f32)> {
    DatasetSpec::table1()
        .into_iter()
        .map(|spec| {
            let pts = spec.generate(n);
            // Use a mid-sweep ε, scaled up slightly because the test
            // instances are sparser than the default-sized ones.
            let eps = spec.epsilons[2] * 1.5;
            (spec.name, pts, eps)
        })
        .collect()
}

/// Brute-force self-join over a dimension-erased dataset.
pub fn brute_force_dyn(points: &DynPoints, eps: f32) -> Vec<(u32, u32)> {
    fn brute<const N: usize>(pts: &[[f32; N]], eps: f32) -> Vec<(u32, u32)> {
        let mut pairs = simjoin::brute_force_join(pts, eps);
        pairs.sort_unstable();
        pairs
    }
    match points.dims() {
        2 => brute(&points.as_fixed::<2>().unwrap(), eps),
        3 => brute(&points.as_fixed::<3>().unwrap(), eps),
        4 => brute(&points.as_fixed::<4>().unwrap(), eps),
        5 => brute(&points.as_fixed::<5>().unwrap(), eps),
        6 => brute(&points.as_fixed::<6>().unwrap(), eps),
        d => panic!("unsupported dims {d}"),
    }
}

/// Runs a GPU self-join variant over a dimension-erased dataset and returns
/// `(sorted pairs, report)`.
pub fn join_dyn(
    points: &DynPoints,
    config: simjoin::SelfJoinConfig,
) -> (Vec<(u32, u32)>, simjoin::JoinReport) {
    fn run<const N: usize>(
        pts: &[[f32; N]],
        config: simjoin::SelfJoinConfig,
    ) -> (Vec<(u32, u32)>, simjoin::JoinReport) {
        let outcome = simjoin::SelfJoin::new(pts, config)
            .expect("config")
            .run()
            .expect("join");
        (outcome.result.sorted_pairs(), outcome.report)
    }
    match points.dims() {
        2 => run(&points.as_fixed::<2>().unwrap(), config),
        3 => run(&points.as_fixed::<3>().unwrap(), config),
        4 => run(&points.as_fixed::<4>().unwrap(), config),
        5 => run(&points.as_fixed::<5>().unwrap(), config),
        6 => run(&points.as_fixed::<6>().unwrap(), config),
        d => panic!("unsupported dims {d}"),
    }
}

/// Runs a GPU self-join sharded across `devices` homogeneous simulated
/// GPUs and returns `(sorted pairs, canonical report, fleet report)`.
pub fn join_fleet_dyn(
    points: &DynPoints,
    config: simjoin::SelfJoinConfig,
    devices: usize,
    strategy: simjoin::ShardStrategy,
) -> (Vec<(u32, u32)>, simjoin::JoinReport, simjoin::FleetReport) {
    fn run<const N: usize>(
        pts: &[[f32; N]],
        config: simjoin::SelfJoinConfig,
        devices: usize,
        strategy: simjoin::ShardStrategy,
    ) -> (Vec<(u32, u32)>, simjoin::JoinReport, simjoin::FleetReport) {
        let fleet = warpsim::DeviceFleet::homogeneous(devices, config.gpu);
        let outcome = simjoin::SelfJoin::new(pts, config)
            .expect("config")
            .run_on_fleet(&fleet, strategy)
            .expect("fleet join");
        (outcome.result.sorted_pairs(), outcome.report, outcome.fleet)
    }
    match points.dims() {
        2 => run(&points.as_fixed::<2>().unwrap(), config, devices, strategy),
        3 => run(&points.as_fixed::<3>().unwrap(), config, devices, strategy),
        4 => run(&points.as_fixed::<4>().unwrap(), config, devices, strategy),
        5 => run(&points.as_fixed::<5>().unwrap(), config, devices, strategy),
        6 => run(&points.as_fixed::<6>().unwrap(), config, devices, strategy),
        d => panic!("unsupported dims {d}"),
    }
}

/// Runs a GPU self-join with a fault plane and telemetry attached. `Err`
/// carries the typed error — an acceptable chaos outcome, unlike a wrong
/// pair set.
pub fn join_dyn_chaos(
    points: &DynPoints,
    config: simjoin::SelfJoinConfig,
    plane: &warpsim::FaultPlane,
    telemetry: &dyn sj_telemetry::Telemetry,
) -> Result<(Vec<(u32, u32)>, simjoin::JoinReport), simjoin::JoinError> {
    fn run<const N: usize>(
        pts: &[[f32; N]],
        config: simjoin::SelfJoinConfig,
        plane: &warpsim::FaultPlane,
        telemetry: &dyn sj_telemetry::Telemetry,
    ) -> Result<(Vec<(u32, u32)>, simjoin::JoinReport), simjoin::JoinError> {
        let outcome = simjoin::SelfJoin::new(pts, config)?
            .with_telemetry(telemetry)
            .with_fault_plane(plane)
            .run()?;
        Ok((outcome.result.sorted_pairs(), outcome.report))
    }
    match points.dims() {
        2 => run(&points.as_fixed::<2>().unwrap(), config, plane, telemetry),
        3 => run(&points.as_fixed::<3>().unwrap(), config, plane, telemetry),
        4 => run(&points.as_fixed::<4>().unwrap(), config, plane, telemetry),
        5 => run(&points.as_fixed::<5>().unwrap(), config, plane, telemetry),
        6 => run(&points.as_fixed::<6>().unwrap(), config, plane, telemetry),
        d => panic!("unsupported dims {d}"),
    }
}

/// What a faulted fleet run yields: `(sorted pairs, canonical report,
/// fleet report)`, or the typed error.
pub type FleetChaosResult =
    Result<(Vec<(u32, u32)>, simjoin::JoinReport, simjoin::FleetReport), simjoin::JoinError>;

/// Runs a GPU self-join sharded across `devices` homogeneous simulated
/// GPUs, with per-device fault schedules attached, and returns
/// `(sorted pairs, canonical report, fleet report)`. `Err` carries the
/// typed error — an acceptable chaos outcome, unlike a wrong pair set.
pub fn join_fleet_dyn_chaos(
    points: &DynPoints,
    config: simjoin::SelfJoinConfig,
    devices: usize,
    strategy: simjoin::ShardStrategy,
    faults: &[(usize, warpsim::FaultSchedule)],
) -> FleetChaosResult {
    fn run<const N: usize>(
        pts: &[[f32; N]],
        config: simjoin::SelfJoinConfig,
        devices: usize,
        strategy: simjoin::ShardStrategy,
        faults: &[(usize, warpsim::FaultSchedule)],
    ) -> FleetChaosResult {
        let mut fleet = warpsim::DeviceFleet::homogeneous(devices, config.gpu);
        for (device, schedule) in faults {
            fleet = fleet.with_fault_schedule(*device, schedule.clone());
        }
        let outcome = simjoin::SelfJoin::new(pts, config)?.run_on_fleet(&fleet, strategy)?;
        Ok((outcome.result.sorted_pairs(), outcome.report, outcome.fleet))
    }
    match points.dims() {
        2 => run(
            &points.as_fixed::<2>().unwrap(),
            config,
            devices,
            strategy,
            faults,
        ),
        3 => run(
            &points.as_fixed::<3>().unwrap(),
            config,
            devices,
            strategy,
            faults,
        ),
        4 => run(
            &points.as_fixed::<4>().unwrap(),
            config,
            devices,
            strategy,
            faults,
        ),
        5 => run(
            &points.as_fixed::<5>().unwrap(),
            config,
            devices,
            strategy,
            faults,
        ),
        6 => run(
            &points.as_fixed::<6>().unwrap(),
            config,
            devices,
            strategy,
            faults,
        ),
        d => panic!("unsupported dims {d}"),
    }
}

/// Runs a hybrid CPU/GPU co-processed self-join over a dimension-erased
/// dataset and returns `(sorted pairs, canonical report, hybrid report)`.
/// Panics on any error — clean-run suites use this.
pub fn join_dyn_hybrid(
    points: &DynPoints,
    config: simjoin::SelfJoinConfig,
    policy: &simjoin::HybridPolicy,
) -> (Vec<(u32, u32)>, simjoin::JoinReport, simjoin::HybridReport) {
    fn run<const N: usize>(
        pts: &[[f32; N]],
        config: simjoin::SelfJoinConfig,
        policy: &simjoin::HybridPolicy,
    ) -> (Vec<(u32, u32)>, simjoin::JoinReport, simjoin::HybridReport) {
        let outcome = simjoin::SelfJoin::new(pts, config)
            .expect("config")
            .run_hybrid(policy)
            .expect("hybrid join");
        (
            outcome.result.sorted_pairs(),
            outcome.report,
            outcome.hybrid,
        )
    }
    match points.dims() {
        2 => run(&points.as_fixed::<2>().unwrap(), config, policy),
        3 => run(&points.as_fixed::<3>().unwrap(), config, policy),
        4 => run(&points.as_fixed::<4>().unwrap(), config, policy),
        5 => run(&points.as_fixed::<5>().unwrap(), config, policy),
        6 => run(&points.as_fixed::<6>().unwrap(), config, policy),
        d => panic!("unsupported dims {d}"),
    }
}

/// What a faulted hybrid run yields: `(sorted pairs, canonical report,
/// hybrid report)`, or the typed error.
pub type HybridChaosResult =
    Result<(Vec<(u32, u32)>, simjoin::JoinReport, simjoin::HybridReport), simjoin::JoinError>;

/// Runs a hybrid co-processed self-join with a fault plane and telemetry
/// attached. `Err` carries the typed error — an acceptable chaos outcome,
/// unlike a wrong pair set.
pub fn join_dyn_hybrid_chaos(
    points: &DynPoints,
    config: simjoin::SelfJoinConfig,
    policy: &simjoin::HybridPolicy,
    plane: &warpsim::FaultPlane,
    telemetry: &dyn sj_telemetry::Telemetry,
) -> HybridChaosResult {
    fn run<const N: usize>(
        pts: &[[f32; N]],
        config: simjoin::SelfJoinConfig,
        policy: &simjoin::HybridPolicy,
        plane: &warpsim::FaultPlane,
        telemetry: &dyn sj_telemetry::Telemetry,
    ) -> HybridChaosResult {
        let outcome = simjoin::SelfJoin::new(pts, config)?
            .with_telemetry(telemetry)
            .with_fault_plane(plane)
            .run_hybrid(policy)?;
        Ok((
            outcome.result.sorted_pairs(),
            outcome.report,
            outcome.hybrid,
        ))
    }
    match points.dims() {
        2 => run(
            &points.as_fixed::<2>().unwrap(),
            config,
            policy,
            plane,
            telemetry,
        ),
        3 => run(
            &points.as_fixed::<3>().unwrap(),
            config,
            policy,
            plane,
            telemetry,
        ),
        4 => run(
            &points.as_fixed::<4>().unwrap(),
            config,
            policy,
            plane,
            telemetry,
        ),
        5 => run(
            &points.as_fixed::<5>().unwrap(),
            config,
            policy,
            plane,
            telemetry,
        ),
        6 => run(
            &points.as_fixed::<6>().unwrap(),
            config,
            policy,
            plane,
            telemetry,
        ),
        d => panic!("unsupported dims {d}"),
    }
}

/// Runs SUPER-EGO over a dimension-erased dataset and returns sorted pairs.
pub fn superego_dyn(points: &DynPoints, eps: f32) -> Vec<(u32, u32)> {
    fn run<const N: usize>(pts: &[[f32; N]], eps: f32) -> Vec<(u32, u32)> {
        let mut pairs = superego::super_ego_join(pts, &superego::SuperEgoConfig::new(eps)).pairs;
        pairs.sort_unstable();
        pairs
    }
    match points.dims() {
        2 => run(&points.as_fixed::<2>().unwrap(), eps),
        3 => run(&points.as_fixed::<3>().unwrap(), eps),
        4 => run(&points.as_fixed::<4>().unwrap(), eps),
        5 => run(&points.as_fixed::<5>().unwrap(), eps),
        6 => run(&points.as_fixed::<6>().unwrap(), eps),
        d => panic!("unsupported dims {d}"),
    }
}
