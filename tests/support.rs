//! Shared fixtures for the cross-crate integration tests.

use epsgrid::DynPoints;
use sjdata::DatasetSpec;

/// Small instances of every dataset family in Table I, sized for exhaustive
/// (brute-force-verified) integration testing.
pub fn small_datasets(n: usize) -> Vec<(String, DynPoints, f32)> {
    DatasetSpec::table1()
        .into_iter()
        .map(|spec| {
            let pts = spec.generate(n);
            // Use a mid-sweep ε, scaled up slightly because the test
            // instances are sparser than the default-sized ones.
            let eps = spec.epsilons[2] * 1.5;
            (spec.name, pts, eps)
        })
        .collect()
}

/// Brute-force self-join over a dimension-erased dataset.
pub fn brute_force_dyn(points: &DynPoints, eps: f32) -> Vec<(u32, u32)> {
    fn brute<const N: usize>(pts: &[[f32; N]], eps: f32) -> Vec<(u32, u32)> {
        let mut pairs = simjoin::brute_force_join(pts, eps);
        pairs.sort_unstable();
        pairs
    }
    match points.dims() {
        2 => brute(&points.as_fixed::<2>().unwrap(), eps),
        3 => brute(&points.as_fixed::<3>().unwrap(), eps),
        4 => brute(&points.as_fixed::<4>().unwrap(), eps),
        5 => brute(&points.as_fixed::<5>().unwrap(), eps),
        6 => brute(&points.as_fixed::<6>().unwrap(), eps),
        d => panic!("unsupported dims {d}"),
    }
}

/// Runs a GPU self-join variant over a dimension-erased dataset and returns
/// `(sorted pairs, report)`.
pub fn join_dyn(
    points: &DynPoints,
    config: simjoin::SelfJoinConfig,
) -> (Vec<(u32, u32)>, simjoin::JoinReport) {
    fn run<const N: usize>(
        pts: &[[f32; N]],
        config: simjoin::SelfJoinConfig,
    ) -> (Vec<(u32, u32)>, simjoin::JoinReport) {
        let outcome = simjoin::SelfJoin::new(pts, config)
            .expect("config")
            .run()
            .expect("join");
        (outcome.result.sorted_pairs(), outcome.report)
    }
    match points.dims() {
        2 => run(&points.as_fixed::<2>().unwrap(), config),
        3 => run(&points.as_fixed::<3>().unwrap(), config),
        4 => run(&points.as_fixed::<4>().unwrap(), config),
        5 => run(&points.as_fixed::<5>().unwrap(), config),
        6 => run(&points.as_fixed::<6>().unwrap(), config),
        d => panic!("unsupported dims {d}"),
    }
}

/// Runs a GPU self-join sharded across `devices` homogeneous simulated
/// GPUs and returns `(sorted pairs, canonical report, fleet report)`.
pub fn join_fleet_dyn(
    points: &DynPoints,
    config: simjoin::SelfJoinConfig,
    devices: usize,
    strategy: simjoin::ShardStrategy,
) -> (Vec<(u32, u32)>, simjoin::JoinReport, simjoin::FleetReport) {
    fn run<const N: usize>(
        pts: &[[f32; N]],
        config: simjoin::SelfJoinConfig,
        devices: usize,
        strategy: simjoin::ShardStrategy,
    ) -> (Vec<(u32, u32)>, simjoin::JoinReport, simjoin::FleetReport) {
        let fleet = warpsim::DeviceFleet::homogeneous(devices, config.gpu);
        let outcome = simjoin::SelfJoin::new(pts, config)
            .expect("config")
            .run_on_fleet(&fleet, strategy)
            .expect("fleet join");
        (outcome.result.sorted_pairs(), outcome.report, outcome.fleet)
    }
    match points.dims() {
        2 => run(&points.as_fixed::<2>().unwrap(), config, devices, strategy),
        3 => run(&points.as_fixed::<3>().unwrap(), config, devices, strategy),
        4 => run(&points.as_fixed::<4>().unwrap(), config, devices, strategy),
        5 => run(&points.as_fixed::<5>().unwrap(), config, devices, strategy),
        6 => run(&points.as_fixed::<6>().unwrap(), config, devices, strategy),
        d => panic!("unsupported dims {d}"),
    }
}

/// Runs a GPU self-join with a fault plane and telemetry attached. `Err`
/// carries the typed error — an acceptable chaos outcome, unlike a wrong
/// pair set.
pub fn join_dyn_chaos(
    points: &DynPoints,
    config: simjoin::SelfJoinConfig,
    plane: &warpsim::FaultPlane,
    telemetry: &dyn sj_telemetry::Telemetry,
) -> Result<(Vec<(u32, u32)>, simjoin::JoinReport), simjoin::JoinError> {
    fn run<const N: usize>(
        pts: &[[f32; N]],
        config: simjoin::SelfJoinConfig,
        plane: &warpsim::FaultPlane,
        telemetry: &dyn sj_telemetry::Telemetry,
    ) -> Result<(Vec<(u32, u32)>, simjoin::JoinReport), simjoin::JoinError> {
        let outcome = simjoin::SelfJoin::new(pts, config)?
            .with_telemetry(telemetry)
            .with_fault_plane(plane)
            .run()?;
        Ok((outcome.result.sorted_pairs(), outcome.report))
    }
    match points.dims() {
        2 => run(&points.as_fixed::<2>().unwrap(), config, plane, telemetry),
        3 => run(&points.as_fixed::<3>().unwrap(), config, plane, telemetry),
        4 => run(&points.as_fixed::<4>().unwrap(), config, plane, telemetry),
        5 => run(&points.as_fixed::<5>().unwrap(), config, plane, telemetry),
        6 => run(&points.as_fixed::<6>().unwrap(), config, plane, telemetry),
        d => panic!("unsupported dims {d}"),
    }
}

/// What a faulted fleet run yields: `(sorted pairs, canonical report,
/// fleet report)`, or the typed error.
pub type FleetChaosResult =
    Result<(Vec<(u32, u32)>, simjoin::JoinReport, simjoin::FleetReport), simjoin::JoinError>;

/// Runs a GPU self-join sharded across `devices` homogeneous simulated
/// GPUs, with per-device fault schedules attached, and returns
/// `(sorted pairs, canonical report, fleet report)`. `Err` carries the
/// typed error — an acceptable chaos outcome, unlike a wrong pair set.
pub fn join_fleet_dyn_chaos(
    points: &DynPoints,
    config: simjoin::SelfJoinConfig,
    devices: usize,
    strategy: simjoin::ShardStrategy,
    faults: &[(usize, warpsim::FaultSchedule)],
) -> FleetChaosResult {
    fn run<const N: usize>(
        pts: &[[f32; N]],
        config: simjoin::SelfJoinConfig,
        devices: usize,
        strategy: simjoin::ShardStrategy,
        faults: &[(usize, warpsim::FaultSchedule)],
    ) -> FleetChaosResult {
        let mut fleet = warpsim::DeviceFleet::homogeneous(devices, config.gpu);
        for (device, schedule) in faults {
            fleet = fleet.with_fault_schedule(*device, schedule.clone());
        }
        let outcome = simjoin::SelfJoin::new(pts, config)?.run_on_fleet(&fleet, strategy)?;
        Ok((outcome.result.sorted_pairs(), outcome.report, outcome.fleet))
    }
    match points.dims() {
        2 => run(
            &points.as_fixed::<2>().unwrap(),
            config,
            devices,
            strategy,
            faults,
        ),
        3 => run(
            &points.as_fixed::<3>().unwrap(),
            config,
            devices,
            strategy,
            faults,
        ),
        4 => run(
            &points.as_fixed::<4>().unwrap(),
            config,
            devices,
            strategy,
            faults,
        ),
        5 => run(
            &points.as_fixed::<5>().unwrap(),
            config,
            devices,
            strategy,
            faults,
        ),
        6 => run(
            &points.as_fixed::<6>().unwrap(),
            config,
            devices,
            strategy,
            faults,
        ),
        d => panic!("unsupported dims {d}"),
    }
}

/// Runs SUPER-EGO over a dimension-erased dataset and returns sorted pairs.
pub fn superego_dyn(points: &DynPoints, eps: f32) -> Vec<(u32, u32)> {
    fn run<const N: usize>(pts: &[[f32; N]], eps: f32) -> Vec<(u32, u32)> {
        let mut pairs = superego::super_ego_join(pts, &superego::SuperEgoConfig::new(eps)).pairs;
        pairs.sort_unstable();
        pairs
    }
    match points.dims() {
        2 => run(&points.as_fixed::<2>().unwrap(), eps),
        3 => run(&points.as_fixed::<3>().unwrap(), eps),
        4 => run(&points.as_fixed::<4>().unwrap(), eps),
        5 => run(&points.as_fixed::<5>().unwrap(), eps),
        6 => run(&points.as_fixed::<6>().unwrap(), eps),
        d => panic!("unsupported dims {d}"),
    }
}
