//! Differential suite for the on-device primitives: the warp-kernel radix
//! sort must produce the **bit-identical permutation** to the host SORTBYWL
//! path (`WorkloadProfile::sort_by_workload`, stable tie-break included),
//! and the device exclusive scan must match a host fold — for arbitrary key
//! distributions (uniform, heavy-tail, all-equal, already-sorted, reversed,
//! 0/1-element), across `StepMode::{Stepped, RunLength}` and device shapes
//! from 1 to 4 SMs. Any deviation means the `SortBackend::Device` planner
//! would plan differently from the host oracle, which the end-to-end
//! invariance suite (`step_mode_equivalence.rs`) assumes never happens.

use proptest::prelude::*;
use simjoin::{
    device_cell_order, device_inclusive_prefix, device_sort_by_workload, WorkloadProfile,
};
use warpsim::{
    device_exclusive_scan, device_radix_argsort, GpuConfig, LaunchOptions, StepMode,
    DEFAULT_DIGIT_BITS,
};

const MODES: [StepMode; 2] = [StepMode::Stepped, StepMode::RunLength];

/// A small device with the given SM count ("1–4 devices" axis): warp size 4
/// so multi-warp tiling kicks in from tiny inputs.
fn gpu(num_sms: u32) -> GpuConfig {
    GpuConfig {
        num_sms,
        ..GpuConfig::small_test()
    }
}

/// Deterministic workload generator covering the named distributions.
/// `dist`: 0 = uniform, 1 = heavy-tail, 2 = all-equal, 3 = already-sorted
/// (non-increasing, the fixed point of SORTBYWL), 4 = reversed
/// (non-decreasing, the adversarial input), 5 = tiny (0 or 1 element).
fn workloads(dist: usize, n: usize, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    match dist {
        0 => (0..n).map(|_| next() % 1000).collect(),
        1 => (0..n)
            .map(|_| {
                if next() % 13 == 0 {
                    1_000_000 + next() % 1000
                } else {
                    next() % 20
                }
            })
            .collect(),
        2 => vec![next() % 100; n],
        3 => {
            let mut v: Vec<u64> = (0..n).map(|_| next() % 500).collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v
        }
        4 => {
            let mut v: Vec<u64> = (0..n).map(|_| next() % 500).collect();
            v.sort_unstable();
            v
        }
        _ => (0..n.min(1)).map(|_| next() % 100).collect(),
    }
}

fn host_sorted(per_point: &[u64]) -> Vec<u32> {
    let profile = WorkloadProfile::from_per_point(per_point.to_vec());
    let mut ids: Vec<u32> = (0..per_point.len() as u32).collect();
    profile.sort_by_workload(&mut ids);
    ids
}

fn host_exclusive(values: &[u64]) -> Vec<u64> {
    let mut acc = 0u64;
    values
        .iter()
        .map(|&v| {
            let out = acc;
            acc = acc.wrapping_add(v);
            out
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Device radix sort == host SORTBYWL permutation, bit for bit, on every
    /// distribution × step mode × device shape.
    #[test]
    fn radix_sort_matches_host_permutation(
        dist in 0usize..6,
        n in 0usize..220,
        seed in 1u64..1_000_000,
        num_sms in 1u32..5,
    ) {
        let per_point = workloads(dist, n, seed);
        let expected = host_sorted(&per_point);
        let gpu = gpu(num_sms);
        for mode in MODES {
            let opts = LaunchOptions::default().with_step_mode(mode);
            let mut ids: Vec<u32> = (0..per_point.len() as u32).collect();
            device_sort_by_workload(&gpu, &per_point, &mut ids, &opts).unwrap();
            prop_assert_eq!(
                &ids, &expected,
                "dist={} n={} sms={} mode={:?}", dist, n, num_sms, mode
            );
        }
    }

    /// Device exclusive scan == host wrapping fold on the same matrix, and
    /// the derived inclusive prefix matches the u128 host fold the batch
    /// planner cuts on.
    #[test]
    fn exclusive_scan_matches_host_fold(
        dist in 0usize..6,
        n in 0usize..220,
        seed in 1u64..1_000_000,
        num_sms in 1u32..5,
    ) {
        let values = workloads(dist, n, seed);
        let expected = host_exclusive(&values);
        let mut acc = 0u128;
        let expected_inclusive: Vec<u128> = values
            .iter()
            .map(|&v| {
                acc += v as u128;
                acc
            })
            .collect();
        let gpu = gpu(num_sms);
        for mode in MODES {
            let opts = LaunchOptions::default().with_step_mode(mode);
            let (scan, _) = device_exclusive_scan(&gpu, &values, &opts).unwrap();
            prop_assert_eq!(
                &scan, &expected,
                "dist={} n={} sms={} mode={:?}", dist, n, num_sms, mode
            );
            let (inclusive, _) = device_inclusive_prefix(&gpu, &values, &opts).unwrap();
            prop_assert_eq!(&inclusive, &expected_inclusive);
        }
    }

    /// The raw argsort is *stable*: on arbitrary keys with heavy duplication
    /// it reproduces the stable host argsort exactly (the property that
    /// makes the composite SORTBYWL key reproduce the id tie-break).
    #[test]
    fn raw_argsort_is_stable(
        n in 0usize..160,
        seed in 1u64..1_000_000,
        modulus in 1u64..8,
        num_sms in 1u32..5,
    ) {
        let keys: Vec<u128> = workloads(0, n, seed)
            .into_iter()
            .map(|w| (w % modulus) as u128)
            .collect();
        let mut expected: Vec<u32> = (0..n as u32).collect();
        expected.sort_by_key(|&i| keys[i as usize]); // stable host sort
        let gpu = gpu(num_sms);
        for mode in MODES {
            let opts = LaunchOptions::default().with_step_mode(mode);
            let (order, _) =
                device_radix_argsort(&gpu, &keys, DEFAULT_DIGIT_BITS, &opts).unwrap();
            prop_assert_eq!(&order, &expected, "n={} modulus={}", n, modulus);
        }
    }
}

/// The explicit degenerate inputs, spelled out (the proptests reach them by
/// sampling; these pin them unconditionally).
#[test]
fn degenerate_inputs_are_identities() {
    for num_sms in 1..=4 {
        let gpu = gpu(num_sms);
        for mode in MODES {
            let opts = LaunchOptions::default().with_step_mode(mode);

            let mut empty: Vec<u32> = vec![];
            let report = device_sort_by_workload(&gpu, &[], &mut empty, &opts).unwrap();
            assert_eq!(report.launches, 0, "empty sort launches nothing");
            let (scan, report) = device_exclusive_scan(&gpu, &[], &opts).unwrap();
            assert!(scan.is_empty());
            assert_eq!(report.launches, 0, "empty scan launches nothing");

            let mut one = vec![0u32];
            device_sort_by_workload(&gpu, &[42], &mut one, &opts).unwrap();
            assert_eq!(one, vec![0]);
            let (scan, _) = device_exclusive_scan(&gpu, &[42], &opts).unwrap();
            assert_eq!(scan, vec![0]);

            // All-equal workloads: the composite key degenerates to the id,
            // so the sort must return ascending ids.
            let per_point = vec![7u64; 33];
            let mut ids: Vec<u32> = (0..33u32).rev().collect();
            // The host path sorts the *given* slice; feed the same reversed
            // slice to both.
            let profile = WorkloadProfile::from_per_point(per_point.clone());
            let mut host: Vec<u32> = ids.clone();
            profile.sort_by_workload(&mut host);
            device_sort_by_workload(&gpu, &per_point, &mut ids, &opts).unwrap();
            assert_eq!(ids, host);
        }
    }
}

/// The device cell ordering matches the host `cell_order` oracle (the
/// WORKQUEUE `D'` construction) on duplicated-workload cell profiles.
#[test]
fn cell_order_matches_host_oracle_across_shapes() {
    let per_cell: Vec<u64> = (0..77u64).map(|i| (i * 31) % 6).collect();
    let profile_order = {
        let mut cells: Vec<u32> = (0..77u32).collect();
        cells.sort_unstable_by_key(|&c| (std::cmp::Reverse(per_cell[c as usize]), c));
        cells
    };
    for num_sms in 1..=4 {
        for mode in MODES {
            let opts = LaunchOptions::default().with_step_mode(mode);
            let (order, report) = device_cell_order(&gpu(num_sms), &per_cell, &opts).unwrap();
            assert_eq!(order, profile_order, "sms={num_sms} mode={mode:?}");
            assert!(report.model_s > 0.0);
        }
    }
}

/// Cost accounting is step-mode invariant (the fast path may not change
/// model cycles) but *device-shape dependent* — the property that makes the
/// pre-pass a meaningful costed phase rather than bookkeeping. The direction
/// is checked on the scan: a narrower device folds bigger per-lane tiles, so
/// 1 SM must cost more cycles than 4. (The sort has no fixed direction: its
/// per-warp histogram grows with warp count, so a wider device scans a
/// larger histogram.)
#[test]
fn primitive_costs_are_mode_invariant_and_shape_sensitive() {
    let per_point = workloads(1, 200, 99);
    let mut scan_reports = vec![];
    for num_sms in [1u32, 4] {
        let gpu = gpu(num_sms);
        let mut sort_per_mode = vec![];
        let mut scan_per_mode = vec![];
        for mode in MODES {
            let opts = LaunchOptions::default().with_step_mode(mode);
            let mut ids: Vec<u32> = (0..200u32).collect();
            sort_per_mode.push(device_sort_by_workload(&gpu, &per_point, &mut ids, &opts).unwrap());
            scan_per_mode.push(device_exclusive_scan(&gpu, &per_point, &opts).unwrap().1);
        }
        assert_eq!(
            sort_per_mode[0], sort_per_mode[1],
            "step mode changed the sort cost"
        );
        assert_eq!(
            scan_per_mode[0], scan_per_mode[1],
            "step mode changed the scan cost"
        );
        scan_reports.push(scan_per_mode[0]);
    }
    assert!(
        scan_reports[0].elapsed_cycles > scan_reports[1].elapsed_cycles,
        "1 SM ({}) should cost more scan cycles than 4 SMs ({})",
        scan_reports[0].elapsed_cycles,
        scan_reports[1].elapsed_cycles
    );
}
