//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread` scoped threads are used in this workspace, and
//! std has shipped an equivalent (`std::thread::scope`) since Rust 1.63, so
//! this crate is a thin adapter exposing crossbeam's 0.8 signatures on top
//! of the std implementation.
//!
//! Behavioural difference vs upstream: if a spawned thread panics and its
//! handle is never joined, `scope()` propagates the panic (std semantics)
//! instead of returning `Err`. Every call site in this workspace joins all
//! handles and `.expect()`s the scope result, so the difference is moot.

pub mod thread {
    /// Mirror of `crossbeam::thread::Scope`: spawns threads that may borrow
    /// from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joining yields the closure's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// it can spawn nested threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. Always `Ok` here (see crate docs for the panic caveat).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU64::new(0);
        let data: Vec<u64> = (0..100).collect();
        let sums = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(30)
                .map(|chunk| {
                    let counter = &counter;
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        chunk.iter().sum::<u64>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("thread panicked"))
                .sum::<u64>()
        })
        .expect("scope failed");
        assert_eq!(sums, (0..100).sum::<u64>());
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let result = crate::thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().expect("inner join") * 2
            });
            h.join().expect("outer join")
        })
        .expect("scope failed");
        assert_eq!(result, 42);
    }
}
