//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the proptest API the workspace's property tests use, with
//! deterministic case generation (seeded per test from the test's module
//! path, so failures reproduce exactly on re-run):
//!
//! - [`proptest!`] with optional `#![proptest_config(...)]`, multiple
//!   `pattern in strategy` arguments, and per-test attributes;
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] returning
//!   [`test_runner::TestCaseError`] instead of panicking mid-closure;
//! - strategies: numeric ranges (half-open and inclusive), [`strategy::Just`],
//!   tuples of strategies, `prop::collection::vec`, `prop::array::uniform{2,3,4}`,
//!   `prop::sample::select`, `any::<bool>()`, and [`prop_oneof!`] unions.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! reports its inputs via the assertion message and the deterministic seed
//! makes it reproducible, which is enough for this workspace's suites.

pub mod test_runner {
    use std::fmt;

    /// Number of cases to run per property (upstream: `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single generated case failed (or was skipped).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assert!`-style failure: the property does not hold.
        Fail(String),
        /// `prop_assume!` rejection: inputs outside the property's domain.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic generator backing every strategy draw.
    ///
    /// Seeded from the test's fully-qualified name so each property gets an
    /// independent, stable stream across runs and machines.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary label (FNV-1a hash of the bytes).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be non-zero.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample an index from an empty domain");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Upstream proptest separates strategies from value trees to support
    /// shrinking; this stand-in generates final values directly.
    pub trait Strategy {
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between alternative strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64();
                    (self.start as f64 + (self.end as f64 - self.start as f64) * u) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                    assert!(lo <= hi, "empty range strategy");
                    (lo + (hi - lo) * rng.unit_f64()) as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

    /// Draws a `bool` with equal probability (`any::<bool>()`).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{AnyBool, Strategy};

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.index(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fixed-size array with every element drawn from the same strategy.
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.generate(rng))
        }
    }

    pub fn uniform2<S: Strategy>(element: S) -> UniformArrayStrategy<S, 2> {
        UniformArrayStrategy { element }
    }

    pub fn uniform3<S: Strategy>(element: S) -> UniformArrayStrategy<S, 3> {
        UniformArrayStrategy { element }
    }

    pub fn uniform4<S: Strategy>(element: S) -> UniformArrayStrategy<S, 4> {
        UniformArrayStrategy { element }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice among a fixed set of values.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of upstream's `prelude::prop` (e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines `#[test]` functions that run a property over many generated cases.
///
/// Supports the upstream surface this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..10, v in prop::collection::vec(0f64..1.0, 1..40)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(20).max(1000),
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                };
                match __outcome {
                    ::core::result::Result::Ok(()) => __ran += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), __ran, __msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts inside a `proptest!` body; failure aborts only the current case
/// (by returning `Err(TestCaseError::Fail)`), which the runner reports.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                __l, __r, format!($($fmt)+),
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: {:?}",
                __l,
            )));
        }
    }};
}

/// Skips the current case when its inputs fall outside the property's domain.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples(x in 1u32..50, (a, b) in (0.0f64..5.0, 0.0f64..5.0)) {
            prop_assert!((1..50).contains(&x));
            prop_assert!((0.0..5.0).contains(&a) && (0.0..5.0).contains(&b));
        }

        #[test]
        fn collections_and_arrays(
            v in prop::collection::vec(0u64..1000, 1..=8),
            p in prop::array::uniform3(0.0f32..1.0),
            pick in prop::sample::select(vec![1usize, 2, 4, 8]),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 8);
            prop_assert!(p.iter().all(|c| (0.0..1.0).contains(c)));
            prop_assert!([1usize, 2, 4, 8].contains(&pick));
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn oneof_and_assume(k in prop_oneof![Just(1u32), Just(2), Just(3)], n in 0u32..10) {
            prop_assume!(n != 5);
            prop_assert!((1..=3).contains(&k));
            prop_assert_ne!(n, 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("label");
        let mut b = TestRng::deterministic("label");
        for _ in 0..50 {
            assert_eq!((0u64..1000).generate(&mut a), (0u64..1000).generate(&mut b));
        }
    }
}
