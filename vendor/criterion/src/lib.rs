//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros — as a plain wall-clock runner: a short warm-up, then `sample_size`
//! timed samples, reporting min/mean to stdout. No statistics, plotting, or
//! baseline storage; `cargo bench` output is for eyeballing regressions only.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label for one benchmark, optionally parameterized (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count and records the total time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_samples(label: &str, sample_size: usize, mut run: impl FnMut(&mut Bencher)) {
    // One warm-up sample, then `sample_size` measured single-iteration
    // samples; the workloads in this workspace are long enough per call
    // that batching iterations inside a sample adds nothing.
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    run(&mut bench);

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..sample_size.max(1) {
        run(&mut bench);
        let per_iter = bench.elapsed / bench.iters.max(1) as u32;
        total += per_iter;
        min = min.min(per_iter);
    }
    let mean = total / sample_size.max(1) as u32;
    println!(
        "bench: {label:<50} min {:>12}  mean {:>12}",
        fmt_duration(min),
        fmt_duration(mean)
    );
}

/// Group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_samples(&label, self.sample_size, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_samples(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_samples(&id.into().label, sample_size, |b| f(b));
        self
    }
}

/// Declares a bench group function invoking each target with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main()` running the listed groups (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| black_box(2u64 + 2)));
        group.bench_with_input(BenchmarkId::new("param", 8), &8u64, |b, &k| {
            b.iter(|| black_box(k * 2))
        });
        group.bench_function(BenchmarkId::from_parameter(4), |b| b.iter(|| black_box(4)));
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }

    #[test]
    fn top_level_bench_function() {
        Criterion::default().bench_function("top", |b| b.iter(|| black_box(1)));
    }
}
