//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small deterministic slice of the rand API it actually uses:
//!
//! - [`rngs::StdRng`] — a seeded xoshiro256** generator;
//! - [`SeedableRng::seed_from_u64`];
//! - [`Rng::gen_range`] over half-open and inclusive ranges of the common
//!   numeric types, [`Rng::gen_bool`];
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The streams are *not* bit-compatible with upstream rand; everything in
//! this workspace only relies on seeded determinism, never on the exact
//! stream. Distributions beyond the uniform ones are hand-implemented in
//! `sjdata` and out of scope here.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng() as u128 % span) as i128) as $t
            }
        }
        #[allow(unused)]
        const _: $u = 0;
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Uniform `f64` in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng());
                (self.start as f64 + (self.end as f64 - self.start as f64) * u) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng());
                (lo + (hi - lo) * u) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seeded generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// In-place uniform shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
