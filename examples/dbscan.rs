//! DBSCAN clustering built on the self-join — the paper's introduction
//! motivates the self-join as the building block of clustering algorithms;
//! this example closes that loop.
//!
//! The ε-neighborhood lists come from one GPU self-join; the clustering
//! itself is the standard density-based expansion: points with at least
//! `min_pts` neighbors are core points, clusters are the connected
//! components of core points plus their border points.
//!
//! ```text
//! cargo run --release -p sj-examples --bin dbscan -- [--n 15000] [--eps 0.8]
//! ```

use std::collections::VecDeque;

use simjoin::{SelfJoin, SelfJoinConfig};
use sj_examples::{fmt_time, parse_n_eps};
use sjdata::uniform::uniform_points;

const NOISE: i32 = -1;
const UNVISITED: i32 = -2;

/// DBSCAN over precomputed neighbor lists.
fn dbscan(neighbors: &[Vec<u32>], min_pts: usize) -> (Vec<i32>, usize) {
    let n = neighbors.len();
    let mut labels = vec![UNVISITED; n];
    let mut cluster = 0i32;
    for start in 0..n {
        if labels[start] != UNVISITED {
            continue;
        }
        if neighbors[start].len() < min_pts {
            labels[start] = NOISE;
            continue;
        }
        // Expand a new cluster from this core point.
        labels[start] = cluster;
        let mut queue: VecDeque<u32> = neighbors[start].iter().copied().collect();
        while let Some(p) = queue.pop_front() {
            let p = p as usize;
            if labels[p] == NOISE {
                labels[p] = cluster; // border point
            }
            if labels[p] != UNVISITED {
                continue;
            }
            labels[p] = cluster;
            if neighbors[p].len() >= min_pts {
                queue.extend(neighbors[p].iter().copied());
            }
        }
        cluster += 1;
    }
    (labels, cluster as usize)
}

fn main() {
    let (n, eps) = parse_n_eps(15_000, 0.8);
    let min_pts = 8usize;

    // Three dense Gaussian-ish blobs over uniform background noise.
    let mut points = uniform_points::<2>(n / 2, 60.0, 7);
    for (cx, cy, seed) in [(15.0f32, 15.0f32, 8u64), (40.0, 20.0, 9), (25.0, 45.0, 10)] {
        let blob = uniform_points::<2>(n / 6, 4.0, seed);
        points.extend(blob.into_iter().map(|p| [p[0] + cx, p[1] + cy]));
    }
    println!(
        "DBSCAN over {} points, eps = {eps}, min_pts = {min_pts}",
        points.len()
    );

    let config = SelfJoinConfig::optimized(eps);
    let outcome = SelfJoin::new(&points, config)
        .expect("config")
        .run()
        .expect("join");
    println!(
        "self-join: {} pairs in {} model time ({} batches, WEE {:.1} %)",
        outcome.result.len(),
        fmt_time(outcome.report.response_time_s()),
        outcome.report.num_batches,
        outcome.report.wee() * 100.0,
    );

    let neighbors = outcome.result.to_neighbor_lists(points.len());
    let (labels, clusters) = dbscan(&neighbors, min_pts);
    let noise = labels.iter().filter(|&&l| l == NOISE).count();
    let mut sizes = vec![0usize; clusters];
    for &l in &labels {
        if l >= 0 {
            sizes[l as usize] += 1;
        }
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!();
    println!("clusters found : {clusters}");
    println!("noise points   : {noise}");
    println!("largest clusters: {:?}", &sizes[..sizes.len().min(5)]);
    assert!(clusters >= 3, "the three planted blobs should be recovered");
}
