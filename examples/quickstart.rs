//! Quickstart: run the optimized GPU self-join on a small clustered dataset
//! and inspect both the result and the execution report.
//!
//! ```text
//! cargo run --release -p sj-examples --bin quickstart -- [--n 20000] [--eps 1.0]
//! ```

use simjoin::{SelfJoin, SelfJoinConfig};
use sj_examples::{fmt_time, parse_n_eps};
use sjdata::sw::{sw_points_2d, SwParams};

fn main() {
    let (n, eps) = parse_n_eps(20_000, 1.0);
    println!("Generating {n} clustered 2-D points…");
    let points = sw_points_2d(n, &SwParams::default(), 42);

    // The paper's best combination: WORKQUEUE + LID-UNICOMP + k = 8.
    let config = SelfJoinConfig::optimized(eps);
    println!("Running self-join: ε = {eps}, variant = {}", config.label());
    let join = SelfJoin::new(&points, config).expect("valid configuration");
    let outcome = join.run().expect("join succeeds");

    let report = &outcome.report;
    println!();
    println!("pairs found           : {}", outcome.result.len());
    println!("batches executed      : {}", report.num_batches);
    println!(
        "estimated total pairs : {}",
        report.estimate.estimated_total
    );
    println!("distance calculations : {}", report.distance_calcs());
    println!("warp exec efficiency  : {:.1} %", report.wee() * 100.0);
    println!(
        "response time (model) : {}",
        fmt_time(report.response_time_s())
    );

    // Neighbor lists are easy to derive from the ordered-pair result.
    let counts = outcome.result.neighbor_counts(points.len());
    let (densest, &max) = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .expect("non-empty dataset");
    println!();
    println!(
        "densest point: #{densest} at ({:.2}, {:.2}) with {max} neighbors within ε",
        points[densest][0], points[densest][1]
    );
    let isolated = counts.iter().filter(|&&c| c == 0).count();
    println!("isolated points (no neighbor within ε): {isolated}");
}
