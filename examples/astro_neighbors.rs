//! Sky-catalog neighbor search — the Gaia-style workload of the paper's
//! evaluation, plus a head-to-head against the SUPER-EGO CPU join.
//!
//! Finds all pairs of sources within an angular radius (close-pair /
//! cross-identification candidates), reports how the skewed sky density
//! translates into load imbalance, and checks that the CPU comparator finds
//! exactly the same pairs.
//!
//! ```text
//! cargo run --release -p sj-examples --bin astro_neighbors -- [--n 60000] [--eps 0.5]
//! ```

use simjoin::{SelfJoin, SelfJoinConfig};
use sj_examples::{fmt_time, parse_n_eps};
use sjdata::gaia::gaia_points;
use superego::{super_ego_join, SuperEgoConfig};

fn main() {
    let (n, eps) = parse_n_eps(60_000, 2.0);
    println!("Generating {n} sky positions (density ∝ exp(-|b|/12°))…");
    let points = gaia_points(n, 12.0, 2026);

    // Baseline vs fully optimized, to show what the skew costs.
    let base = SelfJoin::new(&points, SelfJoinConfig::new(eps))
        .expect("config")
        .run()
        .expect("join");
    let best = SelfJoin::new(&points, SelfJoinConfig::optimized(eps))
        .expect("config")
        .run()
        .expect("join");
    println!();
    println!(
        "GPU baseline  : {} (WEE {:.1} %)",
        fmt_time(base.report.response_time_s()),
        base.report.wee() * 100.0
    );
    println!(
        "GPU optimized : {} (WEE {:.1} %, {})",
        fmt_time(best.report.response_time_s()),
        best.report.wee() * 100.0,
        SelfJoinConfig::optimized(eps).label()
    );
    println!(
        "speedup       : {:.2}×",
        base.report.response_time_s() / best.report.response_time_s()
    );
    assert!(base.result.same_pairs_as(&best.result));

    // CPU comparator must agree pair-for-pair.
    let cpu = super_ego_join(&points, &SuperEgoConfig::new(eps));
    assert_eq!(
        cpu.pairs.len(),
        best.result.len(),
        "SUPER-EGO must agree with the GPU join"
    );
    println!(
        "SUPER-EGO     : agrees on all {} pairs ({} distance calcs, wall {:.0} ms)",
        cpu.pairs.len(),
        cpu.stats.distance_calcs,
        cpu.wall.as_secs_f64() * 1e3
    );

    // Where do the pairs live on the sky? The galactic plane dominates.
    let counts = best.result.neighbor_counts(points.len());
    let mut band_pairs = [0u64; 6]; // |b| in 15° bands
    let mut band_points = [0u64; 6];
    for (i, p) in points.iter().enumerate() {
        let band = ((p[1].abs() / 15.0) as usize).min(5);
        band_pairs[band] += counts[i];
        band_points[band] += 1;
    }
    println!();
    println!("pairs per latitude band (skew → warp imbalance):");
    for (b, (pairs, pts)) in band_pairs.iter().zip(&band_points).enumerate() {
        let mean = *pairs as f64 / (*pts).max(1) as f64;
        println!(
            "  |b| ∈ [{:>2}°, {:>2}°): {:>9} pairs over {:>6} sources (mean {:>6.2})",
            b * 15,
            (b + 1) * 15,
            pairs,
            pts,
            mean
        );
    }
}
