//! Shared helpers for the example binaries.

/// Parses `--n <count>` / `--eps <f>` style overrides from `std::env::args`,
/// returning `(n, eps)` with the given defaults.
pub fn parse_n_eps(default_n: usize, default_eps: f32) -> (usize, f32) {
    let mut n = default_n;
    let mut eps = default_eps;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    n = v;
                }
            }
            "--eps" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    eps = v;
                }
            }
            _ => {}
        }
    }
    (n, eps)
}

/// Formats a model time in engineering units.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.1} µs", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(1.5), "1.500 s");
        assert_eq!(fmt_time(0.0015), "1.500 ms");
        assert_eq!(fmt_time(1.5e-6), "1.5 µs");
    }
}
