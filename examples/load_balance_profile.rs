//! Load-imbalance profiler: the paper's Table V/VI methodology as a tool.
//!
//! Runs every mitigation variant on one skewed dataset and prints the
//! metrics the paper uses to argue about load balance — warp execution
//! efficiency, per-warp duration spread, and response time — so you can see
//! exactly which optimization buys what on *your* data shape.
//!
//! ```text
//! cargo run --release -p sj-examples --bin load_balance_profile -- [--n 40000] [--eps 0.2]
//! ```

use simjoin::{AccessPattern, Balancing, SelfJoin, SelfJoinConfig};
use sj_examples::{fmt_time, parse_n_eps};
use sjdata::exponential::exponential_points;

fn main() {
    let (n, eps) = parse_n_eps(40_000, 0.2);
    println!("Profiling load balance on {n} exponentially distributed points (λ = 40), ε = {eps}");
    let points = exponential_points::<2>(n, 40.0, 100.0, 77);

    let variants: Vec<(&str, SelfJoinConfig)> = vec![
        ("GPUCALCGLOBAL (baseline)", SelfJoinConfig::new(eps)),
        (
            "UNICOMP",
            SelfJoinConfig::new(eps).with_pattern(AccessPattern::Unicomp),
        ),
        (
            "LID-UNICOMP",
            SelfJoinConfig::new(eps).with_pattern(AccessPattern::LidUnicomp),
        ),
        ("k=8", SelfJoinConfig::new(eps).with_k(8)),
        (
            "SORTBYWL",
            SelfJoinConfig::new(eps).with_balancing(Balancing::SortByWorkload),
        ),
        (
            "WORKQUEUE",
            SelfJoinConfig::new(eps).with_balancing(Balancing::WorkQueue),
        ),
        ("WORKQUEUE+LID+k8", SelfJoinConfig::optimized(eps)),
    ];

    println!(
        "\n{:<26} {:>11} {:>8} {:>10} {:>12} {:>9}",
        "variant", "time", "WEE(%)", "warp cv", "dist calcs", "batches"
    );
    let mut reference: Option<Vec<(u32, u32)>> = None;
    for (name, config) in variants {
        let outcome = SelfJoin::new(&points, config)
            .expect("config")
            .run()
            .expect("join");
        let stats = outcome.report.warp_stats().expect("warps ran");
        println!(
            "{:<26} {:>11} {:>8.1} {:>10.3} {:>12} {:>9}",
            name,
            fmt_time(outcome.report.response_time_s()),
            outcome.report.wee() * 100.0,
            stats.cv(),
            outcome.report.distance_calcs(),
            outcome.report.num_batches,
        );
        // Every variant must return the identical pair set.
        let sorted = outcome.result.sorted_pairs();
        match &reference {
            None => reference = Some(sorted),
            Some(r) => assert_eq!(r, &sorted, "variant {name} changed the result"),
        }
    }
    println!(
        "\nAll variants returned the identical pair set ({} pairs).",
        reference.map(|r| r.len()).unwrap_or(0)
    );
}
