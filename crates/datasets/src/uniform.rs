//! Uniformly distributed synthetic datasets (`Unif*` in Table I).

use epsgrid::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` points uniform on `[0, extent]^N`, deterministically from
/// `seed`.
pub fn uniform_points<const N: usize>(n: usize, extent: f32, seed: u64) -> Vec<Point<N>> {
    assert!(
        extent > 0.0 && extent.is_finite(),
        "extent must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut p = [0.0f32; N];
            for c in &mut p {
                *c = rng.gen_range(0.0..extent);
            }
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = uniform_points::<3>(100, 10.0, 7);
        let b = uniform_points::<3>(100, 10.0, 7);
        let c = uniform_points::<3>(100, 10.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn within_bounds() {
        let pts = uniform_points::<2>(5_000, 42.0, 1);
        assert!(pts
            .iter()
            .all(|p| p.iter().all(|&c| (0.0..42.0).contains(&c))));
    }

    #[test]
    fn roughly_uniform_per_quadrant() {
        let pts = uniform_points::<2>(20_000, 1.0, 99);
        let q1 = pts.iter().filter(|p| p[0] < 0.5 && p[1] < 0.5).count();
        assert!((4000..6000).contains(&q1), "quadrant count {q1}");
    }

    #[test]
    #[should_panic(expected = "extent must be positive")]
    fn zero_extent_rejected() {
        let _ = uniform_points::<2>(10, 0.0, 0);
    }
}
