//! Exponentially distributed synthetic datasets (`Expo*` in Table I).
//!
//! Each coordinate is drawn i.i.d. from `Exp(λ)` (the paper uses λ = 40) and
//! scaled by `scale`. The result is a dense corner at the origin with a long
//! sparse tail: point workloads span orders of magnitude, which is exactly
//! the regime where intra-warp load imbalance hurts the baseline kernel.

use epsgrid::Point;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dists::exp_sample;

/// Generates `n` points with `Exp(lambda) × scale` coordinates.
pub fn exponential_points<const N: usize>(
    n: usize,
    lambda: f64,
    scale: f32,
    seed: u64,
) -> Vec<Point<N>> {
    assert!(lambda > 0.0, "lambda must be positive");
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut p = [0.0f32; N];
            for c in &mut p {
                *c = (exp_sample(&mut rng, lambda) as f32) * scale;
            }
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = exponential_points::<2>(50, 40.0, 100.0, 3);
        let b = exponential_points::<2>(50, 40.0, 100.0, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn coordinates_are_non_negative() {
        let pts = exponential_points::<4>(2_000, 40.0, 100.0, 5);
        assert!(pts.iter().all(|p| p.iter().all(|&c| c >= 0.0)));
    }

    #[test]
    fn distribution_is_skewed_toward_origin() {
        // With λ = 40 and scale 100, the mean coordinate is 2.5; the median
        // is ln(2)/40 × 100 ≈ 1.73. Most points hug the origin.
        let pts = exponential_points::<2>(20_000, 40.0, 100.0, 11);
        let near = pts.iter().filter(|p| p[0] < 2.5 && p[1] < 2.5).count();
        let far = pts.iter().filter(|p| p[0] > 10.0 || p[1] > 10.0).count();
        assert!(near > pts.len() / 3, "near-origin count {near}");
        assert!(far > 0, "the tail must exist");
        assert!(
            near > 10 * far,
            "skew must be strong: near {near}, far {far}"
        );
    }

    #[test]
    fn workload_variance_exceeds_uniform() {
        // The property the paper's evaluation relies on: exponential data
        // has much higher neighbor-count variance than uniform data.
        use crate::uniform::uniform_points;
        let expo = exponential_points::<2>(3_000, 40.0, 100.0, 7);
        let unif = uniform_points::<2>(3_000, 10.0, 7);
        let eps = 0.5f32;
        let cv = |pts: &[Point<2>]| {
            let grid = epsgrid::GridIndex::build(pts, eps).unwrap();
            let counts: Vec<f64> = (0..grid.num_cells())
                .map(|c| grid.window_candidate_count(c) as f64)
                .collect();
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            let var =
                counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
            var.sqrt() / mean
        };
        assert!(
            cv(&expo) > 2.0 * cv(&unif),
            "exponential workload CV {} must dwarf uniform CV {}",
            cv(&expo),
            cv(&unif)
        );
    }
}
