//! Named datasets of the paper's Table I, scaled for the simulator.
//!
//! The paper evaluates 2 M-point synthetic datasets, 1.86 M / 5.16 M-point
//! SW datasets and a 50 M-point Gaia sample on real silicon. The SIMT
//! simulator is orders of magnitude slower than a GPU, so each spec carries
//! both the paper's size and a scaled default sized for simulation; what is
//! preserved is the *distribution* (and therefore the workload-variance
//! structure), plus ε sweeps chosen to span the paper's
//! neighbors-per-point regimes.

use epsgrid::point::to_dyn;
use epsgrid::DynPoints;

use crate::exponential::exponential_points;
use crate::gaia::gaia_points;
use crate::sw::{sw_points_2d, sw_points_3d, SwParams};
use crate::uniform::uniform_points;

/// The generator family of a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DatasetFamily {
    /// Uniform on `[0, extent]^dims`.
    Uniform {
        /// Box side length.
        extent: f32,
    },
    /// i.i.d. `Exp(λ) × scale` coordinates.
    Exponential {
        /// Rate parameter (the paper's λ = 40).
        lambda: f64,
        /// Coordinate scale factor.
        scale: f32,
    },
    /// SW ionosphere analogue, 2-D (lon, lat).
    Sw2d,
    /// SW ionosphere analogue, 3-D (lon, lat, TEC).
    Sw3d,
    /// Gaia sky-survey analogue (lon, lat with latitude skew).
    Gaia {
        /// Latitude scale height in degrees.
        scale_height_deg: f64,
    },
}

/// A named dataset of the paper's evaluation.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Table I name (e.g. `"Expo2D2M"`).
    pub name: String,
    /// Dimensionality.
    pub dims: usize,
    /// Point count the paper used.
    pub paper_points: usize,
    /// Scaled default point count for simulation.
    pub default_points: usize,
    /// Generator family.
    pub family: DatasetFamily,
    /// ε sweep used by the figure harnesses (ascending).
    pub epsilons: Vec<f32>,
    /// Generator seed.
    pub seed: u64,
}

/// Box side length for a uniform dataset such that a radius-1 ball holds
/// roughly `target` neighbors on average at the scaled size.
fn uniform_extent(dims: usize, n: usize, target: f64) -> f32 {
    let unit_ball = match dims {
        1 => 2.0,
        2 => std::f64::consts::PI,
        3 => 4.0 * std::f64::consts::PI / 3.0,
        4 => std::f64::consts::PI * std::f64::consts::PI / 2.0,
        5 => 8.0 * std::f64::consts::PI * std::f64::consts::PI / 15.0,
        6 => std::f64::consts::PI.powi(3) / 6.0,
        _ => 1.0,
    };
    let density = target / unit_ball;
    ((n as f64) / density).powf(1.0 / dims as f64) as f32
}

impl DatasetSpec {
    /// All fifteen datasets of Table I, with scaled default sizes.
    pub fn table1() -> Vec<DatasetSpec> {
        let mut specs = Vec::new();
        let synth_n = 100_000;
        for dims in 2..=6usize {
            let extent = uniform_extent(dims, synth_n, 64.0);
            specs.push(DatasetSpec {
                name: format!("Unif{dims}D2M"),
                dims,
                paper_points: 2_000_000,
                default_points: synth_n,
                family: DatasetFamily::Uniform { extent },
                epsilons: vec![0.4, 0.6, 0.8, 1.0, 1.2, 1.4],
                seed: 0x5EED_0000 + dims as u64,
            });
        }
        for dims in 2..=6usize {
            // The exponential corner is denser in low dims; sweep tighter ε
            // there and wider in high dims, mirroring the paper's per-dataset
            // sweeps (Expo2D: 0.02–0.2 vs Expo6D: 0.4–1.2 at 2 M points).
            let epsilons = match dims {
                2 => vec![0.05, 0.1, 0.15, 0.2, 0.25, 0.3],
                3 => vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
                4 => vec![0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
                5 => vec![0.6, 0.8, 1.0, 1.2, 1.4, 1.6],
                _ => vec![1.0, 1.2, 1.4, 1.6, 1.8, 2.0],
            };
            specs.push(DatasetSpec {
                name: format!("Expo{dims}D2M"),
                dims,
                paper_points: 2_000_000,
                default_points: synth_n,
                family: DatasetFamily::Exponential {
                    lambda: 40.0,
                    scale: 100.0,
                },
                epsilons,
                seed: 0x5EED_1000 + dims as u64,
            });
        }
        specs.push(DatasetSpec {
            name: "SW2DA".into(),
            dims: 2,
            paper_points: 1_860_000,
            default_points: 80_000,
            family: DatasetFamily::Sw2d,
            epsilons: vec![0.4, 0.8, 1.2, 1.6, 2.0, 2.4],
            seed: 0x5EED_2001,
        });
        specs.push(DatasetSpec {
            name: "SW2DB".into(),
            dims: 2,
            paper_points: 5_160_000,
            default_points: 160_000,
            family: DatasetFamily::Sw2d,
            epsilons: vec![0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
            seed: 0x5EED_2002,
        });
        specs.push(DatasetSpec {
            name: "SW3DA".into(),
            dims: 3,
            paper_points: 1_860_000,
            default_points: 80_000,
            family: DatasetFamily::Sw3d,
            epsilons: vec![0.8, 1.2, 1.6, 2.0, 2.4, 2.8],
            seed: 0x5EED_2003,
        });
        specs.push(DatasetSpec {
            name: "SW3DB".into(),
            dims: 3,
            paper_points: 5_160_000,
            default_points: 160_000,
            family: DatasetFamily::Sw3d,
            epsilons: vec![0.4, 0.8, 1.2, 1.6, 2.0, 2.4],
            seed: 0x5EED_2004,
        });
        specs.push(DatasetSpec {
            name: "Gaia".into(),
            dims: 2,
            paper_points: 50_000_000,
            default_points: 200_000,
            family: DatasetFamily::Gaia {
                scale_height_deg: 12.0,
            },
            epsilons: vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.2],
            seed: 0x5EED_3001,
        });
        specs
    }

    /// Looks a spec up by its Table I name.
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        Self::table1().into_iter().find(|s| s.name == name)
    }

    /// Generates the dataset at its scaled default size.
    pub fn generate_default(&self) -> DynPoints {
        self.generate(self.default_points)
    }

    /// Generates `n` points of this dataset (dimension-erased).
    pub fn generate(&self, n: usize) -> DynPoints {
        match self.family {
            DatasetFamily::Uniform { extent } => match self.dims {
                2 => to_dyn(&uniform_points::<2>(n, extent, self.seed)),
                3 => to_dyn(&uniform_points::<3>(n, extent, self.seed)),
                4 => to_dyn(&uniform_points::<4>(n, extent, self.seed)),
                5 => to_dyn(&uniform_points::<5>(n, extent, self.seed)),
                6 => to_dyn(&uniform_points::<6>(n, extent, self.seed)),
                d => unreachable!("unsupported dimensionality {d}"),
            },
            DatasetFamily::Exponential { lambda, scale } => match self.dims {
                2 => to_dyn(&exponential_points::<2>(n, lambda, scale, self.seed)),
                3 => to_dyn(&exponential_points::<3>(n, lambda, scale, self.seed)),
                4 => to_dyn(&exponential_points::<4>(n, lambda, scale, self.seed)),
                5 => to_dyn(&exponential_points::<5>(n, lambda, scale, self.seed)),
                6 => to_dyn(&exponential_points::<6>(n, lambda, scale, self.seed)),
                d => unreachable!("unsupported dimensionality {d}"),
            },
            DatasetFamily::Sw2d => to_dyn(&sw_points_2d(n, &SwParams::default(), self.seed)),
            DatasetFamily::Sw3d => to_dyn(&sw_points_3d(n, &SwParams::default(), self.seed)),
            DatasetFamily::Gaia { scale_height_deg } => {
                to_dyn(&gaia_points(n, scale_height_deg, self.seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_inventory() {
        let specs = DatasetSpec::table1();
        assert_eq!(specs.len(), 15);
        let synth: Vec<_> = specs
            .iter()
            .filter(|s| s.paper_points == 2_000_000)
            .collect();
        assert_eq!(synth.len(), 10);
        assert!(specs
            .iter()
            .any(|s| s.name == "Gaia" && s.paper_points == 50_000_000));
        assert!(specs.iter().any(|s| s.name == "SW3DB" && s.dims == 3));
    }

    #[test]
    fn by_name_finds_specs() {
        assert_eq!(DatasetSpec::by_name("Expo2D2M").unwrap().dims, 2);
        assert_eq!(DatasetSpec::by_name("Unif6D2M").unwrap().dims, 6);
        assert!(DatasetSpec::by_name("nonsense").is_none());
    }

    #[test]
    fn every_spec_generates_correct_shape() {
        for spec in DatasetSpec::table1() {
            let pts = spec.generate(500);
            assert_eq!(pts.len(), 500, "{}", spec.name);
            assert_eq!(pts.dims(), spec.dims, "{}", spec.name);
            assert!(!spec.epsilons.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::by_name("SW2DA").unwrap();
        assert_eq!(spec.generate(200).raw(), spec.generate(200).raw());
    }

    #[test]
    fn uniform_extent_hits_neighbor_target() {
        // Check the sizing math: generate Unif2D and measure mean neighbors
        // at ε = 1 against the target of 8.
        let spec = DatasetSpec::by_name("Unif2D2M").unwrap();
        let n = 20_000;
        let pts = spec.generate(n).as_fixed::<2>().unwrap();
        let grid = epsgrid::GridIndex::build(&pts, 1.0).unwrap();
        let mut neighbors = 0u64;
        for pid in (0..n).step_by(40) {
            grid.for_each_candidate_of(pid, |cand| {
                if cand != pid && epsgrid::within_epsilon(&pts[pid], &pts[cand], 1.0) {
                    neighbors += 1;
                }
            });
        }
        let mean = neighbors as f64 / (n as f64 / 40.0);
        // Target 64 at the default size (60k); at 20k points density is 1/3 →
        // expect ~64/3.
        let expected = 64.0 * n as f64 / spec.default_points as f64;
        assert!(
            mean > expected * 0.6 && mean < expected * 1.6,
            "mean neighbors {mean}, expected ≈ {expected}"
        );
    }
}
