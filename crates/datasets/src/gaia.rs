//! Sky-survey datasets — the Gaia catalog analogue.
//!
//! The paper samples 50 M 2-D points (sky positions) from the Gaia DR
//! catalog [32]. Stellar density on the sky is strongly anisotropic:
//! it peaks along the galactic plane and decays roughly exponentially with
//! galactic latitude. The analogue samples longitude uniformly on
//! `[0, 360)` and latitude from a truncated Laplace with configurable scale
//! height, reproducing the band-shaped density skew that drives warp
//! imbalance on this dataset.

use epsgrid::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dists::truncated_laplace_latitude;

/// Generates `n` (longitude, latitude) sky positions with density
/// `∝ exp(-|b| / scale_height_deg)` in latitude.
pub fn gaia_points(n: usize, scale_height_deg: f64, seed: u64) -> Vec<Point<2>> {
    assert!(scale_height_deg > 0.0, "scale height must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let lon = rng.gen_range(0.0..360.0f64);
            let lat = truncated_laplace_latitude(&mut rng, scale_height_deg);
            [lon as f32, lat as f32]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gaia_points(200, 12.0, 9), gaia_points(200, 12.0, 9));
        assert_ne!(gaia_points(200, 12.0, 9), gaia_points(200, 12.0, 10));
    }

    #[test]
    fn within_sky_bounds() {
        let pts = gaia_points(10_000, 12.0, 1);
        assert!(pts
            .iter()
            .all(|p| (0.0..360.0).contains(&p[0]) && (-90.0..=90.0).contains(&p[1])));
    }

    #[test]
    fn galactic_plane_dominates() {
        let pts = gaia_points(30_000, 12.0, 2);
        let plane = pts.iter().filter(|p| p[1].abs() < 12.0).count();
        let poles = pts.iter().filter(|p| p[1].abs() > 60.0).count();
        assert!(
            plane > 8 * poles.max(1),
            "plane {plane} must dominate poles {poles}"
        );
    }

    #[test]
    fn longitude_is_uniform() {
        let pts = gaia_points(30_000, 12.0, 3);
        let half = pts.iter().filter(|p| p[0] < 180.0).count();
        assert!((13_000..17_000).contains(&half), "half-sky count {half}");
    }
}
