//! Clustered geospatial datasets — the SW ionosphere analogue.
//!
//! The paper's SW datasets [31] hold lat/lon observations (plus total
//! electron content in 3-D) of ionospheric monitoring objects: spatially
//! clustered around observation hotspots with diffuse background coverage.
//! This generator reproduces that shape as a mixture model:
//!
//! - `hotspot_fraction` of the points fall in Gaussian clusters whose
//!   centers, spreads and weights are drawn from the seed;
//! - the rest are uniform background over the lat/lon box;
//! - the 3-D variant appends a TEC-like value correlated with latitude
//!   (ionization increases toward the geomagnetic equator) plus noise.

use epsgrid::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dists::normal_sample;

/// Mixture parameters for the SW analogue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwParams {
    /// Number of Gaussian hotspots.
    pub hotspots: usize,
    /// Fraction of points assigned to hotspots (the rest is background).
    pub hotspot_fraction: f64,
    /// Longitude range `[0, lon_extent]` in degrees.
    pub lon_extent: f32,
    /// Latitude range `[-lat_extent/2, lat_extent/2]` in degrees.
    pub lat_extent: f32,
}

impl Default for SwParams {
    fn default() -> Self {
        Self {
            hotspots: 24,
            hotspot_fraction: 0.75,
            lon_extent: 360.0,
            lat_extent: 180.0,
        }
    }
}

struct Hotspot {
    lon: f64,
    lat: f64,
    sigma: f64,
    weight: f64,
}

fn make_hotspots(params: &SwParams, rng: &mut StdRng) -> Vec<Hotspot> {
    let mut spots: Vec<Hotspot> = (0..params.hotspots.max(1))
        .map(|_| Hotspot {
            lon: rng.gen_range(0.0..params.lon_extent as f64),
            lat: rng.gen_range(-(params.lat_extent as f64) / 2.0..params.lat_extent as f64 / 2.0),
            sigma: rng.gen_range(0.5..4.0),
            weight: rng.gen_range(0.2..1.0f64).powi(2),
        })
        .collect();
    let total: f64 = spots.iter().map(|h| h.weight).sum();
    for h in &mut spots {
        h.weight /= total;
    }
    spots
}

fn sample_lonlat(params: &SwParams, spots: &[Hotspot], rng: &mut StdRng) -> (f64, f64) {
    if rng.gen_bool(params.hotspot_fraction) {
        // Pick a hotspot by weight.
        let mut u: f64 = rng.gen_range(0.0..1.0);
        let mut chosen = &spots[0];
        for h in spots {
            if u < h.weight {
                chosen = h;
                break;
            }
            u -= h.weight;
        }
        let lon =
            (chosen.lon + normal_sample(rng) * chosen.sigma).rem_euclid(params.lon_extent as f64);
        let half = params.lat_extent as f64 / 2.0;
        let lat = (chosen.lat + normal_sample(rng) * chosen.sigma).clamp(-half, half);
        (lon, lat)
    } else {
        let half = params.lat_extent as f64 / 2.0;
        (
            rng.gen_range(0.0..params.lon_extent as f64),
            rng.gen_range(-half..half),
        )
    }
}

/// Generates `n` 2-D (lon, lat) points from the SW mixture.
pub fn sw_points_2d(n: usize, params: &SwParams, seed: u64) -> Vec<Point<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spots = make_hotspots(params, &mut rng);
    (0..n)
        .map(|_| {
            let (lon, lat) = sample_lonlat(params, &spots, &mut rng);
            [lon as f32, lat as f32]
        })
        .collect()
}

/// Generates `n` 3-D (lon, lat, TEC) points: the third dimension is a
/// total-electron-content analogue, higher near the equator, with noise.
pub fn sw_points_3d(n: usize, params: &SwParams, seed: u64) -> Vec<Point<3>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spots = make_hotspots(params, &mut rng);
    (0..n)
        .map(|_| {
            let (lon, lat) = sample_lonlat(params, &spots, &mut rng);
            let half = (params.lat_extent as f64 / 2.0).max(1.0);
            let tec = 60.0 * (1.0 - (lat.abs() / half)) + 8.0 * normal_sample(&mut rng);
            [lon as f32, lat as f32, tec as f32]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = SwParams::default();
        assert_eq!(sw_points_2d(100, &p, 5), sw_points_2d(100, &p, 5));
        assert_ne!(sw_points_2d(100, &p, 5), sw_points_2d(100, &p, 6));
    }

    #[test]
    fn within_geographic_bounds() {
        let p = SwParams::default();
        let pts = sw_points_2d(5_000, &p, 1);
        assert!(pts
            .iter()
            .all(|q| (0.0..360.0).contains(&q[0]) && (-90.0..=90.0).contains(&q[1])));
    }

    #[test]
    fn data_is_clustered() {
        // A clustered dataset packs far more points into its densest 1°
        // cell than a uniform one would on average.
        let p = SwParams::default();
        let pts = sw_points_2d(20_000, &p, 2);
        let grid = epsgrid::GridIndex::build(&pts, 1.0).unwrap();
        let max_cell = (0..grid.num_cells())
            .map(|c| grid.cell_points(c).len())
            .max()
            .unwrap();
        let uniform_expectation = 20_000.0 / (360.0 * 180.0);
        assert!(
            max_cell as f64 > 30.0 * uniform_expectation,
            "densest cell {max_cell} should dwarf the uniform expectation {uniform_expectation}"
        );
    }

    #[test]
    fn tec_correlates_with_latitude() {
        let p = SwParams::default();
        let pts = sw_points_3d(20_000, &p, 3);
        let equatorial: Vec<f32> = pts
            .iter()
            .filter(|q| q[1].abs() < 15.0)
            .map(|q| q[2])
            .collect();
        let polar: Vec<f32> = pts
            .iter()
            .filter(|q| q[1].abs() > 70.0)
            .map(|q| q[2])
            .collect();
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
        assert!(
            mean(&equatorial) > mean(&polar) + 10.0,
            "TEC must be higher near the equator ({} vs {})",
            mean(&equatorial),
            mean(&polar)
        );
    }
}
