//! # sjdata — workload generators for similarity self-join evaluation
//!
//! Deterministic (seeded) generators for the dataset families of the paper's
//! evaluation (Table I):
//!
//! - [`uniform`]: points uniform on `[0, extent]^n` — the `Unif*` datasets,
//!   the no-skew control where load balancing should win nothing;
//! - [`exponential`]: i.i.d. exponential coordinates (the paper's λ = 40) —
//!   the `Expo*` datasets, with a dense corner and a long sparse tail, the
//!   worst case for intra-warp balance;
//! - [`sw`]: a clustered geospatial analogue of the proprietary SW
//!   ionosphere datasets (lat/lon Gaussian hotspots over background noise,
//!   plus a total-electron-content third dimension);
//! - [`gaia`]: a sky-survey analogue of the Gaia catalog sample (stellar
//!   density decaying exponentially with galactic latitude).
//!
//! The real SW and Gaia data are not redistributable; the analogues
//! reproduce the property that drives the paper's results — heavy spatial
//! skew and therefore heavy workload variance. See `DESIGN.md` §2.
//!
//! [`descriptor::DatasetSpec`] names the paper's datasets and produces
//! scaled versions sized for the SIMT simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descriptor;
pub mod dists;
pub mod exponential;
pub mod gaia;
pub mod io;
pub mod sw;
pub mod uniform;

pub use descriptor::{DatasetFamily, DatasetSpec};
pub use exponential::exponential_points;
pub use gaia::gaia_points;
pub use sw::{sw_points_2d, sw_points_3d};
pub use uniform::uniform_points;
