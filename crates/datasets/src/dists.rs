//! Hand-rolled samplers for the distributions the generators need
//! (exponential, standard normal), avoiding extra dependencies.

use rand::Rng;

/// Samples `Exp(lambda)` by inversion: `-ln(1 - U) / λ`.
pub fn exp_sample<R: Rng>(rng: &mut R, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    let u: f64 = rng.gen_range(0.0..1.0);
    -(1.0 - u).ln() / lambda
}

/// Samples a standard normal via Box–Muller.
pub fn normal_sample<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        if r.is_finite() {
            return r * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Samples a Laplace-style latitude in `[-90, 90]` with density
/// `∝ exp(-|b| / scale)` (truncated), via inverse CDF on the half-range
/// plus a random sign.
pub fn truncated_laplace_latitude<R: Rng>(rng: &mut R, scale: f64) -> f64 {
    debug_assert!(scale > 0.0);
    let u: f64 = rng.gen_range(0.0..1.0);
    let max = 90.0f64;
    let mass = 1.0 - (-max / scale).exp();
    let b = -scale * (1.0 - u * mass).ln();
    if rng.gen_bool(0.5) {
        b
    } else {
        -b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let lambda = 40.0;
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exp_sample(&mut rng, lambda)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / lambda).abs() < 0.002, "mean {mean}");
    }

    #[test]
    fn exponential_is_non_negative() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..10_000).all(|_| exp_sample(&mut rng, 5.0) >= 0.0));
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal_sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn latitude_stays_in_range_and_concentrates_at_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| truncated_laplace_latitude(&mut rng, 15.0))
            .collect();
        assert!(samples.iter().all(|b| (-90.0..=90.0).contains(b)));
        let near = samples.iter().filter(|b| b.abs() < 15.0).count();
        let far = samples.iter().filter(|b| b.abs() > 60.0).count();
        assert!(
            near > 5 * far.max(1),
            "density must concentrate at the equator"
        );
    }
}
