//! Dataset (de)serialization: CSV for interchange, a compact binary format
//! for large files.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use epsgrid::DynPoints;

/// Writes points as CSV (one point per line, coordinates comma-separated).
pub fn write_csv<W: Write>(writer: W, points: &DynPoints) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for p in points.iter() {
        let mut first = true;
        for c in p {
            if !first {
                write!(w, ",")?;
            }
            write!(w, "{c}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads CSV points; dimensionality is inferred from the first line.
pub fn read_csv<R: Read>(reader: R) -> io::Result<DynPoints> {
    let r = BufReader::new(reader);
    let mut dims = 0usize;
    let mut coords: Vec<f32> = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let row: Result<Vec<f32>, _> = trimmed.split(',').map(|t| t.trim().parse()).collect();
        let row = row.map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        if dims == 0 {
            dims = row.len();
            if dims == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "empty first row",
                ));
            }
        } else if row.len() != dims {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected {dims} coordinates, got {}",
                    lineno + 1,
                    row.len()
                ),
            ));
        }
        coords.extend(row);
    }
    if dims == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "no data rows"));
    }
    Ok(DynPoints::from_interleaved(dims, coords))
}

const BIN_MAGIC: &[u8; 8] = b"SJPTS\x01\0\0";

/// Writes points in the compact binary format (magic, dims, count,
/// little-endian `f32` coordinates).
pub fn write_binary<W: Write>(writer: W, points: &DynPoints) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BIN_MAGIC)?;
    w.write_all(&(points.dims() as u32).to_le_bytes())?;
    w.write_all(&(points.len() as u64).to_le_bytes())?;
    for &c in points.raw() {
        w.write_all(&c.to_le_bytes())?;
    }
    w.flush()
}

/// Reads points in the compact binary format.
pub fn read_binary<R: Read>(reader: R) -> io::Result<DynPoints> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut dims_buf = [0u8; 4];
    r.read_exact(&mut dims_buf)?;
    let dims = u32::from_le_bytes(dims_buf) as usize;
    let mut count_buf = [0u8; 8];
    r.read_exact(&mut count_buf)?;
    let count = u64::from_le_bytes(count_buf) as usize;
    if dims == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero dimensionality",
        ));
    }
    let total = count
        .checked_mul(dims)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "size overflow"))?;
    let mut coords = Vec::with_capacity(total);
    let mut buf = [0u8; 4];
    for _ in 0..total {
        r.read_exact(&mut buf)?;
        coords.push(f32::from_le_bytes(buf));
    }
    Ok(DynPoints::from_interleaved(dims, coords))
}

/// Convenience: writes a dataset to a path, choosing the format from the
/// extension (`.csv` → CSV, anything else → binary).
pub fn write_path(path: &Path, points: &DynPoints) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    if path.extension().is_some_and(|e| e == "csv") {
        write_csv(f, points)
    } else {
        write_binary(f, points)
    }
}

/// Convenience: reads a dataset from a path, choosing the format from the
/// extension.
pub fn read_path(path: &Path) -> io::Result<DynPoints> {
    let f = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e == "csv") {
        read_csv(f)
    } else {
        read_binary(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DynPoints {
        DynPoints::from_interleaved(3, vec![1.0, 2.0, 3.5, -4.25, 0.0, 1e6])
    }

    #[test]
    fn csv_roundtrip() {
        let pts = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &pts).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, pts);
    }

    #[test]
    fn binary_roundtrip() {
        let pts = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &pts).unwrap();
        let back = read_binary(buf.as_slice()).unwrap();
        assert_eq!(back, pts);
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let data = "1.0,2.0\n3.0\n";
        assert!(read_csv(data.as_bytes()).is_err());
    }

    #[test]
    fn csv_rejects_garbage() {
        let data = "1.0,banana\n";
        assert!(read_csv(data.as_bytes()).is_err());
    }

    #[test]
    fn csv_rejects_empty() {
        assert!(read_csv("".as_bytes()).is_err());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let data = b"NOTMAGIC\0\0\0\0";
        assert!(read_binary(&data[..]).is_err());
    }

    #[test]
    fn csv_skips_blank_lines() {
        let data = "1.0,2.0\n\n3.0,4.0\n";
        let pts = read_csv(data.as_bytes()).unwrap();
        assert_eq!(pts.len(), 2);
    }
}
