//! Structured telemetry for the simjoin workspace.
//!
//! The paper's argument rests on *internal* execution metrics — warp
//! execution efficiency, per-phase times, estimator accuracy — which the
//! crates previously only surfaced as ad-hoc table prints. This crate gives
//! them a shared, machine-readable channel: producers record [`Event`]s
//! against a [`Telemetry`] sink, and callers choose the sink —
//! [`NullTelemetry`] (the zero-cost default) or [`JsonTelemetry`] (buffers
//! events and serializes a schema-versioned JSON document).
//!
//! Two invariants the rest of the workspace relies on:
//!
//! - **Neutrality.** Recording is host-side bookkeeping only; producers
//!   must never branch on the sink in a way that alters pair sets, cycle
//!   counts, or model seconds. `enabled()` exists solely to skip the cost
//!   of *assembling* an event, never to change simulated behaviour.
//! - **Stable schema.** Serialized documents carry [`SCHEMA_VERSION`]
//!   (`sj-telemetry/v1`); consumers (e.g. `results/` artifacts from
//!   `sj-bench`) key on it. Additive field changes keep `v1`; renames or
//!   semantic changes bump it.
//!
//! No external dependencies: serialization is hand-rolled JSON, so the
//! crate sits below `warpsim` in the dependency graph.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

pub mod json;

pub use json::JsonValue;

/// Version tag embedded in every serialized telemetry document.
pub const SCHEMA_VERSION: &str = "sj-telemetry/v1";

/// A telemetry field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

/// One structured record: a `scope` (producer subsystem, e.g.
/// `"warpsim.launch"`), a `name` (what happened, e.g. `"phase"`), and
/// ordered key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub scope: &'static str,
    pub name: &'static str,
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    pub fn new(scope: &'static str, name: &'static str) -> Self {
        Self {
            scope,
            name,
            fields: Vec::new(),
        }
    }

    pub fn u64(mut self, key: &'static str, v: u64) -> Self {
        self.fields.push((key, Value::U64(v)));
        self
    }

    pub fn i64(mut self, key: &'static str, v: i64) -> Self {
        self.fields.push((key, Value::I64(v)));
        self
    }

    pub fn f64(mut self, key: &'static str, v: f64) -> Self {
        self.fields.push((key, Value::F64(v)));
        self
    }

    pub fn bool(mut self, key: &'static str, v: bool) -> Self {
        self.fields.push((key, Value::Bool(v)));
        self
    }

    pub fn str(mut self, key: &'static str, v: impl Into<String>) -> Self {
        self.fields.push((key, Value::Str(v.into())));
        self
    }

    /// Field lookup, for tests and consumers.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// A sink for telemetry events.
///
/// Producers take `&dyn Telemetry` and call [`Telemetry::record`]; the
/// `&self` receiver means sinks use interior mutability and can be shared
/// across the host worker threads of a simulated launch.
pub trait Telemetry: Send + Sync {
    /// Whether assembling events is worthwhile. Producers may use this to
    /// skip building expensive payloads (histograms, per-warp vectors) but
    /// must not let it influence simulated results.
    fn is_enabled(&self) -> bool;

    /// Records one event. Must be cheap and non-blocking for the simulated
    /// workload (buffering is fine; I/O belongs in an explicit flush).
    fn record(&self, event: Event);
}

/// The zero-cost default sink: drops everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTelemetry;

impl Telemetry for NullTelemetry {
    fn is_enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// Shared instance for the common `&NullTelemetry` default argument.
pub static NULL: NullTelemetry = NullTelemetry;

/// Buffers events in memory and serializes them as one schema-versioned
/// JSON document (see [`SCHEMA_VERSION`]).
#[derive(Debug, Default)]
pub struct JsonTelemetry {
    label: String,
    events: Mutex<Vec<Event>>,
}

impl JsonTelemetry {
    /// `label` identifies the run (e.g. an experiment + dataset + config).
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            events: Mutex::new(Vec::new()),
        }
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    pub fn len(&self) -> usize {
        self.events.lock().expect("telemetry poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the recorded events, in record order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("telemetry poisoned").clone()
    }

    /// Snapshot of the events matching `scope` and `name`, in record order —
    /// the common shape of consumer assertions ("all `executor` /
    /// `overflow_recovery` events of this run").
    pub fn events_named(&self, scope: &str, name: &str) -> Vec<Event> {
        self.events
            .lock()
            .expect("telemetry poisoned")
            .iter()
            .filter(|e| e.scope == scope && e.name == name)
            .cloned()
            .collect()
    }

    /// Serializes the buffered events as a `sj-telemetry/v1` document.
    pub fn to_json(&self) -> String {
        let events = self.events.lock().expect("telemetry poisoned");
        let mut out = String::with_capacity(256 + events.len() * 128);
        out.push_str("{\n  \"schema\": ");
        json_string(&mut out, SCHEMA_VERSION);
        out.push_str(",\n  \"label\": ");
        json_string(&mut out, &self.label);
        out.push_str(",\n  \"events\": [");
        for (i, event) in events.iter().enumerate() {
            out.push_str(if i == 0 { "\n    " } else { ",\n    " });
            write_event(&mut out, event);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the document to `path`, creating parent directories.
    pub fn write_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

impl Telemetry for JsonTelemetry {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        self.events.lock().expect("telemetry poisoned").push(event);
    }
}

fn write_event(out: &mut String, event: &Event) {
    out.push_str("{\"scope\": ");
    json_string(out, event.scope);
    out.push_str(", \"name\": ");
    json_string(out, event.name);
    out.push_str(", \"fields\": {");
    for (i, (key, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json_string(out, key);
        out.push_str(": ");
        write_value(out, value);
    }
    out.push_str("}}");
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        // JSON has no NaN/Infinity literal.
        Value::F64(_) => out.push_str("null"),
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(s) => json_string(out, s),
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Host wall-clock stopwatch for phase timers.
///
/// Phase *durations* are host-side observations (the simulator's own cost
/// model reports model seconds separately); producers record both so
/// consumers can attribute simulation overhead vs modelled work.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        assert!(!NULL.is_enabled());
        NULL.record(Event::new("x", "y").u64("k", 1));
    }

    #[test]
    fn json_sink_buffers_in_order() {
        let sink = JsonTelemetry::new("unit");
        assert!(sink.is_empty());
        sink.record(Event::new("a", "first").u64("n", 1));
        sink.record(Event::new("a", "second").f64("x", 0.5));
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "first");
        assert_eq!(events[1].field("x"), Some(&Value::F64(0.5)));
    }

    #[test]
    fn events_named_filters_by_scope_and_name() {
        let sink = JsonTelemetry::new("unit");
        sink.record(Event::new("a", "first").u64("n", 1));
        sink.record(Event::new("b", "first").u64("n", 2));
        sink.record(Event::new("a", "first").u64("n", 3));
        sink.record(Event::new("a", "second"));
        let firsts = sink.events_named("a", "first");
        assert_eq!(firsts.len(), 2);
        assert_eq!(firsts[0].field("n"), Some(&Value::U64(1)));
        assert_eq!(firsts[1].field("n"), Some(&Value::U64(3)));
        assert!(sink.events_named("c", "first").is_empty());
    }

    #[test]
    fn document_is_schema_versioned_and_escaped() {
        let sink = JsonTelemetry::new("run \"q\"\n");
        sink.record(
            Event::new("scope", "evt")
                .u64("u", 42)
                .i64("i", -7)
                .f64("f", 1.5)
                .f64("nan", f64::NAN)
                .bool("b", true)
                .str("s", "line1\nline2\t\"x\""),
        );
        let doc = sink.to_json();
        assert!(doc.contains("\"schema\": \"sj-telemetry/v1\""));
        assert!(doc.contains("\"label\": \"run \\\"q\\\"\\n\""));
        assert!(doc.contains("\"u\": 42"));
        assert!(doc.contains("\"i\": -7"));
        assert!(doc.contains("\"f\": 1.5"));
        assert!(doc.contains("\"nan\": null"));
        assert!(doc.contains("\"b\": true"));
        assert!(doc.contains("\"s\": \"line1\\nline2\\t\\\"x\\\"\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        let open = doc.matches('{').count();
        let close = doc.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn sinks_are_shareable_across_threads() {
        let sink = JsonTelemetry::new("threads");
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let sink = &sink;
                s.spawn(move || {
                    for i in 0..25 {
                        sink.record(Event::new("thread", "tick").u64("t", t).u64("i", i));
                    }
                });
            }
        });
        assert_eq!(sink.len(), 100);
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ns();
        let b = sw.elapsed_ns();
        assert!(b >= a);
    }
}
