//! Strict (RFC 8259) JSON parsing into a small value tree.
//!
//! The serve daemon's line-delimited request protocol and the workspace's
//! telemetry artifacts both promise *strict* JSON — no `NaN`, no trailing
//! commas, no unquoted keys. This module is the consuming side of that
//! promise: a dependency-free recursive-descent parser that either yields a
//! [`JsonValue`] tree or a positioned error. It accepts exactly the grammar
//! the integration suite's validator accepts.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source key order (duplicate keys are rejected).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in
    /// `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one strict-JSON document (a full line/file; trailing non-space
/// content is an error).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal(b"true", JsonValue::Bool(true)),
            Some(b'f') => self.literal(b"false", JsonValue::Bool(false)),
            Some(b'n') => self.literal(b"null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &[u8], v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.fail("bad literal"))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(fields)),
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.fail("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.fail("bad low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.fail("bad surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.fail("unpaired low surrogate"));
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.fail("bad \\u escape"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.fail("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.fail("raw control char in string")),
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Re-assemble the UTF-8 sequence (input is a &str, so
                    // the bytes are valid UTF-8 by construction).
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.fail("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let c = self.bump().ok_or_else(|| self.fail("bad \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.fail("bad \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.fail("bad number (NaN/Infinity are not JSON)")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.fail("bad fraction"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                return Err(self.fail("bad exponent"));
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid UTF-8"))?;
        let n: f64 = text.parse().map_err(|_| self.fail("unparseable number"))?;
        if !n.is_finite() {
            return Err(self.fail("number overflows f64"));
        }
        Ok(JsonValue::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_values() {
        let v =
            parse(r#"{"op": "query", "point_id": 3, "eps": 0.5, "tags": [true, null]}"#).unwrap();
        assert_eq!(v.get("op").and_then(JsonValue::as_str), Some("query"));
        assert_eq!(v.get("point_id").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("eps").and_then(JsonValue::as_f64), Some(0.5));
        assert_eq!(
            v.get("tags").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn resolves_escapes() {
        let v = parse(r#""a\u00e9\n\t\"\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("aé\n\t\"A😀"));
    }

    #[test]
    fn rejects_json_extensions() {
        for bad in [
            "{\"x\": NaN}",
            "{\"x\": Infinity}",
            "{\"x\": 1,}",
            "[1, 2,]",
            "{\"x\": .5}",
            "{\"x\": 01}",
            "{'x': 1}",
            "{\"x\": 1} extra",
            "{\"x\": 1, \"x\": 2}",
            "\"unpaired \\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "parser accepted {bad:?}");
        }
    }

    #[test]
    fn numbers_round_trip_exactly_in_integer_range() {
        let v = parse("[0, -1, 4294967295, 1.5e3, -2.25]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(0));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(items[1].as_f64(), Some(-1.0));
        assert_eq!(items[2].as_u64(), Some(4_294_967_295));
        assert_eq!(items[3].as_f64(), Some(1500.0));
        assert_eq!(items[4].as_f64(), Some(-2.25));
    }
}
