//! EGO-sort: lexicographic ordering by ε-cell coordinates.

use epsgrid::Point;

/// Cell coordinates of a point on the ε grid anchored at `origin`.
pub fn ego_cell_coords<const N: usize>(p: &Point<N>, origin: &[f32; N], epsilon: f32) -> [i64; N] {
    let mut c = [0i64; N];
    for d in 0..N {
        c[d] = ((p[d] - origin[d]) / epsilon).floor() as i64;
    }
    c
}

/// A dataset in EGO order: points sorted lexicographically by cell
/// coordinates, with their original ids and precomputed coordinates.
#[derive(Debug, Clone)]
pub struct EgoSorted<const N: usize> {
    /// Points in EGO order.
    pub points: Vec<Point<N>>,
    /// Original dataset id of each sorted point.
    pub ids: Vec<u32>,
    /// Cell coordinates of each sorted point.
    pub cells: Vec<[i64; N]>,
    /// The ε used for the grid.
    pub epsilon: f32,
}

impl<const N: usize> EgoSorted<N> {
    /// EGO-sorts a dataset.
    pub fn sort(points: &[Point<N>], epsilon: f32) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive"
        );
        let origin = {
            let mut o = [f32::MAX; N];
            for p in points {
                for d in 0..N {
                    o[d] = o[d].min(p[d]);
                }
            }
            if points.is_empty() {
                o = [0.0; N];
            }
            o
        };
        let mut keyed: Vec<(u32, [i64; N])> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, ego_cell_coords(p, &origin, epsilon)))
            .collect();
        keyed.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut sorted_points = Vec::with_capacity(points.len());
        let mut ids = Vec::with_capacity(points.len());
        let mut cells = Vec::with_capacity(points.len());
        for (id, cell) in keyed {
            sorted_points.push(points[id as usize]);
            ids.push(id);
            cells.push(cell);
        }
        Self {
            points: sorted_points,
            ids,
            cells,
            epsilon,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_lexicographically_by_cell() {
        let pts: Vec<Point<2>> = vec![[2.5, 0.5], [0.5, 2.5], [0.5, 0.5], [2.5, 2.5]];
        let sorted = EgoSorted::sort(&pts, 1.0);
        for w in sorted.cells.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // (0.5, 0.5) has the smallest cell.
        assert_eq!(sorted.ids[0], 2);
    }

    #[test]
    fn ids_track_original_points() {
        let pts: Vec<Point<3>> = (0..30)
            .map(|i| [(i * 7 % 13) as f32, (i * 5 % 11) as f32, (i % 3) as f32])
            .collect();
        let sorted = EgoSorted::sort(&pts, 1.5);
        for (i, &id) in sorted.ids.iter().enumerate() {
            assert_eq!(sorted.points[i], pts[id as usize]);
        }
        let mut ids = sorted.ids.clone();
        ids.sort_unstable();
        assert_eq!(ids, (0..30).collect::<Vec<u32>>());
    }

    #[test]
    fn cell_coords_are_relative_to_origin() {
        let p = [3.7f32, -1.2];
        let origin = [0.0f32, -2.0];
        assert_eq!(ego_cell_coords(&p, &origin, 1.0), [3, 0]);
        assert_eq!(ego_cell_coords(&p, &origin, 0.5), [7, 1]);
    }

    #[test]
    fn empty_dataset_sorts() {
        let pts: Vec<Point<2>> = vec![];
        let sorted = EgoSorted::sort(&pts, 1.0);
        assert!(sorted.is_empty());
        assert_eq!(sorted.len(), 0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        let _ = EgoSorted::sort(&[[0.0f32, 0.0]], 0.0);
    }
}
