//! The recursive EGO-join.

use std::ops::Range;

use epsgrid::Point;

use crate::egosort::EgoSorted;

/// SUPER-EGO configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperEgoConfig {
    /// The distance threshold ε.
    pub epsilon: f32,
    /// Worker threads for the parallel driver (0 → all available cores).
    pub threads: usize,
    /// Range pairs at or below this size fall through to the
    /// short-circuited nested-loop join.
    pub naive_threshold: usize,
    /// Whether to apply the dimension-reordering phase.
    pub reorder_dims: bool,
}

impl SuperEgoConfig {
    /// Defaults matching the original implementation's spirit.
    pub fn new(epsilon: f32) -> Self {
        Self {
            epsilon,
            threads: 0,
            naive_threshold: 32,
            reorder_dims: true,
        }
    }
}

/// Operation counts of one join execution (the basis for model-time
/// comparisons against the simulated GPU).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Distance computations started (including short-circuited ones).
    pub distance_calcs: u64,
    /// Range pairs pruned by the interval condition.
    pub pruned: u64,
    /// Range pairs joined at the leaves.
    pub leaf_joins: u64,
    /// Result pairs found (ordered, both orientations).
    pub pairs_found: u64,
    /// Points sorted (counts toward the sort's `n log n` model cost).
    pub sorted_points: u64,
}

impl JoinStats {
    /// Accumulates another execution's counters.
    pub fn accumulate(&mut self, other: &JoinStats) {
        self.distance_calcs += other.distance_calcs;
        self.pruned += other.pruned;
        self.leaf_joins += other.leaf_joins;
        self.pairs_found += other.pairs_found;
        self.sorted_points += other.sorted_points;
    }
}

/// Squared distance with short-circuit: stops accumulating as soon as the
/// partial sum exceeds ε² (most effective after dimension reordering).
#[inline]
fn dist_sq_short_circuit<const N: usize>(a: &Point<N>, b: &Point<N>, eps_sq: f32) -> Option<f32> {
    let mut acc = 0.0f32;
    for d in 0..N {
        let diff = a[d] - b[d];
        acc += diff * diff;
        if acc > eps_sq {
            return None;
        }
    }
    Some(acc)
}

/// Per-dimension cell-coordinate bounds of a sorted range — SUPER-EGO's
/// improved pruning state, maintained incrementally down the recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellBox<const N: usize> {
    /// Minimum cell coordinate per dimension.
    pub lo: [i64; N],
    /// Maximum cell coordinate per dimension.
    pub hi: [i64; N],
}

impl<const N: usize> CellBox<N> {
    /// Computes the bounds of `range` by scanning its cells.
    pub fn of(sorted: &EgoSorted<N>, range: &Range<usize>) -> Self {
        debug_assert!(!range.is_empty());
        let mut lo = sorted.cells[range.start];
        let mut hi = lo;
        for c in &sorted.cells[range.start + 1..range.end] {
            for d in 0..N {
                lo[d] = lo[d].min(c[d]);
                hi[d] = hi[d].max(c[d]);
            }
        }
        Self { lo, hi }
    }

    /// Whether no pair between two boxed ranges can be within ε: some
    /// dimension's cell intervals are more than one cell apart (a gap of two
    /// or more cells means a coordinate distance strictly greater than ε).
    pub fn prunable(&self, other: &Self) -> bool {
        for d in 0..N {
            if self.lo[d] > other.hi[d] + 1 || other.lo[d] > self.hi[d] + 1 {
                return true;
            }
        }
        false
    }
}

/// Public prune test for arbitrary ranges (tests, task splitting).
pub(crate) fn ego_prunable<const N: usize>(
    sorted: &EgoSorted<N>,
    a: &Range<usize>,
    b: &Range<usize>,
) -> bool {
    CellBox::of(sorted, a).prunable(&CellBox::of(sorted, b))
}

struct JoinCtx<'a, const N: usize> {
    sorted: &'a EgoSorted<N>,
    eps_sq: f32,
    naive_threshold: usize,
    out: Vec<(u32, u32)>,
    stats: JoinStats,
}

impl<const N: usize> JoinCtx<'_, N> {
    /// Nested-loop join of two disjoint ranges.
    fn naive_cross(&mut self, a: Range<usize>, b: Range<usize>) {
        self.stats.leaf_joins += 1;
        for i in a {
            for j in b.clone() {
                self.stats.distance_calcs += 1;
                if dist_sq_short_circuit(
                    &self.sorted.points[i],
                    &self.sorted.points[j],
                    self.eps_sq,
                )
                .is_some()
                {
                    let (pi, pj) = (self.sorted.ids[i], self.sorted.ids[j]);
                    self.out.push((pi, pj));
                    self.out.push((pj, pi));
                    self.stats.pairs_found += 2;
                }
            }
        }
    }

    /// Nested-loop self-join of one range (each unordered pair once).
    fn naive_self(&mut self, a: Range<usize>) {
        self.stats.leaf_joins += 1;
        for i in a.clone() {
            for j in i + 1..a.end {
                self.stats.distance_calcs += 1;
                if dist_sq_short_circuit(
                    &self.sorted.points[i],
                    &self.sorted.points[j],
                    self.eps_sq,
                )
                .is_some()
                {
                    let (pi, pj) = (self.sorted.ids[i], self.sorted.ids[j]);
                    self.out.push((pi, pj));
                    self.out.push((pj, pi));
                    self.stats.pairs_found += 2;
                }
            }
        }
    }

    /// Self-join of one range.
    fn join_self(&mut self, a: Range<usize>) {
        if a.len() <= self.naive_threshold.max(1) {
            self.naive_self(a);
            return;
        }
        let mid = a.start + a.len() / 2;
        let (left, right) = (a.start..mid, mid..a.end);
        let lbox = CellBox::of(self.sorted, &left);
        let rbox = CellBox::of(self.sorted, &right);
        self.join_self(left.clone());
        self.join_cross(left, lbox, right.clone(), rbox);
        self.join_self(right);
    }

    /// Join of two disjoint boxed ranges.
    fn join_cross(&mut self, a: Range<usize>, abox: CellBox<N>, b: Range<usize>, bbox: CellBox<N>) {
        if a.is_empty() || b.is_empty() {
            return;
        }
        if abox.prunable(&bbox) {
            self.stats.pruned += 1;
            return;
        }
        if a.len() + b.len() <= self.naive_threshold.max(2) {
            self.naive_cross(a, b);
            return;
        }
        if a.len() >= b.len() {
            let mid = a.start + a.len() / 2;
            let (left, right) = (a.start..mid, mid..a.end);
            let lbox = CellBox::of(self.sorted, &left);
            let rbox = CellBox::of(self.sorted, &right);
            self.join_cross(left, lbox, b.clone(), bbox);
            self.join_cross(right, rbox, b, bbox);
        } else {
            let mid = b.start + b.len() / 2;
            let (left, right) = (b.start..mid, mid..b.end);
            let lbox = CellBox::of(self.sorted, &left);
            let rbox = CellBox::of(self.sorted, &right);
            self.join_cross(a.clone(), abox, left, lbox);
            self.join_cross(a, abox, right, rbox);
        }
    }
}

/// Sequentially EGO-joins two ranges of an EGO-sorted dataset, returning the
/// ordered pairs found and the operation counts. Used directly by tests and
/// as the per-task worker of the parallel driver.
pub fn ego_join_sequential<const N: usize>(
    sorted: &EgoSorted<N>,
    a: Range<usize>,
    b: Range<usize>,
    config: &SuperEgoConfig,
) -> (Vec<(u32, u32)>, JoinStats) {
    let mut ctx = JoinCtx {
        sorted,
        eps_sq: config.epsilon * config.epsilon,
        naive_threshold: config.naive_threshold,
        out: Vec::new(),
        stats: JoinStats::default(),
    };
    if !a.is_empty() && !b.is_empty() {
        if a == b {
            ctx.join_self(a);
        } else {
            let abox = CellBox::of(sorted, &a);
            let bbox = CellBox::of(sorted, &b);
            ctx.join_cross(a, abox, b, bbox);
        }
    }
    (ctx.out, ctx.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(pts: &[Point<2>], eps: f32) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                if epsgrid::within_epsilon(&pts[i], &pts[j], eps) {
                    pairs.push((i as u32, j as u32));
                    pairs.push((j as u32, i as u32));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    fn scattered(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| {
                let x = ((i * 2654435761) % 1000) as f32 / 100.0;
                let y = ((i * 40503 + 7) % 1000) as f32 / 100.0;
                [x, y]
            })
            .collect()
    }

    #[test]
    fn sequential_join_matches_brute_force() {
        let pts = scattered(150);
        let eps = 0.4;
        let sorted = EgoSorted::sort(&pts, eps);
        let config = SuperEgoConfig::new(eps);
        let (mut pairs, stats) = ego_join_sequential(&sorted, 0..pts.len(), 0..pts.len(), &config);
        pairs.sort_unstable();
        assert_eq!(pairs, brute(&pts, eps));
        assert_eq!(stats.pairs_found as usize, pairs.len());
    }

    #[test]
    fn pruning_reduces_distance_calcs() {
        let pts = scattered(400);
        let eps = 0.15;
        let sorted = EgoSorted::sort(&pts, eps);
        let config = SuperEgoConfig {
            naive_threshold: 8,
            ..SuperEgoConfig::new(eps)
        };
        let (_, stats) = ego_join_sequential(&sorted, 0..pts.len(), 0..pts.len(), &config);
        let brute_calcs = (pts.len() * (pts.len() - 1) / 2) as u64;
        assert!(stats.pruned > 0, "expected some pruning");
        assert!(
            stats.distance_calcs < brute_calcs / 4,
            "EGO should prune most of the {brute_calcs} brute-force comparisons, did {}",
            stats.distance_calcs
        );
    }

    #[test]
    fn prune_test_is_sound() {
        // Exhaustively verify on a small instance: pruned range pairs truly
        // contain no in-ε pair.
        let pts = scattered(60);
        let eps = 0.3;
        let sorted = EgoSorted::sort(&pts, eps);
        let n = pts.len();
        for a_start in (0..n).step_by(7) {
            for a_end in [a_start + 3, a_start + 11] {
                for b_start in (0..n).step_by(9) {
                    for b_end in [b_start + 4, b_start + 13] {
                        let (a, b) = (a_start..a_end.min(n), b_start..b_end.min(n));
                        if a.is_empty() || b.is_empty() {
                            continue;
                        }
                        if ego_prunable(&sorted, &a, &b) {
                            for i in a.clone() {
                                for j in b.clone() {
                                    assert!(
                                        !epsgrid::within_epsilon(
                                            &sorted.points[i],
                                            &sorted.points[j],
                                            eps
                                        ),
                                        "pruned ranges contained an in-eps pair"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cell_box_bounds_its_range() {
        let pts = scattered(80);
        let sorted = EgoSorted::sort(&pts, 0.5);
        let range = 10..40;
        let bbox = CellBox::of(&sorted, &range);
        for i in range {
            for d in 0..2 {
                assert!(sorted.cells[i][d] >= bbox.lo[d]);
                assert!(sorted.cells[i][d] <= bbox.hi[d]);
            }
        }
    }

    #[test]
    fn prunable_is_symmetric_and_respects_adjacency() {
        let a = CellBox::<2> {
            lo: [0, 0],
            hi: [1, 1],
        };
        let adjacent = CellBox::<2> {
            lo: [2, 0],
            hi: [2, 1],
        };
        let far = CellBox::<2> {
            lo: [3, 0],
            hi: [4, 1],
        };
        assert!(
            !a.prunable(&adjacent),
            "gap of one cell may hold in-eps pairs"
        );
        assert!(a.prunable(&far));
        assert!(far.prunable(&a));
        let far_y = CellBox::<2> {
            lo: [0, 3],
            hi: [1, 5],
        };
        assert!(a.prunable(&far_y), "any single far dimension suffices");
    }

    #[test]
    fn short_circuit_distance_agrees_with_full_distance() {
        let a = [0.0f32, 3.0, 1.0];
        let b = [0.5f32, 3.2, 1.1];
        let eps_sq = 1.0f32;
        assert!(dist_sq_short_circuit(&a, &b, eps_sq).is_some());
        let far = [9.0f32, 3.0, 1.0];
        assert!(dist_sq_short_circuit(&a, &far, eps_sq).is_none());
    }

    #[test]
    fn duplicate_heavy_dataset() {
        let mut pts: Vec<Point<2>> = vec![[1.0, 1.0]; 40];
        pts.extend_from_slice(&[[5.0, 5.0], [5.05, 5.0]]);
        let eps = 0.1;
        let sorted = EgoSorted::sort(&pts, eps);
        let (mut pairs, _) = ego_join_sequential(
            &sorted,
            0..pts.len(),
            0..pts.len(),
            &SuperEgoConfig::new(eps),
        );
        pairs.sort_unstable();
        assert_eq!(pairs, brute(&pts, eps));
    }

    #[test]
    fn single_point_has_no_pairs() {
        let pts: Vec<Point<2>> = vec![[0.0, 0.0]];
        let sorted = EgoSorted::sort(&pts, 1.0);
        let (pairs, _) = ego_join_sequential(&sorted, 0..1, 0..1, &SuperEgoConfig::new(1.0));
        assert!(pairs.is_empty());
    }
}
