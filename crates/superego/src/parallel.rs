//! Parallel SUPER-EGO driver.
//!
//! The top of the EGO-join recursion is unrolled into a list of independent
//! range-pair tasks (pruning as it unrolls), which worker threads then pull
//! from a shared counter and join sequentially — the same
//! task-decomposition style the original SUPER-EGO uses for its
//! multi-threaded mode.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use epsgrid::Point;
use sj_telemetry::{Event, Stopwatch, Telemetry};

use crate::egosort::EgoSorted;
use crate::join::{ego_join_sequential, JoinStats, SuperEgoConfig};
use crate::reorder::DimOrder;

/// The outcome of a SUPER-EGO join.
#[derive(Debug, Clone)]
pub struct SuperEgoOutcome {
    /// Ordered result pairs (both orientations), in original dataset ids.
    pub pairs: Vec<(u32, u32)>,
    /// Accumulated operation counts.
    pub stats: JoinStats,
    /// Measured wall-clock time of sort + join.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// The dimension permutation applied (identity if reordering is off).
    pub dim_order: Vec<usize>,
}

fn resolve_threads(config: &SuperEgoConfig) -> usize {
    if config.threads > 0 {
        config.threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Unrolls the top of the recursion into at least `target` tasks (or until
/// tasks stop being splittable), pruning as it goes.
fn split_tasks<const N: usize>(
    sorted: &EgoSorted<N>,
    config: &SuperEgoConfig,
    target: usize,
    stats: &mut JoinStats,
) -> Vec<(Range<usize>, Range<usize>)> {
    let n = sorted.len();
    let mut queue: VecDeque<(Range<usize>, Range<usize>)> = VecDeque::new();
    if n > 0 {
        queue.push_back((0..n, 0..n));
    }
    let threshold = config.naive_threshold.max(2);
    let mut leaves: Vec<(Range<usize>, Range<usize>)> = Vec::new();
    while let Some((a, b)) = queue.pop_front() {
        if a.is_empty() || b.is_empty() {
            continue;
        }
        if a != b && crate::join::ego_prunable(sorted, &a, &b) {
            stats.pruned += 1;
            continue;
        }
        let splittable = if a == b {
            a.len() > threshold
        } else {
            a.len() + b.len() > threshold
        };
        if leaves.len() + queue.len() >= target || !splittable {
            leaves.push((a, b));
            continue;
        }
        if a == b {
            let mid = a.start + a.len() / 2;
            queue.push_back((a.start..mid, a.start..mid));
            queue.push_back((a.start..mid, mid..a.end));
            queue.push_back((mid..a.end, mid..a.end));
        } else if a.len() >= b.len() {
            let mid = a.start + a.len() / 2;
            queue.push_back((a.start..mid, b.clone()));
            queue.push_back((mid..a.end, b));
        } else {
            let mid = b.start + b.len() / 2;
            queue.push_back((a.clone(), b.start..mid));
            queue.push_back((a, mid..b.end));
        }
    }
    leaves
}

/// Runs the full SUPER-EGO pipeline: dimension reordering, EGO-sort, and the
/// parallel EGO-join.
pub fn super_ego_join<const N: usize>(
    points: &[Point<N>],
    config: &SuperEgoConfig,
) -> SuperEgoOutcome {
    super_ego_join_with(points, config, &sj_telemetry::NULL)
}

/// [`super_ego_join`] recording per-phase telemetry (dimension reorder,
/// EGO-sort, task split, parallel join) to `telemetry`. The phase events
/// carry the operation counts a CPU cost model converts to model seconds;
/// the sink never changes results.
pub fn super_ego_join_with<const N: usize>(
    points: &[Point<N>],
    config: &SuperEgoConfig,
    telemetry: &dyn Telemetry,
) -> SuperEgoOutcome {
    let telemetry_on = telemetry.is_enabled();
    let start = Instant::now();
    let threads = resolve_threads(config);
    let sw_reorder = Stopwatch::start();
    let dim_order = if config.reorder_dims {
        DimOrder::by_selectivity(points, config.epsilon)
    } else {
        DimOrder::identity(N)
    };
    let work_points = dim_order.apply_all(points);
    if telemetry_on {
        telemetry.record(
            Event::new("superego.phase", "reorder")
                .bool("reordered", config.reorder_dims)
                .str(
                    "dim_order",
                    dim_order
                        .as_slice()
                        .iter()
                        .map(usize::to_string)
                        .collect::<Vec<_>>()
                        .join(","),
                )
                .u64("host_ns", sw_reorder.elapsed_ns()),
        );
    }
    let sw_sort = Stopwatch::start();
    let sorted = EgoSorted::sort(&work_points, config.epsilon);
    if telemetry_on {
        telemetry.record(
            Event::new("superego.phase", "egosort")
                .u64("points", points.len() as u64)
                .u64("host_ns", sw_sort.elapsed_ns()),
        );
    }

    let sw_split = Stopwatch::start();
    let mut stats = JoinStats {
        sorted_points: points.len() as u64,
        ..JoinStats::default()
    };
    let tasks = split_tasks(&sorted, config, threads * 16, &mut stats);
    if telemetry_on {
        telemetry.record(
            Event::new("superego.phase", "task_split")
                .u64("tasks", tasks.len() as u64)
                .u64("pruned_at_split", stats.pruned)
                .u64("host_ns", sw_split.elapsed_ns()),
        );
    }
    let sw_join = Stopwatch::start();

    let next = AtomicUsize::new(0);
    let results: Vec<(Vec<(u32, u32)>, JoinStats)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let sorted = &sorted;
                let tasks = &tasks;
                let next = &next;
                scope.spawn(move |_| {
                    let mut local_pairs = Vec::new();
                    let mut local_stats = JoinStats::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((a, b)) = tasks.get(i) else { break };
                        let (pairs, s) = ego_join_sequential(sorted, a.clone(), b.clone(), config);
                        local_pairs.extend(pairs);
                        local_stats.accumulate(&s);
                    }
                    (local_pairs, local_stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope failed");

    let mut pairs = Vec::new();
    for (p, s) in results {
        pairs.extend(p);
        stats.accumulate(&s);
    }
    if telemetry_on {
        telemetry.record(
            Event::new("superego.phase", "join")
                .u64("threads", threads as u64)
                .u64("distance_calcs", stats.distance_calcs)
                .u64("pruned", stats.pruned)
                .u64("leaf_joins", stats.leaf_joins)
                .u64("pairs_found", stats.pairs_found)
                .u64("host_ns", sw_join.elapsed_ns()),
        );
    }
    SuperEgoOutcome {
        pairs,
        stats,
        wall: start.elapsed(),
        threads,
        dim_order: dim_order.as_slice().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute(pts: &[Point<3>], eps: f32) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                if epsgrid::within_epsilon(&pts[i], &pts[j], eps) {
                    pairs.push((i as u32, j as u32));
                    pairs.push((j as u32, i as u32));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    fn dataset(n: usize) -> Vec<Point<3>> {
        (0..n)
            .map(|i| {
                [
                    ((i * 2654435761) % 997) as f32 / 50.0,
                    ((i * 40503 + 7) % 991) as f32 / 50.0,
                    ((i * 69069 + 13) % 983) as f32 / 200.0,
                ]
            })
            .collect()
    }

    #[test]
    fn parallel_join_matches_brute_force() {
        let pts = dataset(300);
        let eps = 0.5;
        let outcome = super_ego_join(&pts, &SuperEgoConfig::new(eps));
        let mut pairs = outcome.pairs.clone();
        pairs.sort_unstable();
        assert_eq!(pairs, brute(&pts, eps));
        assert_eq!(outcome.stats.pairs_found as usize, pairs.len());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let pts = dataset(250);
        let eps = 0.6;
        let sort = |mut v: Vec<(u32, u32)>| {
            v.sort_unstable();
            v
        };
        let one = super_ego_join(
            &pts,
            &SuperEgoConfig {
                threads: 1,
                ..SuperEgoConfig::new(eps)
            },
        );
        let many = super_ego_join(
            &pts,
            &SuperEgoConfig {
                threads: 8,
                ..SuperEgoConfig::new(eps)
            },
        );
        assert_eq!(sort(one.pairs), sort(many.pairs));
        assert_eq!(one.stats.pairs_found, many.stats.pairs_found);
        assert_eq!(many.threads, 8);
    }

    #[test]
    fn reordering_does_not_change_results() {
        let pts = dataset(200);
        let eps = 0.5;
        let sort = |mut v: Vec<(u32, u32)>| {
            v.sort_unstable();
            v
        };
        let with = super_ego_join(&pts, &SuperEgoConfig::new(eps));
        let without = super_ego_join(
            &pts,
            &SuperEgoConfig {
                reorder_dims: false,
                ..SuperEgoConfig::new(eps)
            },
        );
        assert_eq!(sort(with.pairs), sort(without.pairs));
        assert_eq!(without.dim_order, vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_tiny_datasets() {
        let outcome = super_ego_join::<3>(&[], &SuperEgoConfig::new(1.0));
        assert!(outcome.pairs.is_empty());
        let one = super_ego_join(&[[0.0f32, 0.0, 0.0]], &SuperEgoConfig::new(1.0));
        assert!(one.pairs.is_empty());
        let two = super_ego_join(
            &[[0.0f32, 0.0, 0.0], [0.1, 0.0, 0.0]],
            &SuperEgoConfig::new(1.0),
        );
        assert_eq!(two.pairs.len(), 2);
    }

    #[test]
    fn task_splitting_covers_everything_without_duplicates() {
        // The task list must produce the same result as one big task.
        let pts = dataset(180);
        let eps = 0.7;
        let sorted = EgoSorted::sort(&pts, eps);
        let config = SuperEgoConfig::new(eps);
        let mut stats = JoinStats::default();
        let tasks = split_tasks(&sorted, &config, 64, &mut stats);
        let mut task_pairs = Vec::new();
        for (a, b) in tasks {
            let (p, _) = ego_join_sequential(&sorted, a, b, &config);
            task_pairs.extend(p);
        }
        task_pairs.sort_unstable();
        let (mut whole, _) = ego_join_sequential(&sorted, 0..pts.len(), 0..pts.len(), &config);
        whole.sort_unstable();
        assert_eq!(task_pairs, whole);
    }
}
