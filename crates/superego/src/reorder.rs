//! Dimension reordering (SUPER-EGO's first phase).
//!
//! Euclidean distance is invariant under a permutation of coordinates, so
//! the join may run in any dimension order. SUPER-EGO reorders dimensions so
//! that the most *selective* ones lead: the EGO-sort then separates far
//! points earlier, the join recursion prunes higher, and the
//! short-circuited distance test fails sooner. We rank selectivity by the
//! dimension's extent measured in ε cells (more cells → a random pair is
//! less likely to collide in that dimension).

use epsgrid::Point;

/// A dimension permutation: `order[i]` is the source dimension stored at
/// position `i` after reordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimOrder {
    order: Vec<usize>,
}

impl DimOrder {
    /// The identity permutation.
    pub fn identity(dims: usize) -> Self {
        Self {
            order: (0..dims).collect(),
        }
    }

    /// Ranks dimensions by decreasing extent/ε (ties keep original order).
    pub fn by_selectivity<const N: usize>(points: &[Point<N>], epsilon: f32) -> Self {
        let mut cells_per_dim = [0u64; N];
        if let Some(first) = points.first() {
            let mut min = *first;
            let mut max = *first;
            for p in points {
                for d in 0..N {
                    min[d] = min[d].min(p[d]);
                    max[d] = max[d].max(p[d]);
                }
            }
            for d in 0..N {
                cells_per_dim[d] = ((max[d] - min[d]) / epsilon.max(f32::MIN_POSITIVE))
                    .floor()
                    .max(0.0) as u64
                    + 1;
            }
        }
        let mut order: Vec<usize> = (0..N).collect();
        order.sort_by(|&a, &b| cells_per_dim[b].cmp(&cells_per_dim[a]).then(a.cmp(&b)));
        Self { order }
    }

    /// The permutation as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.order
    }

    /// Applies the permutation to one point.
    pub fn apply<const N: usize>(&self, p: &Point<N>) -> Point<N> {
        debug_assert_eq!(self.order.len(), N);
        let mut out = [0.0f32; N];
        for (i, &d) in self.order.iter().enumerate() {
            out[i] = p[d];
        }
        out
    }

    /// Applies the permutation to a whole dataset.
    pub fn apply_all<const N: usize>(&self, points: &[Point<N>]) -> Vec<Point<N>> {
        points.iter().map(|p| self.apply(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epsgrid::euclidean_dist_sq;

    #[test]
    fn identity_keeps_points() {
        let p = [1.0f32, 2.0, 3.0];
        let id = DimOrder::identity(3);
        assert_eq!(id.apply(&p), p);
    }

    #[test]
    fn widest_dimension_leads() {
        // dim 1 spans 100 cells, dim 0 spans 1 cell.
        let pts: Vec<Point<2>> = vec![[0.0, 0.0], [0.5, 100.0]];
        let order = DimOrder::by_selectivity(&pts, 1.0);
        assert_eq!(order.as_slice(), &[1, 0]);
        assert_eq!(order.apply(&[0.5, 100.0]), [100.0, 0.5]);
    }

    #[test]
    fn permutation_preserves_distances() {
        let pts: Vec<Point<4>> = vec![
            [0.1, 5.0, -2.0, 0.4],
            [1.3, -1.0, 7.5, 2.2],
            [0.0, 0.0, 0.0, 0.0],
        ];
        let order = DimOrder::by_selectivity(&pts, 0.5);
        let permuted = order.apply_all(&pts);
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                let d1 = euclidean_dist_sq(&pts[i], &pts[j]);
                let d2 = euclidean_dist_sq(&permuted[i], &permuted[j]);
                assert!((d1 - d2).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn order_is_a_permutation() {
        let pts: Vec<Point<5>> = (0..20)
            .map(|i| {
                [
                    i as f32,
                    (i * 3 % 7) as f32,
                    0.5,
                    (i % 2) as f32,
                    -(i as f32),
                ]
            })
            .collect();
        let order = DimOrder::by_selectivity(&pts, 0.7);
        let mut sorted = order.as_slice().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn empty_dataset_yields_identity_like_order() {
        let pts: Vec<Point<3>> = vec![];
        let order = DimOrder::by_selectivity(&pts, 1.0);
        let mut sorted = order.as_slice().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
