//! # superego — the SUPER-EGO parallel CPU ε self-join
//!
//! A from-scratch reimplementation of the state-of-the-art CPU comparator
//! used by the paper: Kalashnikov's SUPER-EGO (Epsilon Grid Order) join.
//! The algorithm:
//!
//! 1. **Dimension reordering** ([`reorder`]): dimensions are permuted so the
//!    most selective ones (largest extent in units of ε) come first, which
//!    makes both the EGO sort order and the short-circuited distance test
//!    discriminate earlier.
//! 2. **EGO-sort** ([`egosort`]): points are sorted lexicographically by
//!    their ε-cell coordinates. A contiguous range of the sorted array then
//!    spans a small, lexicographically-bounded region of the grid.
//! 3. **EGO-join** ([`join`]): a recursive double-tree walk over sorted
//!    ranges. Two ranges are *pruned* when some leading dimension is fixed
//!    within both and the cell coordinates differ by more than one — no pair
//!    between them can be within ε. Small range pairs fall through to a
//!    short-circuited nested-loop join.
//! 4. **Parallelism** ([`parallel`]): the recursion is unrolled into a task
//!    list joined by a pool of worker threads (crossbeam scoped threads).
//!
//! The join returns ordered pairs `(a, b)`, `a ≠ b`, both orientations,
//! matching the convention of the `simjoin` GPU kernels, plus operation
//! counts so the benchmark harness can put CPU and simulated-GPU executions
//! on a common model-time scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod egosort;
pub mod join;
pub mod parallel;
pub mod reorder;

pub use egosort::{ego_cell_coords, EgoSorted};
pub use join::{ego_join_sequential, JoinStats, SuperEgoConfig};
pub use parallel::{super_ego_join, super_ego_join_with};
pub use reorder::DimOrder;
