//! Property-based tests: SUPER-EGO is an exact self-join under any
//! configuration.

use epsgrid::within_epsilon;
use proptest::prelude::*;
use superego::{super_ego_join, SuperEgoConfig};

fn brute<const N: usize>(pts: &[[f32; N]], eps: f32) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for i in 0..pts.len() {
        for j in i + 1..pts.len() {
            if within_epsilon(&pts[i], &pts[j], eps) {
                pairs.push((i as u32, j as u32));
                pairs.push((j as u32, i as u32));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_join_2d(
        pts in prop::collection::vec(prop::array::uniform2(-50.0f32..50.0), 1..120),
        eps in 0.05f32..40.0,
        threads in 1usize..5,
        naive_threshold in 2usize..64,
        reorder in any::<bool>(),
    ) {
        let config = SuperEgoConfig {
            epsilon: eps,
            threads,
            naive_threshold,
            reorder_dims: reorder,
        };
        let outcome = super_ego_join(&pts, &config);
        let mut pairs = outcome.pairs;
        pairs.sort_unstable();
        prop_assert_eq!(pairs, brute(&pts, eps));
    }

    #[test]
    fn exact_join_4d(
        pts in prop::collection::vec(prop::array::uniform4(-5.0f32..5.0), 1..60),
        eps in 0.1f32..8.0,
    ) {
        let outcome = super_ego_join(&pts, &SuperEgoConfig::new(eps));
        let mut pairs = outcome.pairs;
        pairs.sort_unstable();
        prop_assert_eq!(pairs, brute(&pts, eps));
    }

    /// The distance-calculation count never exceeds the brute-force count
    /// (pruning can only remove work), and stats stay self-consistent.
    #[test]
    fn stats_are_consistent(
        pts in prop::collection::vec(prop::array::uniform2(-30.0f32..30.0), 2..100),
        eps in 0.05f32..20.0,
    ) {
        let outcome = super_ego_join(&pts, &SuperEgoConfig::new(eps));
        let brute_calcs = (pts.len() * (pts.len() - 1) / 2) as u64;
        prop_assert!(outcome.stats.distance_calcs <= brute_calcs);
        prop_assert_eq!(outcome.stats.pairs_found as usize, outcome.pairs.len());
        prop_assert_eq!(outcome.stats.sorted_points as usize, pts.len());
    }
}
