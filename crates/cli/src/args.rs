//! Tiny flag parser for the CLI (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: flags (`--key value` and bare `--switch`) plus
/// positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Parsed {
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["verify", "balanced-queue", "quick", "help", "no-coalesce"];

impl Parsed {
    /// Parses an argument list.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = Parsed::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if SWITCHES.contains(&name) {
                    out.switches.push(name.to_string());
                } else {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    out.flags.insert(name.to_string(), value.clone());
                    i += 1;
                }
            } else {
                out.positional.push(a.clone());
            }
            i += 1;
        }
        Ok(out)
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required flag parsed into `T`.
    pub fn required_parse<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.required(name)?
            .parse()
            .map_err(|_| format!("flag --{name} has an invalid value"))
    }

    /// An optional flag parsed into `T` with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.optional(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name} has an invalid value")),
        }
    }

    /// Whether a no-value switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_switches_and_positionals() {
        let p = Parsed::parse(&argv(&["join", "--eps", "0.5", "--verify", "--k", "8"])).unwrap();
        assert_eq!(p.positional(), &["join".to_string()]);
        assert_eq!(p.required("eps").unwrap(), "0.5");
        assert_eq!(p.required_parse::<u32>("k").unwrap(), 8);
        assert!(p.switch("verify"));
        assert!(!p.switch("balanced-queue"));
        assert!(!p.switch("quick"));
    }

    #[test]
    fn quick_is_a_switch_not_a_value_flag() {
        // Regression guard: `--quick` must not swallow the next argument.
        let p = Parsed::parse(&argv(&["soak", "--quick", "--iterations", "4"])).unwrap();
        assert!(p.switch("quick"));
        assert_eq!(p.parse_or("iterations", 0u32).unwrap(), 4);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Parsed::parse(&argv(&["--eps"])).is_err());
    }

    #[test]
    fn missing_required_flag_is_an_error() {
        let p = Parsed::parse(&argv(&["join"])).unwrap();
        assert!(p.required("eps").is_err());
    }

    #[test]
    fn defaults_apply() {
        let p = Parsed::parse(&argv(&[])).unwrap();
        assert_eq!(p.parse_or("k", 1u32).unwrap(), 1);
    }

    #[test]
    fn invalid_parse_reports_flag_name() {
        let p = Parsed::parse(&argv(&["--k", "banana"])).unwrap();
        let err = p.required_parse::<u32>("k").unwrap_err();
        assert!(err.contains("--k"));
    }
}
