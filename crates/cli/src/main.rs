//! `simjoin` — command-line similarity self-join.
//!
//! ```text
//! simjoin datasets
//! simjoin generate --dataset Expo2D2M --n 60000 --output pts.csv
//! simjoin join --input pts.csv --eps 0.2 [--k 8|auto] [--pattern lid]
//!              [--balancing queue] [--balanced-queue] [--output pairs.csv] [--verify]
//! simjoin stats --input pts.csv --eps 0.2
//! simjoin profile --input pts.csv --eps 0.2 --output telemetry.json
//! simjoin chaos --input pts.csv --eps 0.2 --fault-profile mixed --seed 42
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
