//! CLI subcommands.

use std::path::Path;

use epsgrid::DynPoints;
use simjoin::{AccessPattern, Balancing, SelfJoin, SelfJoinConfig, SortBackend};
use sj_telemetry::{JsonTelemetry, Telemetry, Value};
use sjdata::{io as dataio, DatasetSpec};

use crate::args::Parsed;

const USAGE: &str = "\
simjoin — GPU-simulated similarity self-join

USAGE:
  simjoin datasets
      List the named datasets of the paper's Table I.
  simjoin generate --dataset <name> --n <count> --output <path>
      Generate a dataset (.csv or binary by extension).
  simjoin join --input <path> --eps <f> [--k <n>|--k auto]
               [--pattern full|unicomp|lid] [--balancing none|sort|queue]
               [--balanced-queue] [--devices <n>] [--shard-strategy workload|count]
               [--recovery reshard|degrade] [--sort-backend host|device]
               [--exec-mode gpu|cpu|hybrid] [--jobs <n>] [--cpu-fraction <f>]
               [--host-jobs <n>] [--output <pairs.csv>] [--verify]
      Run the self-join and print the execution report. --verify checks the
      result against the SUPER-EGO CPU join. With --devices N > 1 the batch
      plan is sharded across N simulated GPUs (workload-aware by default)
      and the per-device breakdown plus the fleet makespan are printed; the
      merged result and the canonical report are identical to a
      single-device run. --recovery picks what happens when a device fails
      persistently mid-join: re-shard its unexecuted work onto the
      survivors (default) or degrade that shard to the exact CPU fallback.
      --exec-mode hybrid co-executes the plan across the simulated GPU and
      host CPU workers (--jobs threads), cutting the workload-sorted unit
      list by measured per-backend cost (or at a forced --cpu-fraction) and
      differentially checking every unit both backends computed; the pair
      set and canonical report stay identical to --exec-mode gpu.
      --exec-mode cpu routes every unit through the checked CPU backend.
      --host-jobs N threads the inside of the join itself (fleet shards,
      batches, warp stepping; 0 = one per core, default from the HOST_JOBS
      env var): the pair set, report, and telemetry are bit-identical for
      any value — only wall-clock changes. Also accepted by profile, chaos,
      and soak.
  simjoin stats --input <path> --eps <f>
      Print workload statistics (mean neighbors, cells, imbalance).
  simjoin profile --input <path> --eps <f> [join flags] [--output <telemetry.json>]
      Run the self-join with the JSON telemetry sink attached, print a
      per-phase breakdown, and write the sj-telemetry/v1 document
      (default: telemetry.json). The sink is observation-only: pair sets,
      cycle counts and model seconds are identical with or without it.
  simjoin chaos --input <path> --eps <f> [join flags]
                [--fault-profile transient|device-lost|overflow|counter|stall|mixed]
                [--seed <u64>] [--devices <n>] [--shard-strategy workload|count]
                [--recovery reshard|degrade] [--exec-mode gpu|cpu|hybrid]
                [--output <telemetry.json>]
      Replay a seeded fault schedule against the join and report how the
      resilient executor recovered (retries, splits, re-sharding, CPU
      degradation). With --devices N > 1 every device gets its own seeded
      schedule and the fleet failover path is exercised. The result is
      verified against the SUPER-EGO CPU join; a typed error is also an
      acceptable outcome under injected faults.
  simjoin serve --input <path> --eps <f> [--script <path>|--listen <addr>]
                [--pattern full|unicomp|lid] [--balancing none|sort|queue]
                [--k <n>] [--exec-mode gpu|cpu|hybrid] [--host-jobs <n>]
                [--queue-capacity <n>] [--no-coalesce] [--rebuild-limit <f>]
                [--output <telemetry.json>]
      Run the always-on serve daemon over the dataset: a line-delimited
      strict-JSON request loop answering exact ε-neighborhood queries
      ({\"op\": \"query\", \"point_id\": i, \"eps\": e}), whole self-joins
      ({\"op\": \"join\", \"eps\": e}), and streaming inserts/removes
      ({\"op\": \"insert\", \"point\": [..]} / {\"op\": \"remove\",
      \"point_id\": i}), plus flush, stats and shutdown. The ε-grid is
      maintained incrementally across churn (bit-identical to a fresh
      build); queued same-ε requests are coalesced into one launch and
      admission is bounded by --queue-capacity (typed rejections, never
      unbounded buffering). --no-coalesce is the serial baseline: one
      launch per request. Requests come from --script, a single --listen
      TCP connection, or stdin; EOF implies shutdown. Latencies are model
      seconds; the sj-telemetry/v1 document (serve.request /
      serve.coalesce / serve.reindex events) lands at --output (default
      serve_telemetry.json).
  simjoin soak [--iterations <n>] [--seed <base>] [--dataset <name>]
               [--n <count>] [--eps <f>] [--recovery reshard|degrade]
               [--exec-mode gpu|hybrid] [--quick] [--output <telemetry.json>]
      Chaos soak harness: run N seeded chaos iterations cycling fault
      profile x device count x access pattern, asserting on every round
      that the fleet result is exactly the clean run's pair set and that
      the recovered makespan stays within the serial response-time bound.
      --exec-mode hybrid soaks the CPU/GPU co-executor instead: each
      iteration replays its fault schedule through the hybrid path and
      asserts the co-processed pair set is exactly the clean run's.
      --quick shrinks the dataset for CI.
";

/// Dispatches a parsed command line.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(argv)?;
    if parsed.switch("help") || parsed.positional().is_empty() {
        println!("{USAGE}");
        return Ok(());
    }
    match parsed.positional()[0].as_str() {
        "datasets" => datasets(),
        "generate" => generate(&parsed),
        "join" => join(&parsed),
        "stats" => stats(&parsed),
        "profile" => profile(&parsed),
        "chaos" => chaos(&parsed),
        "soak" => soak(&parsed),
        "serve" => serve(&parsed),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn datasets() -> Result<(), String> {
    println!(
        "{:<10} {:>4} {:>12} {:>12}  epsilons",
        "name", "dims", "paper |D|", "scaled |D|"
    );
    for spec in DatasetSpec::table1() {
        println!(
            "{:<10} {:>4} {:>12} {:>12}  {:?}",
            spec.name, spec.dims, spec.paper_points, spec.default_points, spec.epsilons
        );
    }
    Ok(())
}

fn generate(parsed: &Parsed) -> Result<(), String> {
    let name = parsed.required("dataset")?;
    let spec = DatasetSpec::by_name(name)
        .ok_or_else(|| format!("unknown dataset `{name}` (see `simjoin datasets`)"))?;
    let n = parsed.parse_or("n", spec.default_points)?;
    let output = parsed.required("output")?;
    let points = spec.generate(n);
    dataio::write_path(Path::new(output), &points).map_err(|e| e.to_string())?;
    println!(
        "wrote {} points ({} dims) to {output}",
        points.len(),
        points.dims()
    );
    Ok(())
}

fn load(parsed: &Parsed) -> Result<DynPoints, String> {
    let input = parsed.required("input")?;
    dataio::read_path(Path::new(input)).map_err(|e| format!("reading {input}: {e}"))
}

/// Unified ε validation for every CLI entry point: the same typed check
/// (and the same message) the serve protocol and the library constructors
/// apply, surfaced before any dataset is loaded into a grid.
fn check_eps(eps: f32) -> Result<f32, String> {
    simjoin::validate_epsilon(eps).map_err(|e| format!("flag --eps is invalid: {e}"))
}

/// `--eps`, required and validated.
fn eps_flag(parsed: &Parsed) -> Result<f32, String> {
    check_eps(parsed.required_parse("eps")?)
}

fn pattern_flag(parsed: &Parsed) -> Result<AccessPattern, String> {
    match parsed.optional("pattern").unwrap_or("lid") {
        "full" | "gpucalcglobal" => Ok(AccessPattern::FullWindow),
        "unicomp" => Ok(AccessPattern::Unicomp),
        "lid" | "lid-unicomp" => Ok(AccessPattern::LidUnicomp),
        other => Err(format!("unknown pattern `{other}` (full|unicomp|lid)")),
    }
}

fn balancing_flag(parsed: &Parsed) -> Result<Balancing, String> {
    match parsed.optional("balancing").unwrap_or("queue") {
        "none" | "static" => Ok(Balancing::None),
        "sort" | "sortbywl" => Ok(Balancing::SortByWorkload),
        "queue" | "workqueue" => Ok(Balancing::WorkQueue),
        other => Err(format!("unknown balancing `{other}` (none|sort|queue)")),
    }
}

fn sort_backend_flag(parsed: &Parsed) -> Result<SortBackend, String> {
    match parsed.optional("sort-backend") {
        None => Ok(SortBackend::default()),
        Some(name) => SortBackend::by_name(name)
            .ok_or_else(|| format!("unknown sort backend `{name}` (host|device)")),
    }
}

fn recovery_flag(parsed: &Parsed) -> Result<simjoin::RecoveryPolicy, String> {
    match parsed.optional("recovery") {
        None => Ok(simjoin::RecoveryPolicy::default()),
        Some(name) => simjoin::RecoveryPolicy::by_name(name)
            .ok_or_else(|| format!("unknown recovery mode `{name}` (reshard|degrade)")),
    }
}

/// `--host-jobs <n>`: worker threads inside each join (fleet shards,
/// batches, warps); `0` = one per core. When absent the config keeps its
/// default (the `HOST_JOBS` env var, else auto). Results are bit-identical
/// for any value — the knob changes wall-clock only.
fn host_jobs_flag(parsed: &Parsed, config: &mut SelfJoinConfig) -> Result<(), String> {
    if let Some(v) = parsed.optional("host-jobs") {
        config.host_jobs = v
            .parse()
            .map_err(|_| "flag --host-jobs has an invalid value")?;
    }
    Ok(())
}

fn exec_mode_flag(parsed: &Parsed) -> Result<simjoin::ExecMode, String> {
    match parsed.optional("exec-mode") {
        None => Ok(simjoin::ExecMode::default()),
        Some(name) => simjoin::ExecMode::by_name(name)
            .ok_or_else(|| format!("unknown exec mode `{name}` (gpu|cpu|hybrid)")),
    }
}

/// Builds the hybrid policy for a non-GPU [`simjoin::ExecMode`] from the
/// `--jobs` and `--cpu-fraction` flags.
fn hybrid_policy(
    parsed: &Parsed,
    mode: simjoin::ExecMode,
) -> Result<simjoin::HybridPolicy, String> {
    let jobs: usize = parsed.parse_or("jobs", 1)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    let mut policy = match mode {
        simjoin::ExecMode::Cpu => simjoin::HybridPolicy::cpu_only(),
        _ => simjoin::HybridPolicy::default(),
    }
    .with_jobs(jobs);
    if let Some(f) = parsed.optional("cpu-fraction") {
        if mode == simjoin::ExecMode::Cpu {
            return Err("--cpu-fraction conflicts with --exec-mode cpu (always 1.0)".into());
        }
        let f: f64 = f
            .parse()
            .map_err(|_| "flag --cpu-fraction has an invalid value")?;
        if !(0.0..=1.0).contains(&f) {
            return Err("--cpu-fraction must be within [0, 1]".into());
        }
        policy = policy.with_forced_cpu_fraction(f);
    }
    Ok(policy)
}

/// The hybrid accounting line(s) shared by `join` and `chaos` output.
fn print_hybrid(h: &simjoin::HybridReport) {
    println!(
        "hybrid cut            : unit {} of {} ({} chosen) — {} gpu / {} cpu / {} spilled unit(s)",
        h.cut,
        h.units,
        if h.forced { "forced" } else { "measured" },
        h.gpu_units,
        h.cpu_units,
        h.spilled_units
    );
    println!(
        "hybrid gpu side       : {:.6} model s ({} unit(s))",
        h.gpu_response_s, h.gpu_units
    );
    println!(
        "hybrid cpu side       : {:.6} model s ({} unit(s), {} jobs, {} distance calcs)",
        h.cpu_model_s, h.cpu_units, h.jobs, h.cpu_stats.distance_calcs
    );
    println!("hybrid makespan       : {:.6} model s", h.makespan_s);
}

/// The fleet recovery accounting line(s) shared by `join`, `chaos` and
/// `soak` output.
fn print_recovery(rec: &simjoin::FleetRecoveryReport) {
    if !rec.intervened() {
        println!("fleet recovery        : none (no intervention)");
        return;
    }
    println!(
        "fleet recovery        : {} reshard round(s), {} unit(s) reassigned, \
         {} device(s) lost, {} straggler rebalance(s)",
        rec.reshard_rounds, rec.reassigned_units, rec.devices_lost, rec.straggler_rebalances
    );
    if rec.cpu_last_resort_points > 0 {
        println!(
            "cpu last resort       : {} point(s), {} pair(s), {:.6} model s",
            rec.cpu_last_resort_points, rec.cpu_last_resort_pairs, rec.cpu_last_resort_model_s
        );
    }
    for h in &rec.health {
        println!(
            "  round {}: device {} -> {} ({} unit(s))",
            h.round,
            h.device,
            h.state.label(),
            h.units
        );
    }
}

fn with_fixed<R>(
    points: &DynPoints,
    mut f: impl FnMut(&dyn JoinRunner) -> Result<R, String>,
) -> Result<R, String> {
    macro_rules! dims {
        ($($n:literal),*) => {
            match points.dims() {
                $($n => {
                    let pts = points.as_fixed::<$n>().expect("dims checked");
                    f(&FixedRunner::<$n> { points: pts })
                })*
                d => Err(format!("unsupported dimensionality {d} (2–6)")),
            }
        };
    }
    dims!(2, 3, 4, 5, 6)
}

/// What a join run hands back to the CLI: the pairs, the report, and the
/// `k` that was actually used (relevant under `--auto-k`).
type RunOutput = Result<(Vec<(u32, u32)>, simjoin::JoinReport, u32), String>;

/// What a sharded join hands back: the merged pairs, the canonical report,
/// the per-device fleet breakdown, and the `k` that was used.
type FleetRunOutput = Result<
    (
        Vec<(u32, u32)>,
        simjoin::JoinReport,
        simjoin::FleetReport,
        u32,
    ),
    String,
>;

/// What a hybrid co-executed join hands back: the merged pairs, the
/// canonical report, the hybrid accounting, and the `k` that was used.
type HybridRunOutput = Result<
    (
        Vec<(u32, u32)>,
        simjoin::JoinReport,
        simjoin::HybridReport,
        u32,
    ),
    String,
>;

/// What a chaos run produced: either a completed join (possibly degraded)
/// or a typed error — both acceptable under injected faults; only a wrong
/// pair set is not.
enum ChaosOutcome {
    Completed {
        pairs: Vec<(u32, u32)>,
        report: Box<simjoin::JoinReport>,
        /// Present when the chaos run went through the fleet path.
        fleet: Option<Box<simjoin::FleetReport>>,
        /// Present when the chaos run went through the hybrid co-executor.
        hybrid: Option<Box<simjoin::HybridReport>>,
    },
    Failed {
        error: String,
    },
}

/// Dimension-erased access to the join for the CLI.
trait JoinRunner {
    fn run(&self, config: SelfJoinConfig, auto_k: bool, telemetry: &dyn Telemetry) -> RunOutput;
    fn run_fleet(
        &self,
        config: SelfJoinConfig,
        auto_k: bool,
        devices: usize,
        strategy: simjoin::ShardStrategy,
        telemetry: &dyn Telemetry,
    ) -> FleetRunOutput;
    fn run_hybrid(
        &self,
        config: SelfJoinConfig,
        auto_k: bool,
        policy: &simjoin::HybridPolicy,
        telemetry: &dyn Telemetry,
    ) -> HybridRunOutput;
    fn run_chaos(
        &self,
        config: SelfJoinConfig,
        plane: &warpsim::FaultPlane,
        telemetry: &dyn Telemetry,
    ) -> Result<ChaosOutcome, String>;
    fn run_chaos_hybrid(
        &self,
        config: SelfJoinConfig,
        policy: &simjoin::HybridPolicy,
        plane: &warpsim::FaultPlane,
        telemetry: &dyn Telemetry,
    ) -> Result<ChaosOutcome, String>;
    fn run_chaos_fleet(
        &self,
        config: SelfJoinConfig,
        devices: usize,
        strategy: simjoin::ShardStrategy,
        faults: &[(usize, warpsim::FaultSchedule)],
        telemetry: &dyn Telemetry,
    ) -> Result<ChaosOutcome, String>;
    fn superego_pairs(&self, eps: f32) -> Vec<(u32, u32)>;
    fn stats(&self, eps: f32) -> Result<(f64, usize, f64), String>;
    /// Runs the serve request loop: feed `lines` through a
    /// [`simjoin::ServeSession`], writing each response line to `out`.
    /// EOF without an explicit shutdown injects one, so the queue always
    /// drains and every admitted request is answered.
    fn serve(
        &self,
        config: SelfJoinConfig,
        serve_cfg: simjoin::ServeConfig,
        lines: &mut dyn Iterator<Item = std::io::Result<String>>,
        out: &mut dyn std::io::Write,
        telemetry: &dyn Telemetry,
    ) -> Result<simjoin::ServeReport, String>;
}

struct FixedRunner<const N: usize> {
    points: Vec<[f32; N]>,
}

impl<const N: usize> JoinRunner for FixedRunner<N> {
    fn run(
        &self,
        mut config: SelfJoinConfig,
        auto_k: bool,
        telemetry: &dyn Telemetry,
    ) -> RunOutput {
        if auto_k {
            let probe = SelfJoin::new(&self.points, config.clone()).map_err(|e| e.to_string())?;
            config.k = probe.recommended_k();
        }
        let k = config.k;
        let join = SelfJoin::new(&self.points, config)
            .map_err(|e| e.to_string())?
            .with_telemetry(telemetry);
        let outcome = join.run().map_err(|e| e.to_string())?;
        Ok((outcome.result.sorted_pairs(), outcome.report, k))
    }

    fn run_fleet(
        &self,
        mut config: SelfJoinConfig,
        auto_k: bool,
        devices: usize,
        strategy: simjoin::ShardStrategy,
        telemetry: &dyn Telemetry,
    ) -> FleetRunOutput {
        if auto_k {
            let probe = SelfJoin::new(&self.points, config.clone()).map_err(|e| e.to_string())?;
            config.k = probe.recommended_k();
        }
        let k = config.k;
        let fleet = warpsim::DeviceFleet::homogeneous(devices, config.gpu);
        let join = SelfJoin::new(&self.points, config)
            .map_err(|e| e.to_string())?
            .with_telemetry(telemetry);
        let outcome = join
            .run_on_fleet(&fleet, strategy)
            .map_err(|e| e.to_string())?;
        Ok((
            outcome.result.sorted_pairs(),
            outcome.report,
            outcome.fleet,
            k,
        ))
    }

    fn run_hybrid(
        &self,
        mut config: SelfJoinConfig,
        auto_k: bool,
        policy: &simjoin::HybridPolicy,
        telemetry: &dyn Telemetry,
    ) -> HybridRunOutput {
        if auto_k {
            let probe = SelfJoin::new(&self.points, config.clone()).map_err(|e| e.to_string())?;
            config.k = probe.recommended_k();
        }
        let k = config.k;
        let join = SelfJoin::new(&self.points, config)
            .map_err(|e| e.to_string())?
            .with_telemetry(telemetry);
        let outcome = join.run_hybrid(policy).map_err(|e| e.to_string())?;
        Ok((
            outcome.result.sorted_pairs(),
            outcome.report,
            outcome.hybrid,
            k,
        ))
    }

    fn run_chaos(
        &self,
        config: SelfJoinConfig,
        plane: &warpsim::FaultPlane,
        telemetry: &dyn Telemetry,
    ) -> Result<ChaosOutcome, String> {
        let join = SelfJoin::new(&self.points, config)
            .map_err(|e| e.to_string())?
            .with_telemetry(telemetry)
            .with_fault_plane(plane);
        Ok(match join.run() {
            Ok(outcome) => ChaosOutcome::Completed {
                pairs: outcome.result.sorted_pairs(),
                report: Box::new(outcome.report),
                fleet: None,
                hybrid: None,
            },
            Err(e) => ChaosOutcome::Failed {
                error: e.to_string(),
            },
        })
    }

    fn run_chaos_hybrid(
        &self,
        config: SelfJoinConfig,
        policy: &simjoin::HybridPolicy,
        plane: &warpsim::FaultPlane,
        telemetry: &dyn Telemetry,
    ) -> Result<ChaosOutcome, String> {
        let join = SelfJoin::new(&self.points, config)
            .map_err(|e| e.to_string())?
            .with_telemetry(telemetry)
            .with_fault_plane(plane);
        Ok(match join.run_hybrid(policy) {
            Ok(outcome) => ChaosOutcome::Completed {
                pairs: outcome.result.sorted_pairs(),
                report: Box::new(outcome.report),
                fleet: None,
                hybrid: Some(Box::new(outcome.hybrid)),
            },
            Err(e) => ChaosOutcome::Failed {
                error: e.to_string(),
            },
        })
    }

    fn run_chaos_fleet(
        &self,
        config: SelfJoinConfig,
        devices: usize,
        strategy: simjoin::ShardStrategy,
        faults: &[(usize, warpsim::FaultSchedule)],
        telemetry: &dyn Telemetry,
    ) -> Result<ChaosOutcome, String> {
        let mut fleet = warpsim::DeviceFleet::homogeneous(devices, config.gpu);
        for (device, schedule) in faults {
            fleet = fleet.with_fault_schedule(*device, schedule.clone());
        }
        let join = SelfJoin::new(&self.points, config)
            .map_err(|e| e.to_string())?
            .with_telemetry(telemetry);
        Ok(match join.run_on_fleet(&fleet, strategy) {
            Ok(outcome) => ChaosOutcome::Completed {
                pairs: outcome.result.sorted_pairs(),
                report: Box::new(outcome.report),
                fleet: Some(Box::new(outcome.fleet)),
                hybrid: None,
            },
            Err(e) => ChaosOutcome::Failed {
                error: e.to_string(),
            },
        })
    }

    fn superego_pairs(&self, eps: f32) -> Vec<(u32, u32)> {
        let mut pairs =
            superego::super_ego_join(&self.points, &superego::SuperEgoConfig::new(eps)).pairs;
        pairs.sort_unstable();
        pairs
    }

    fn stats(&self, eps: f32) -> Result<(f64, usize, f64), String> {
        let join =
            SelfJoin::new(&self.points, SelfJoinConfig::new(eps)).map_err(|e| e.to_string())?;
        let profile = simjoin::WorkloadProfile::compute(join.grid());
        let per_point = profile.per_point();
        let mean = per_point.iter().sum::<u64>() as f64 / per_point.len() as f64;
        let var = per_point
            .iter()
            .map(|&w| {
                let d = w as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / per_point.len() as f64;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        Ok((join.mean_candidates(), join.grid().num_cells(), cv))
    }

    fn serve(
        &self,
        config: SelfJoinConfig,
        serve_cfg: simjoin::ServeConfig,
        lines: &mut dyn Iterator<Item = std::io::Result<String>>,
        out: &mut dyn std::io::Write,
        telemetry: &dyn Telemetry,
    ) -> Result<simjoin::ServeReport, String> {
        let mut session = simjoin::ServeSession::new(self.points.clone(), config, serve_cfg)
            .map_err(|e| e.to_string())?
            .with_telemetry(telemetry);
        let emit = |lines: Vec<String>, out: &mut dyn std::io::Write| -> Result<(), String> {
            for line in lines {
                writeln!(out, "{line}").map_err(|e| e.to_string())?;
            }
            out.flush().map_err(|e| e.to_string())
        };
        for line in lines {
            let line = line.map_err(|e| format!("reading requests: {e}"))?;
            emit(session.handle_line(&line), out)?;
            if session.is_shut_down() {
                break;
            }
        }
        if !session.is_shut_down() {
            emit(session.handle_line("{\"op\": \"shutdown\"}"), out)?;
        }
        Ok(session.report())
    }
}

fn join(parsed: &Parsed) -> Result<(), String> {
    let eps = eps_flag(parsed)?;
    let points = load(parsed)?;
    let pattern = pattern_flag(parsed)?;
    let balancing = balancing_flag(parsed)?;
    let (auto_k, k) = match parsed.optional("k") {
        Some("auto") => (true, 1u32),
        Some(v) => (
            false,
            v.parse().map_err(|_| "flag --k has an invalid value")?,
        ),
        None => (false, 1),
    };
    let devices: usize = parsed.parse_or("devices", 1)?;
    if devices == 0 {
        return Err("--devices must be at least 1".into());
    }
    let strategy_name = parsed.optional("shard-strategy").unwrap_or("workload");
    let strategy = simjoin::ShardStrategy::by_name(strategy_name)
        .ok_or_else(|| format!("unknown shard strategy `{strategy_name}` (workload|count)"))?;
    let exec_mode = exec_mode_flag(parsed)?;
    if exec_mode != simjoin::ExecMode::Gpu && devices > 1 {
        return Err("--exec-mode cpu|hybrid co-executes against the host; use --devices 1".into());
    }
    let mut config = SelfJoinConfig::new(eps)
        .with_pattern(pattern)
        .with_balancing(balancing)
        .with_k(k)
        .with_recovery(recovery_flag(parsed)?)
        .with_exec_mode(exec_mode);
    config.batching.balanced_queue = parsed.switch("balanced-queue");
    config.sort_backend = sort_backend_flag(parsed)?;
    host_jobs_flag(parsed, &mut config)?;

    let (pairs, report, fleet, hybrid, used_k) = with_fixed(&points, |runner| {
        let (pairs, report, fleet, hybrid, used_k) = if devices > 1 {
            let (pairs, report, fleet, used_k) = runner.run_fleet(
                config.clone(),
                auto_k,
                devices,
                strategy,
                &sj_telemetry::NULL,
            )?;
            (pairs, report, Some(fleet), None, used_k)
        } else if exec_mode != simjoin::ExecMode::Gpu {
            let policy = hybrid_policy(parsed, exec_mode)?;
            let (pairs, report, hybrid, used_k) =
                runner.run_hybrid(config.clone(), auto_k, &policy, &sj_telemetry::NULL)?;
            (pairs, report, None, Some(hybrid), used_k)
        } else {
            let (pairs, report, used_k) =
                runner.run(config.clone(), auto_k, &sj_telemetry::NULL)?;
            (pairs, report, None, None, used_k)
        };
        if parsed.switch("verify") {
            let reference = runner.superego_pairs(eps);
            if pairs != reference {
                return Err(format!(
                    "verification FAILED: GPU join found {} pairs, SUPER-EGO found {}",
                    pairs.len(),
                    reference.len()
                ));
            }
            println!(
                "verification: SUPER-EGO agrees on all {} pairs",
                pairs.len()
            );
        }
        Ok((pairs, report, fleet, hybrid, used_k))
    })?;

    println!(
        "variant               : {} (k = {used_k})",
        config.with_k(used_k).label()
    );
    println!("exec mode             : {}", exec_mode.label());
    println!("pairs found           : {}", pairs.len());
    println!("batches               : {}", report.num_batches);
    println!("distance calculations : {}", report.distance_calcs());
    println!("warp exec efficiency  : {:.1} %", report.wee() * 100.0);
    println!("response time (model) : {:.6} s", report.response_time_s());
    if let Some(pp) = &report.prepass {
        println!(
            "device pre-pass       : {:.6} s (sort {:.6} s / {} launches, scan {:.6} s / {} launches){}",
            pp.model_s(),
            pp.sort_model_s,
            pp.sort_launches,
            pp.scan_model_s,
            pp.scan_launches,
            if pp.degraded_to_host {
                " [degraded to host]"
            } else {
                ""
            }
        );
    }
    if let Some(fleet) = &fleet {
        println!(
            "devices               : {} ({} partitioning)",
            fleet.shards.len(),
            fleet.strategy.label()
        );
        for s in &fleet.shards {
            println!(
                "  device {}: units {:>4}..{:<4} queries {:>7} workload {:>10} \
                 batches {:>3} pairs {:>8} response {:.6} s{}{}",
                s.device,
                s.units.start,
                s.units.end,
                s.queries,
                s.workload,
                s.batches,
                s.pairs,
                s.response_time_s,
                match &s.degradation {
                    Some(d) if d.device_lost => " [device lost]",
                    Some(_) => " [degraded]",
                    None => "",
                },
                if s.reassigned_in > 0 || s.reassigned_out > 0 {
                    format!(" [+{} / -{} unit(s)]", s.reassigned_in, s.reassigned_out)
                } else {
                    String::new()
                }
            );
        }
        println!("fleet makespan (model): {:.6} s", fleet.makespan_s);
        println!(
            "jain fairness         : {:.3} (per-shard response times)",
            fleet.jain_fairness()
        );
        print_recovery(&fleet.recovery);
        if fleet.makespan_s > 0.0 {
            println!(
                "speedup vs 1 device   : {:.2}x",
                report.response_time_s() / fleet.makespan_s
            );
        }
    }
    if let Some(h) = &hybrid {
        print_hybrid(h);
        if h.makespan_s > 0.0 {
            println!(
                "speedup vs gpu only   : {:.2}x",
                report.response_time_s() / h.makespan_s
            );
        }
    }

    if let Some(output) = parsed.optional("output") {
        use std::io::Write;
        let f = std::fs::File::create(output).map_err(|e| e.to_string())?;
        let mut w = std::io::BufWriter::new(f);
        for (a, b) in &pairs {
            writeln!(w, "{a},{b}").map_err(|e| e.to_string())?;
        }
        println!("wrote {} pairs to {output}", pairs.len());
    }
    Ok(())
}

fn profile(parsed: &Parsed) -> Result<(), String> {
    let eps = eps_flag(parsed)?;
    let points = load(parsed)?;
    let pattern = pattern_flag(parsed)?;
    let balancing = balancing_flag(parsed)?;
    let (auto_k, k) = match parsed.optional("k") {
        Some("auto") => (true, 1u32),
        Some(v) => (
            false,
            v.parse().map_err(|_| "flag --k has an invalid value")?,
        ),
        None => (false, 1),
    };
    let mut config = SelfJoinConfig::new(eps)
        .with_pattern(pattern)
        .with_balancing(balancing)
        .with_k(k);
    config.batching.balanced_queue = parsed.switch("balanced-queue");
    config.sort_backend = sort_backend_flag(parsed)?;
    host_jobs_flag(parsed, &mut config)?;

    let sink = JsonTelemetry::new(format!(
        "simjoin profile eps={eps} pattern={pattern:?} balancing={balancing:?}"
    ));
    let (pairs, report, used_k) =
        with_fixed(&points, |runner| runner.run(config.clone(), auto_k, &sink))?;

    println!(
        "variant               : {} (k = {used_k})",
        config.clone().with_k(used_k).label()
    );
    println!("pairs found           : {}", pairs.len());
    println!("batches               : {}", report.num_batches);
    println!("warp exec efficiency  : {:.1} %", report.wee() * 100.0);
    println!("response time (model) : {:.6} s", report.response_time_s());

    let events = sink.events();
    println!("\nhost-side phases:");
    for event in &events {
        if event.scope == "executor.phase" {
            match (event.field("host_ns"), event.field("model_s")) {
                (Some(Value::U64(n)), _) => {
                    println!("  {:<20} {:>10.3} ms", event.name, *n as f64 / 1e6);
                }
                // Device pre-pass phases (sort/scan) are model-time only.
                (None, Some(Value::F64(s))) => {
                    println!("  {:<20} {:>10.6} model s", event.name, s);
                }
                _ => println!("  {:<20} {:>10.3} ms", event.name, 0.0),
            }
        }
    }
    let mut counts: Vec<(String, usize)> = Vec::new();
    for event in &events {
        let key = format!("{}/{}", event.scope, event.name);
        match counts.iter_mut().find(|(k, _)| *k == key) {
            Some((_, c)) => *c += 1,
            None => counts.push((key, 1)),
        }
    }
    println!("\nevents recorded:");
    for (key, count) in &counts {
        println!("  {key:<32} x{count}");
    }

    let output = parsed.optional("output").unwrap_or("telemetry.json");
    sink.write_to_file(Path::new(output))
        .map_err(|e| e.to_string())?;
    println!(
        "\nwrote {} events ({}) to {output}",
        sink.len(),
        sj_telemetry::SCHEMA_VERSION
    );
    Ok(())
}

fn chaos(parsed: &Parsed) -> Result<(), String> {
    let eps = eps_flag(parsed)?;
    let points = load(parsed)?;
    let pattern = pattern_flag(parsed)?;
    let balancing = balancing_flag(parsed)?;
    let k: u32 = parsed.parse_or("k", 1)?;
    let profile_name = parsed.optional("fault-profile").unwrap_or("mixed");
    let profile = warpsim::FaultProfile::by_name(profile_name).ok_or_else(|| {
        format!(
            "unknown fault profile `{profile_name}` (one of: {})",
            warpsim::FaultProfile::names().join("|")
        )
    })?;
    let seed: u64 = parsed.parse_or("seed", 0)?;
    let devices: usize = parsed.parse_or("devices", 1)?;
    if devices == 0 {
        return Err("--devices must be at least 1".into());
    }
    let strategy_name = parsed.optional("shard-strategy").unwrap_or("workload");
    let strategy = simjoin::ShardStrategy::by_name(strategy_name)
        .ok_or_else(|| format!("unknown shard strategy `{strategy_name}` (workload|count)"))?;
    let exec_mode = exec_mode_flag(parsed)?;
    if exec_mode != simjoin::ExecMode::Gpu && devices > 1 {
        return Err("--exec-mode cpu|hybrid co-executes against the host; use --devices 1".into());
    }
    let mut config = SelfJoinConfig::new(eps)
        .with_pattern(pattern)
        .with_balancing(balancing)
        .with_k(k)
        .with_recovery(recovery_flag(parsed)?)
        .with_exec_mode(exec_mode);
    config.batching.balanced_queue = parsed.switch("balanced-queue");
    config.sort_backend = sort_backend_flag(parsed)?;
    host_jobs_flag(parsed, &mut config)?;

    let sink = JsonTelemetry::new(format!(
        "simjoin chaos profile={profile_name} seed={seed} eps={eps} devices={devices}"
    ));
    let outcome = if devices > 1 {
        // Every device draws its own schedule from the same profile, with a
        // seed offset per device so the fault timings decorrelate.
        let faults: Vec<(usize, warpsim::FaultSchedule)> = (0..devices)
            .map(|d| (d, warpsim::FaultSchedule::seeded(seed + d as u64, &profile)))
            .collect();
        with_fixed(&points, |runner| {
            runner.run_chaos_fleet(config.clone(), devices, strategy, &faults, &sink)
        })?
    } else {
        let plane = warpsim::FaultPlane::seeded(seed, &profile);
        println!("injected faults       : {}", plane.injected_faults());
        if exec_mode != simjoin::ExecMode::Gpu {
            let policy = hybrid_policy(parsed, exec_mode)?;
            with_fixed(&points, |runner| {
                runner.run_chaos_hybrid(config.clone(), &policy, &plane, &sink)
            })?
        } else {
            with_fixed(&points, |runner| {
                runner.run_chaos(config.clone(), &plane, &sink)
            })?
        }
    };

    println!("variant               : {}", config.label());
    println!("exec mode             : {}", exec_mode.label());
    println!("fault profile         : {profile_name} (seed {seed})");
    if devices > 1 {
        println!(
            "devices               : {devices} ({} partitioning, {} recovery)",
            strategy.label(),
            config.recovery.label()
        );
    }
    match &outcome {
        ChaosOutcome::Failed { error } => {
            println!("outcome               : typed error — {error}");
            println!("(a typed error is an acceptable chaos outcome; a wrong result is not)");
        }
        ChaosOutcome::Completed {
            pairs,
            report,
            fleet,
            hybrid,
        } => {
            let reference = with_fixed(&points, |runner| Ok(runner.superego_pairs(eps)))?;
            if *pairs != reference {
                return Err(format!(
                    "chaos verification FAILED: join found {} pairs, SUPER-EGO found {}",
                    pairs.len(),
                    reference.len()
                ));
            }
            println!(
                "outcome               : completed, exact ({} pairs verified)",
                pairs.len()
            );
            println!("response time (model) : {:.6} s", report.response_time_s());
            match &report.degradation {
                None => println!("recovery              : none (clean run)"),
                Some(d) => {
                    println!("batches salvaged      : {}", d.batches_salvaged);
                    println!("points degraded to CPU: {}", d.points_degraded);
                    println!("cpu fallback pairs    : {}", d.cpu_pairs);
                    println!("cpu fallback (model)  : {:.6} s", d.cpu_model_s);
                    println!(
                        "retries               : {} transient, {} overflow splits, {} counter",
                        d.transient_retries, d.overflow_splits, d.counter_retries
                    );
                    println!("transfer stalls       : {}", d.transfer_stalls);
                    println!("backoff (model)       : {:.6} s", d.backoff_s);
                    println!("device lost           : {}", d.device_lost);
                }
            }
            if let Some(fleet) = fleet {
                println!("fleet makespan (model): {:.6} s", fleet.makespan_s);
                print_recovery(&fleet.recovery);
            }
            if let Some(h) = hybrid {
                print_hybrid(h);
            }
        }
    }

    let fault_events = sink
        .events()
        .iter()
        .filter(|e| {
            e.name == "fault_injected"
                || e.name == "fault_retry"
                || e.name == "overflow_recovery"
                || e.name == "degradation"
                || e.scope == "warpsim.fault"
        })
        .count();
    println!("fault/recovery events : {fault_events}");
    if let Some(output) = parsed.optional("output") {
        sink.write_to_file(Path::new(output))
            .map_err(|e| e.to_string())?;
        println!(
            "wrote {} events ({}) to {output}",
            sink.len(),
            sj_telemetry::SCHEMA_VERSION
        );
    }
    Ok(())
}

/// One soak iteration's observable outcome, lifted out of the
/// dimension-erased runner closure.
struct SoakRound {
    /// Typed error string when the faulted run failed (acceptable under
    /// injected faults); `None` means it completed and was verified exact.
    error: Option<String>,
    pairs: usize,
    makespan_s: f64,
    clean_makespan_s: f64,
    intervened: bool,
}

fn soak(parsed: &Parsed) -> Result<(), String> {
    let iterations: u64 = parsed.parse_or("iterations", 12)?;
    if iterations == 0 {
        return Err("--iterations must be at least 1".into());
    }
    let seed_base: u64 = parsed.parse_or("seed", 0)?;
    let dataset = parsed.optional("dataset").unwrap_or("Expo2D2M");
    let spec = DatasetSpec::by_name(dataset)
        .ok_or_else(|| format!("unknown dataset `{dataset}` (see `simjoin datasets`)"))?;
    let n: usize = parsed.parse_or("n", if parsed.switch("quick") { 400 } else { 800 })?;
    // Tuned for the default dataset at soak scale; override per dataset.
    let eps = check_eps(parsed.parse_or("eps", 0.5)?)?;
    let recovery = recovery_flag(parsed)?;
    let exec_mode = exec_mode_flag(parsed)?;
    if exec_mode == simjoin::ExecMode::Cpu {
        return Err("soak --exec-mode supports gpu|hybrid (cpu has no device to fault)".into());
    }
    let hybrid_soak = exec_mode == simjoin::ExecMode::Hybrid;
    let policy = hybrid_policy(parsed, exec_mode)?;
    let points = spec.generate(n);

    // Probe the clean pair count once, then tighten the batch capacity so
    // the plan holds enough units that seeded fault schedules actually land
    // inside each device's launch window — a soak over one-launch plans
    // would exercise nothing.
    let probe_pairs = with_fixed(&points, |runner| {
        match runner.run_chaos_fleet(
            SelfJoinConfig::new(eps),
            1,
            simjoin::ShardStrategy::WorkloadAware,
            &[],
            &sj_telemetry::NULL,
        )? {
            ChaosOutcome::Completed { pairs, .. } => Ok(pairs.len()),
            ChaosOutcome::Failed { error } => Err(format!("soak probe failed: {error}")),
        }
    })?;
    let batching = simjoin::BatchingConfig {
        batch_result_capacity: probe_pairs / 16 + 8,
        max_batches: 64,
        ..simjoin::BatchingConfig::default()
    };

    let sink = JsonTelemetry::new(format!(
        "simjoin soak dataset={dataset} n={n} eps={eps} seed-base={seed_base} \
         iterations={iterations} recovery={}",
        recovery.label()
    ));
    let profiles = warpsim::FaultProfile::names();
    let patterns = [
        AccessPattern::LidUnicomp,
        AccessPattern::Unicomp,
        AccessPattern::FullWindow,
    ];

    println!(
        "soak: {iterations} iteration(s) on {dataset} n={n} eps={eps} ({} recovery, {} exec)",
        recovery.label(),
        exec_mode.label()
    );
    let mut typed_errors = 0u64;
    let mut interventions = 0u64;
    let mut worst_inflation = 1.0f64;
    for i in 0..iterations {
        let seed = seed_base + i;
        let profile_name = profiles[i as usize % profiles.len()];
        let profile = warpsim::FaultProfile::by_name(profile_name).expect("known profile");
        let devices = if hybrid_soak { 1 } else { 1 + i as usize % 4 };
        let pattern = patterns[i as usize % patterns.len()];
        let strategy = simjoin::ShardStrategy::WorkloadAware;
        let mut config = SelfJoinConfig::new(eps)
            .with_pattern(pattern)
            .with_batching(batching)
            .with_recovery(recovery)
            .with_exec_mode(exec_mode);
        host_jobs_flag(parsed, &mut config)?;
        let faults = vec![(
            i as usize % devices,
            warpsim::FaultSchedule::seeded(seed, &profile),
        )];

        let round = if hybrid_soak {
            // Hybrid soak: replay the fault schedule through the CPU/GPU
            // co-executor and hold the same exact-result invariant against
            // the clean hybrid run.
            with_fixed(&points, |runner| {
                let (clean_pairs, _, clean_h, _) =
                    runner.run_hybrid(config.clone(), false, &policy, &sj_telemetry::NULL)?;
                let plane = warpsim::FaultPlane::seeded(seed, &profile);
                match runner.run_chaos_hybrid(config.clone(), &policy, &plane, &sink)? {
                    ChaosOutcome::Failed { error } => Ok(SoakRound {
                        error: Some(error),
                        pairs: 0,
                        makespan_s: 0.0,
                        clean_makespan_s: clean_h.makespan_s,
                        intervened: false,
                    }),
                    ChaosOutcome::Completed { pairs, hybrid, .. } => {
                        if pairs != clean_pairs {
                            return Err(format!(
                                "exact-result invariant VIOLATED: faulted hybrid run found \
                                 {} pairs, clean run found {}",
                                pairs.len(),
                                clean_pairs.len()
                            ));
                        }
                        let h = hybrid.expect("hybrid runs always report the cut");
                        Ok(SoakRound {
                            error: None,
                            pairs: pairs.len(),
                            makespan_s: h.makespan_s,
                            clean_makespan_s: clean_h.makespan_s,
                            intervened: h.spilled_units > 0,
                        })
                    }
                }
            })
        } else {
            with_fixed(&points, |runner| {
                // Clean reference on the same fleet size: the invariant is that
                // any fault schedule yields exactly this pair set.
                let (clean_pairs, clean_makespan_s) = match runner.run_chaos_fleet(
                    config.clone(),
                    devices,
                    strategy,
                    &[],
                    &sj_telemetry::NULL,
                )? {
                    ChaosOutcome::Completed { pairs, fleet, .. } => {
                        let fleet = fleet.expect("fleet runs always report the fleet");
                        (pairs, fleet.makespan_s)
                    }
                    ChaosOutcome::Failed { error } => {
                        return Err(format!("clean fleet run failed: {error}"));
                    }
                };
                match runner.run_chaos_fleet(config.clone(), devices, strategy, &faults, &sink)? {
                    ChaosOutcome::Failed { error } => Ok(SoakRound {
                        error: Some(error),
                        pairs: 0,
                        makespan_s: 0.0,
                        clean_makespan_s,
                        intervened: false,
                    }),
                    ChaosOutcome::Completed {
                        pairs,
                        report,
                        fleet,
                        ..
                    } => {
                        if pairs != clean_pairs {
                            return Err(format!(
                                "exact-result invariant VIOLATED: faulted run found {} pairs, \
                             clean run found {}",
                                pairs.len(),
                                clean_pairs.len()
                            ));
                        }
                        let fleet = fleet.expect("fleet runs always report the fleet");
                        // Structural bound: the parallel makespan can never
                        // exceed the serialized response time of the same
                        // recovered run (plus the host last-resort tail).
                        let serial_bound =
                            report.response_time_s() + fleet.recovery.cpu_last_resort_model_s;
                        if fleet.makespan_s > serial_bound * 1.05 + 1e-12 {
                            return Err(format!(
                                "makespan bound VIOLATED: {:.6e} model s exceeds the serial \
                             response bound {serial_bound:.6e}",
                                fleet.makespan_s
                            ));
                        }
                        Ok(SoakRound {
                            error: None,
                            pairs: pairs.len(),
                            makespan_s: fleet.makespan_s,
                            clean_makespan_s,
                            intervened: fleet.recovery.intervened(),
                        })
                    }
                }
            })
        }
        .map_err(|e| {
            format!(
                "soak iteration {i} (profile={profile_name} devices={devices} seed={seed}): {e}"
            )
        })?;

        let inflation = if round.error.is_none() && round.clean_makespan_s > 0.0 {
            round.makespan_s / round.clean_makespan_s
        } else {
            1.0
        };
        worst_inflation = worst_inflation.max(inflation);
        interventions += u64::from(round.intervened);
        let mut event = sj_telemetry::Event::new("soak", "iteration")
            .u64("iteration", i)
            .str("profile", profile_name)
            .u64("devices", devices as u64)
            .str("pattern", format!("{pattern:?}"))
            .u64("seed", seed)
            .bool("intervened", round.intervened);
        match &round.error {
            Some(e) => {
                typed_errors += 1;
                event = event.bool("typed_error", true).str("error", e.clone());
                println!(
                    "  [{i:>3}] {profile_name:<11} devices={devices} {pattern:?}: \
                     typed error — {e}"
                );
            }
            None => {
                event = event
                    .bool("typed_error", false)
                    .u64("pairs", round.pairs as u64)
                    .f64("makespan_model_s", round.makespan_s)
                    .f64("clean_makespan_model_s", round.clean_makespan_s)
                    .f64("inflation", inflation);
                println!(
                    "  [{i:>3}] {profile_name:<11} devices={devices} {pattern:?}: exact \
                     ({} pairs), makespan {:.6} s ({inflation:.2}x clean){}",
                    round.pairs,
                    round.makespan_s,
                    if round.intervened { " [recovered]" } else { "" }
                );
            }
        }
        sink.record(event);
    }

    println!(
        "soak summary          : {iterations} iteration(s), {typed_errors} typed error(s), \
         {interventions} recovery intervention(s), worst makespan inflation {worst_inflation:.2}x"
    );
    println!("exact-result invariant: held on every completed iteration");
    if let Some(output) = parsed.optional("output") {
        sink.write_to_file(Path::new(output))
            .map_err(|e| e.to_string())?;
        println!(
            "wrote {} events ({}) to {output}",
            sink.len(),
            sj_telemetry::SCHEMA_VERSION
        );
    }
    Ok(())
}

fn serve(parsed: &Parsed) -> Result<(), String> {
    let eps = eps_flag(parsed)?;
    let points = load(parsed)?;
    let pattern = pattern_flag(parsed)?;
    let balancing = balancing_flag(parsed)?;
    let k: u32 = parsed.parse_or("k", 1)?;
    let exec_mode = exec_mode_flag(parsed)?;
    let mut config = SelfJoinConfig::new(eps)
        .with_pattern(pattern)
        .with_balancing(balancing)
        .with_k(k)
        .with_exec_mode(exec_mode);
    host_jobs_flag(parsed, &mut config)?;
    let queue_capacity: usize =
        parsed.parse_or("queue-capacity", simjoin::serve::DEFAULT_QUEUE_CAPACITY)?;
    if queue_capacity == 0 {
        return Err("--queue-capacity must be at least 1".into());
    }
    let rebuild_limit: f64 =
        parsed.parse_or("rebuild-limit", epsgrid::dynamic::DEFAULT_REBUILD_LIMIT)?;
    if rebuild_limit.is_nan() || rebuild_limit < 0.0 {
        return Err("--rebuild-limit must be non-negative".into());
    }
    let serve_cfg = simjoin::ServeConfig {
        queue_capacity,
        coalesce: !parsed.switch("no-coalesce"),
        rebuild_limit,
    };
    if parsed.optional("script").is_some() && parsed.optional("listen").is_some() {
        return Err("--script conflicts with --listen (pick one request source)".into());
    }

    let sink = JsonTelemetry::new(format!(
        "simjoin serve eps={eps} pattern={pattern:?} balancing={balancing:?} \
         exec={} queue-capacity={queue_capacity} coalesce={}",
        exec_mode.label(),
        serve_cfg.coalesce
    ));
    let report = if let Some(addr) = parsed.optional("listen") {
        // One connection at a time: the session is a state machine over one
        // dataset, so interleaving clients would interleave their epochs.
        let listener =
            std::net::TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        eprintln!("serve: listening on {addr} (one connection, EOF = shutdown)");
        let (stream, peer) = listener.accept().map_err(|e| e.to_string())?;
        eprintln!("serve: client {peer} connected");
        let reader = std::io::BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut writer = std::io::BufWriter::new(stream);
        let mut lines = std::io::BufRead::lines(reader);
        with_fixed(&points, |runner| {
            runner.serve(config.clone(), serve_cfg, &mut lines, &mut writer, &sink)
        })?
    } else if let Some(script) = parsed.optional("script") {
        let text = std::fs::read_to_string(script).map_err(|e| format!("reading {script}: {e}"))?;
        let mut stdout = std::io::stdout();
        let mut lines = text.lines().map(|l| Ok(l.to_string()));
        with_fixed(&points, |runner| {
            runner.serve(config.clone(), serve_cfg, &mut lines, &mut stdout, &sink)
        })?
    } else {
        let stdin = std::io::stdin();
        let mut stdout = std::io::stdout();
        let mut lines = std::io::BufRead::lines(stdin.lock());
        with_fixed(&points, |runner| {
            runner.serve(config.clone(), serve_cfg, &mut lines, &mut stdout, &sink)
        })?
    };

    eprintln!(
        "serve summary         : {} request(s) — {} query(ies), {} join(s), \
         {} insert(s), {} remove(s)",
        report.requests, report.queries, report.joins, report.inserts, report.removes
    );
    eprintln!(
        "admission             : {} rejected (queue full), {} error(s)",
        report.rejected, report.errors
    );
    eprintln!(
        "launches              : {} ({} coalesced request(s), {} cache hit(s)), \
         {:.6} model s total",
        report.launches, report.coalesced_requests, report.cache_hits, report.execute_model_s
    );
    eprintln!(
        "reindexing            : {} incremental, {} rebuild(s), {} cell(s) requantified",
        report.incremental_reindexes, report.full_rebuilds, report.requantified_cells
    );
    eprintln!(
        "latency (model)       : total p50 {:.6} s / p99 {:.6} s, queue p50 {:.6} s, \
         execute p50 {:.6} s",
        report.total_p50_s, report.total_p99_s, report.queue_p50_s, report.execute_p50_s
    );
    let output = parsed.optional("output").unwrap_or("serve_telemetry.json");
    sink.write_to_file(Path::new(output))
        .map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} events ({}) to {output}",
        sink.len(),
        sj_telemetry::SCHEMA_VERSION
    );
    Ok(())
}

fn stats(parsed: &Parsed) -> Result<(), String> {
    let eps = eps_flag(parsed)?;
    let points = load(parsed)?;
    let (mean_candidates, cells, cv) = with_fixed(&points, |runner| runner.stats(eps))?;
    println!("points               : {}", points.len());
    println!("dims                 : {}", points.dims());
    println!("non-empty cells      : {cells}");
    println!("mean candidates/query: {mean_candidates:.1}");
    println!("workload CV          : {cv:.3} (σ/μ of per-point candidate counts)");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn help_is_ok() {
        assert!(dispatch(&argv(&["--help"])).is_ok());
        assert!(dispatch(&argv(&[])).is_ok());
    }

    #[test]
    fn datasets_lists() {
        assert!(dispatch(&argv(&["datasets"])).is_ok());
    }

    #[test]
    fn generate_join_stats_roundtrip() {
        let dir = std::env::temp_dir().join(format!("simjoin-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("pts.csv");
        let pairs = dir.join("pairs.csv");
        let data_s = data.to_str().unwrap().to_string();
        let pairs_s = pairs.to_str().unwrap().to_string();

        dispatch(&argv(&[
            "generate",
            "--dataset",
            "Expo2D2M",
            "--n",
            "600",
            "--output",
            &data_s,
        ]))
        .unwrap();
        dispatch(&argv(&[
            "join", "--input", &data_s, "--eps", "0.5", "--k", "auto", "--verify", "--output",
            &pairs_s,
        ]))
        .unwrap();
        dispatch(&argv(&["stats", "--input", &data_s, "--eps", "0.5"])).unwrap();

        let written = std::fs::read_to_string(&pairs).unwrap();
        assert!(written.lines().count() > 0);
        assert!(written.lines().all(|l| l.split(',').count() == 2));

        let telemetry = dir.join("telemetry.json");
        let telemetry_s = telemetry.to_str().unwrap().to_string();
        dispatch(&argv(&[
            "profile",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--output",
            &telemetry_s,
        ]))
        .unwrap();
        let doc = std::fs::read_to_string(&telemetry).unwrap();
        assert!(doc.contains(sj_telemetry::SCHEMA_VERSION));
        assert!(doc.contains("\"scope\": \"warpsim.launch\""));
        assert!(doc.contains("\"scope\": \"executor.phase\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_accepts_any_seed_and_verifies_or_reports_typed_errors() {
        let dir = std::env::temp_dir().join(format!("simjoin-chaos-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("pts.csv");
        let data_s = data.to_str().unwrap().to_string();
        dispatch(&argv(&[
            "generate",
            "--dataset",
            "Expo2D2M",
            "--n",
            "400",
            "--output",
            &data_s,
        ]))
        .unwrap();
        // Any outcome must be exact-or-typed-error: dispatch() only fails on
        // a wrong pair set (or bad flags).
        for profile in warpsim::FaultProfile::names() {
            for seed in ["0", "1", "2"] {
                dispatch(&argv(&[
                    "chaos",
                    "--input",
                    &data_s,
                    "--eps",
                    "0.5",
                    "--fault-profile",
                    profile,
                    "--seed",
                    seed,
                ]))
                .unwrap_or_else(|e| panic!("profile {profile} seed {seed}: {e}"));
            }
        }
        let telemetry = dir.join("chaos.json");
        let telemetry_s = telemetry.to_str().unwrap().to_string();
        dispatch(&argv(&[
            "chaos",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--fault-profile",
            "stall",
            "--seed",
            "7",
            "--output",
            &telemetry_s,
        ]))
        .unwrap();
        assert!(std::fs::read_to_string(&telemetry)
            .unwrap()
            .contains(sj_telemetry::SCHEMA_VERSION));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_rejects_unknown_profile() {
        let p = argv(&[
            "chaos",
            "--input",
            "nonexistent.csv",
            "--eps",
            "0.5",
            "--fault-profile",
            "gremlins",
        ]);
        assert!(dispatch(&p).is_err());
    }

    #[test]
    fn join_shards_across_devices_and_stays_exact() {
        let dir = std::env::temp_dir().join(format!("simjoin-fleet-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("pts.csv");
        let data_s = data.to_str().unwrap().to_string();
        dispatch(&argv(&[
            "generate",
            "--dataset",
            "Expo2D2M",
            "--n",
            "500",
            "--output",
            &data_s,
        ]))
        .unwrap();
        // --verify checks the merged pair set against SUPER-EGO on every
        // device count and both partitioning strategies.
        for devices in ["1", "2", "4"] {
            for strategy in ["workload", "count"] {
                dispatch(&argv(&[
                    "join",
                    "--input",
                    &data_s,
                    "--eps",
                    "0.5",
                    "--balancing",
                    "queue",
                    "--devices",
                    devices,
                    "--shard-strategy",
                    strategy,
                    "--verify",
                ]))
                .unwrap_or_else(|e| panic!("devices={devices} strategy={strategy}: {e}"));
            }
        }
        assert!(dispatch(&argv(&[
            "join",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--devices",
            "0",
        ]))
        .is_err());
        assert!(dispatch(&argv(&[
            "join",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--devices",
            "2",
            "--shard-strategy",
            "bogus",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_fleet_mode_recovers_and_verifies() {
        let dir =
            std::env::temp_dir().join(format!("simjoin-chaos-fleet-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("pts.csv");
        let data_s = data.to_str().unwrap().to_string();
        dispatch(&argv(&[
            "generate",
            "--dataset",
            "Expo2D2M",
            "--n",
            "400",
            "--output",
            &data_s,
        ]))
        .unwrap();
        // Fleet chaos: every completed outcome is verified against
        // SUPER-EGO inside dispatch(); both recovery modes must hold it.
        for recovery in ["reshard", "degrade"] {
            for seed in ["0", "3"] {
                dispatch(&argv(&[
                    "chaos",
                    "--input",
                    &data_s,
                    "--eps",
                    "0.5",
                    "--devices",
                    "3",
                    "--fault-profile",
                    "device-lost",
                    "--recovery",
                    recovery,
                    "--seed",
                    seed,
                ]))
                .unwrap_or_else(|e| panic!("recovery {recovery} seed {seed}: {e}"));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn join_exec_modes_are_exact_and_validated() {
        let dir = std::env::temp_dir().join(format!("simjoin-hybrid-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("pts.csv");
        let data_s = data.to_str().unwrap().to_string();
        dispatch(&argv(&[
            "generate",
            "--dataset",
            "Expo2D2M",
            "--n",
            "400",
            "--output",
            &data_s,
        ]))
        .unwrap();
        // Every exec mode must pass --verify against SUPER-EGO, including a
        // forced split and a parallel CPU pool.
        for mode in ["gpu", "cpu", "hybrid"] {
            dispatch(&argv(&[
                "join",
                "--input",
                &data_s,
                "--eps",
                "0.5",
                "--exec-mode",
                mode,
                "--jobs",
                "2",
                "--verify",
            ]))
            .unwrap_or_else(|e| panic!("exec mode {mode}: {e}"));
        }
        dispatch(&argv(&[
            "join",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--exec-mode",
            "hybrid",
            "--cpu-fraction",
            "0.5",
            "--verify",
        ]))
        .unwrap();
        // Chaos replays go through the co-executor too; exactness (or a
        // typed error) is checked inside dispatch().
        dispatch(&argv(&[
            "chaos",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--exec-mode",
            "hybrid",
            "--fault-profile",
            "device-lost",
            "--seed",
            "3",
        ]))
        .unwrap();
        // Flag validation.
        let bad_mode = argv(&[
            "join",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--exec-mode",
            "tpu",
        ]);
        assert!(dispatch(&bad_mode).is_err());
        let fleet_conflict = argv(&[
            "join",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--exec-mode",
            "hybrid",
            "--devices",
            "2",
        ]);
        assert!(dispatch(&fleet_conflict).is_err());
        let bad_fraction = argv(&[
            "join",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--exec-mode",
            "hybrid",
            "--cpu-fraction",
            "1.5",
        ]);
        assert!(dispatch(&bad_fraction).is_err());
        let cpu_fraction_conflict = argv(&[
            "join",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--exec-mode",
            "cpu",
            "--cpu-fraction",
            "0.5",
        ]);
        assert!(dispatch(&cpu_fraction_conflict).is_err());
        let zero_jobs = argv(&[
            "join",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--exec-mode",
            "hybrid",
            "--jobs",
            "0",
        ]);
        assert!(dispatch(&zero_jobs).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn soak_hybrid_iteration_holds_the_exactness_invariant() {
        dispatch(&argv(&[
            "soak",
            "--iterations",
            "2",
            "--quick",
            "--exec-mode",
            "hybrid",
        ]))
        .unwrap();
        assert!(dispatch(&argv(&["soak", "--iterations", "1", "--exec-mode", "cpu"])).is_err());
    }

    #[test]
    fn recovery_flag_is_validated() {
        let p = Parsed::parse(&argv(&["--recovery", "reshard"])).unwrap();
        assert!(recovery_flag(&p).unwrap().reshard_enabled());
        let p = Parsed::parse(&argv(&["--recovery", "degrade"])).unwrap();
        assert!(!recovery_flag(&p).unwrap().reshard_enabled());
        let p = Parsed::parse(&argv(&["--recovery", "bogus"])).unwrap();
        assert!(recovery_flag(&p).unwrap_err().contains("reshard|degrade"));
        // Through the join command, mirroring the --shard-strategy error.
        assert!(dispatch(&argv(&[
            "join",
            "--input",
            "nonexistent.csv",
            "--eps",
            "0.5",
            "--recovery",
            "bogus",
        ]))
        .is_err());
    }

    #[test]
    fn soak_runs_green_and_writes_strict_telemetry() {
        let dir = std::env::temp_dir().join(format!("simjoin-soak-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let telemetry = dir.join("soak.json");
        let telemetry_s = telemetry.to_str().unwrap().to_string();
        dispatch(&argv(&[
            "soak",
            "--iterations",
            "6",
            "--quick",
            "--output",
            &telemetry_s,
        ]))
        .unwrap();
        let doc = std::fs::read_to_string(&telemetry).unwrap();
        assert!(doc.contains(sj_telemetry::SCHEMA_VERSION));
        assert!(doc.contains("\"scope\": \"soak\""));
        assert!(doc.contains("\"name\": \"iteration\""));
        // Unknown iteration counts / datasets are flag errors.
        assert!(dispatch(&argv(&["soak", "--iterations", "0"])).is_err());
        assert!(dispatch(&argv(&["soak", "--dataset", "bogus"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_runs_a_scripted_session_and_writes_telemetry() {
        let dir = std::env::temp_dir().join(format!("simjoin-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("pts.csv");
        let data_s = data.to_str().unwrap().to_string();
        dispatch(&argv(&[
            "generate",
            "--dataset",
            "Expo2D2M",
            "--n",
            "300",
            "--output",
            &data_s,
        ]))
        .unwrap();
        let script = dir.join("session.jsonl");
        let script_s = script.to_str().unwrap().to_string();
        std::fs::write(
            &script,
            "{\"op\": \"query\", \"point_id\": 0, \"eps\": 0.5}\n\
             {\"op\": \"query\", \"point_id\": 1, \"eps\": 0.5}\n\
             {\"op\": \"insert\", \"point\": [0.1, 0.1]}\n\
             {\"op\": \"remove\", \"point_id\": 5}\n\
             {\"op\": \"join\", \"eps\": 0.5}\n\
             {\"op\": \"stats\"}\n\
             {\"op\": \"shutdown\"}\n",
        )
        .unwrap();
        let telemetry = dir.join("serve.json");
        let telemetry_s = telemetry.to_str().unwrap().to_string();
        dispatch(&argv(&[
            "serve",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--script",
            &script_s,
            "--output",
            &telemetry_s,
        ]))
        .unwrap();
        let doc = std::fs::read_to_string(&telemetry).unwrap();
        assert!(doc.contains(sj_telemetry::SCHEMA_VERSION));
        assert!(doc.contains("\"scope\": \"serve\""));
        assert!(doc.contains("\"name\": \"reindex\""));
        assert!(doc.contains("\"name\": \"coalesce\""));
        // The serial baseline accepts the same script.
        dispatch(&argv(&[
            "serve",
            "--input",
            &data_s,
            "--eps",
            "0.5",
            "--script",
            &script_s,
            "--no-coalesce",
            "--output",
            &telemetry_s,
        ]))
        .unwrap();
        // Flag validation at the serve boundary.
        for bad in [
            vec!["serve", "--input", &data_s, "--eps", "nan"],
            vec!["serve", "--input", &data_s, "--eps", "-0.5"],
            vec![
                "serve",
                "--input",
                &data_s,
                "--eps",
                "0.5",
                "--queue-capacity",
                "0",
            ],
            vec![
                "serve",
                "--input",
                &data_s,
                "--eps",
                "0.5",
                "--rebuild-limit",
                "-1",
            ],
            vec![
                "serve",
                "--input",
                &data_s,
                "--eps",
                "0.5",
                "--script",
                &script_s,
                "--listen",
                "127.0.0.1:0",
            ],
        ] {
            assert!(dispatch(&argv(&bad)).is_err(), "{bad:?} should fail");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn epsilon_is_validated_uniformly_across_commands() {
        // No command should get as far as touching the dataset with a bad ε
        // — the unified check fires first, with the same message everywhere.
        for cmd in ["join", "stats", "profile", "chaos", "serve"] {
            for bad_eps in ["nan", "inf", "0", "-1"] {
                let err = dispatch(&argv(&[
                    cmd,
                    "--input",
                    "nonexistent.csv",
                    "--eps",
                    bad_eps,
                ]))
                .unwrap_err();
                assert!(
                    err.contains("flag --eps is invalid"),
                    "{cmd} --eps {bad_eps}: {err}"
                );
                assert!(
                    err.contains("finite, strictly positive"),
                    "{cmd} --eps {bad_eps}: {err}"
                );
            }
        }
        let err = dispatch(&argv(&["soak", "--eps", "-1"])).unwrap_err();
        assert!(err.contains("flag --eps is invalid"));
    }

    #[test]
    fn bad_pattern_is_reported() {
        let p = Parsed::parse(&argv(&["--pattern", "bogus"])).unwrap();
        assert!(pattern_flag(&p).is_err());
        let p = Parsed::parse(&argv(&["--balancing", "bogus"])).unwrap();
        assert!(balancing_flag(&p).is_err());
    }
}
