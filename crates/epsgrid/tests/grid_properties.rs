//! Property-based tests for the ε-grid index.

use epsgrid::{within_epsilon, GridIndex, GridShape, NeighborWindow, Point};
use proptest::prelude::*;

fn arb_points_2d(max_len: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec(prop::array::uniform2(-100.0f32..100.0f32), 1..max_len)
}

fn arb_points_4d(max_len: usize) -> impl Strategy<Value = Vec<Point<4>>> {
    prop::collection::vec(prop::array::uniform4(-10.0f32..10.0f32), 1..max_len)
}

proptest! {
    /// Every in-ε pair must be reachable via the 3^n neighbor window —
    /// the correctness invariant the whole search-and-refine scheme rests on.
    #[test]
    fn grid_window_is_complete_2d(pts in arb_points_2d(60), eps in 0.01f32..50.0) {
        let grid = GridIndex::build(&pts, eps).unwrap();
        for (i, a) in pts.iter().enumerate() {
            let mut found = vec![false; pts.len()];
            grid.for_each_candidate_of(i, |cand| found[cand] = true);
            for (j, b) in pts.iter().enumerate() {
                if within_epsilon(a, b, eps) {
                    prop_assert!(found[j], "in-eps pair ({},{}) not in candidate window", i, j);
                }
            }
        }
    }

    #[test]
    fn grid_window_is_complete_4d(pts in arb_points_4d(40), eps in 0.1f32..20.0) {
        let grid = GridIndex::build(&pts, eps).unwrap();
        for (i, a) in pts.iter().enumerate() {
            let mut found = vec![false; pts.len()];
            grid.for_each_candidate_of(i, |cand| found[cand] = true);
            for (j, b) in pts.iter().enumerate() {
                if within_epsilon(a, b, eps) {
                    prop_assert!(found[j]);
                }
            }
        }
    }

    /// The index is a partition: every point appears in exactly one cell.
    #[test]
    fn cells_partition_points(pts in arb_points_2d(200), eps in 0.01f32..50.0) {
        let grid = GridIndex::build(&pts, eps).unwrap();
        let mut seen = vec![0u32; pts.len()];
        for ci in 0..grid.num_cells() {
            for &pid in grid.cell_points(ci) {
                seen[pid as usize] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// `home_cell_of` is consistent with cell membership and geometry.
    #[test]
    fn home_cell_consistent(pts in arb_points_2d(100), eps in 0.01f32..50.0) {
        let grid = GridIndex::build(&pts, eps).unwrap();
        for (i, p) in pts.iter().enumerate() {
            let home = grid.home_cell_of(i);
            prop_assert!(grid.cell_points(home).contains(&(i as u32)));
            let geom = grid.shape().linear_id(&grid.shape().cell_of(p));
            prop_assert_eq!(grid.cells()[home].linear_id, geom);
        }
    }

    /// Linear id ↔ coordinates roundtrips for every representable cell.
    #[test]
    fn linear_id_roundtrip(
        dims in prop::array::uniform3(1u32..40),
        coords in prop::array::uniform3(0u32..40),
    ) {
        let shape = GridShape::<3> { origin: [0.0; 3], cell_len: 1.0, cells_per_dim: dims };
        let c = [coords[0] % dims[0], coords[1] % dims[1], coords[2] % dims[2]];
        let id = shape.linear_id(&c);
        prop_assert_eq!(shape.coords_of(id), c);
        prop_assert!(id < shape.total_cells());
    }

    /// Neighbor windows always contain the origin and at most 3^n cells,
    /// and iteration yields strictly increasing linear ids.
    #[test]
    fn neighbor_window_invariants(
        dims in prop::array::uniform2(1u32..20),
        coords in prop::array::uniform2(0u32..20),
    ) {
        let shape = GridShape::<2> { origin: [0.0; 2], cell_len: 1.0, cells_per_dim: dims };
        let origin = [coords[0] % dims[0], coords[1] % dims[1]];
        let w = NeighborWindow::around(&shape, &origin);
        prop_assert!(w.contains(&origin));
        prop_assert!(w.len() <= 9);
        let ids: Vec<_> = w.iter(&shape).map(|(_, id)| id).collect();
        prop_assert_eq!(ids.len(), w.len());
        for pair in ids.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
    }
}
