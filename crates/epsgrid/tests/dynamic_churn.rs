//! Churn property tests for the incrementally maintained ε-grid.
//!
//! Random interleavings of insert / remove / query against [`DynamicGrid`]
//! must keep the maintained index **bit-identical** to a from-scratch
//! [`GridIndex::build`] over the current point set — same cells, same point
//! ordering, same filtered ranges, same per-cell workload quantification —
//! and the ε-pair set read through the index must equal the brute-force
//! oracle at every query.

use epsgrid::{within_epsilon, DynamicGrid, GridIndex, Point};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert([f32; 2]),
    Remove(u64),
    Query,
}

/// The vendored proptest has no `prop_map`, so ops are generated as raw
/// `(kind, point, selector)` tuples and decoded here. The kind skew favors
/// inserts; insert coordinates mostly fall inside the seed's [-50, 50] box
/// (incremental path) with an outside band forcing geometry rebuilds.
fn decode_op((kind, p, sel): (u8, [f32; 2], u64)) -> Op {
    match kind % 6 {
        0..=2 => Op::Insert(p),
        3 | 4 => Op::Remove(sel),
        _ => Op::Query,
    }
}

fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<(u8, [f32; 2], u64)>> {
    prop::collection::vec(
        (
            0u8..=u8::MAX,
            prop::array::uniform2(-60.0f32..60.0),
            0u64..u64::MAX,
        ),
        1..max_len,
    )
}

fn arb_seed_points(max_len: usize) -> impl Strategy<Value = Vec<Point<2>>> {
    prop::collection::vec(prop::array::uniform2(-50.0f32..50.0), 2..max_len)
}

fn fresh_workload(index: &GridIndex<2>) -> Vec<u64> {
    (0..index.num_cells())
        .map(|ci| index.window_candidate_count(ci))
        .collect()
}

fn grid_pairs(dg: &DynamicGrid<2>) -> Vec<(usize, usize)> {
    let pts = dg.points();
    let eps = dg.epsilon();
    let mut pairs = vec![];
    for i in 0..pts.len() {
        dg.index().for_each_candidate_of(i, |j| {
            if i < j && within_epsilon(&pts[i], &pts[j], eps) {
                pairs.push((i, j));
            }
        });
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

fn oracle_pairs(pts: &[Point<2>], eps: f32) -> Vec<(usize, usize)> {
    let mut pairs = vec![];
    for i in 0..pts.len() {
        for j in i + 1..pts.len() {
            if within_epsilon(&pts[i], &pts[j], eps) {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

fn run_churn(
    seed: Vec<Point<2>>,
    eps: f32,
    ops: Vec<(u8, [f32; 2], u64)>,
    rebuild_limit: f64,
) -> Result<(), TestCaseError> {
    let mut dg = DynamicGrid::new(seed, eps)
        .unwrap()
        .with_rebuild_limit(rebuild_limit);
    for op in ops {
        match decode_op(op) {
            Op::Insert(p) => {
                let id = dg.insert(p).unwrap();
                prop_assert_eq!(id as usize, dg.len() - 1);
            }
            Op::Remove(sel) => {
                if dg.len() > 1 {
                    let pid = (sel % dg.len() as u64) as u32;
                    dg.remove(pid).unwrap();
                }
            }
            Op::Query => {
                prop_assert_eq!(grid_pairs(&dg), oracle_pairs(dg.points(), eps));
            }
        }
        // Bit-identity with a from-scratch build after *every* mutation, not
        // just at the end: intermediate corruption must not be masked by a
        // later escape-hatch rebuild.
        let fresh = GridIndex::build(dg.points(), eps).unwrap();
        prop_assert_eq!(dg.index(), &fresh);
        let expected = fresh_workload(&fresh);
        prop_assert_eq!(dg.per_cell_workload(), expected.as_slice());
    }
    prop_assert_eq!(grid_pairs(&dg), oracle_pairs(dg.points(), eps));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The maintained index stays bit-identical to `GridIndex::build` and
    /// the oracle pair set under arbitrary churn.
    #[test]
    fn churn_preserves_bit_identity(
        seed in arb_seed_points(30),
        eps in 0.5f32..40.0,
        ops in arb_ops(40),
    ) {
        run_churn(seed, eps, ops, epsgrid::dynamic::DEFAULT_REBUILD_LIMIT)?;
    }

    /// Same property with the escape hatch disabled (an enormous limit), so
    /// long incremental runs cannot hide behind threshold rebuilds.
    #[test]
    fn churn_without_escape_hatch_stays_identical(
        seed in arb_seed_points(20),
        eps in 0.5f32..40.0,
        ops in arb_ops(30),
    ) {
        run_churn(seed, eps, ops, f64::INFINITY)?;
    }
}

/// Deterministic long-run churn mixing every mutation class, kept out of
/// proptest so a regression bisects to a stable failure.
#[test]
fn scripted_churn_sequence_stays_identical() {
    let seed: Vec<Point<2>> = (0..24)
        .map(|i| [(i % 6) as f32 * 0.7, (i / 6) as f32 * 0.9])
        .collect();
    let eps = 1.1;
    let mut dg = DynamicGrid::new(seed, eps).unwrap();
    for step in 0..60u32 {
        match step % 4 {
            0 => {
                let t = step as f32 * 0.13;
                dg.insert([t % 3.4, (t * 1.7) % 3.5]).unwrap();
            }
            1 => {
                let pid = (step * 7) % dg.len() as u32;
                dg.remove(pid).unwrap();
            }
            2 => {
                // An out-of-bounds insert: geometry change, rebuild path.
                dg.insert([4.0 + step as f32 * 0.01, -1.0]).unwrap();
            }
            _ => {
                assert_eq!(grid_pairs(&dg), oracle_pairs(dg.points(), eps));
            }
        }
        let fresh = GridIndex::build(dg.points(), eps).unwrap();
        assert_eq!(dg.index(), &fresh, "diverged at step {step}");
        assert_eq!(dg.per_cell_workload(), fresh_workload(&fresh).as_slice());
    }
    let stats = dg.stats();
    assert!(stats.incremental_inserts > 0);
    assert!(stats.incremental_removes > 0);
    assert!(stats.full_rebuilds > 0);
}
