//! Euclidean distance predicates.
//!
//! The self-join's *refine* step compares squared distances against ε² to
//! avoid a square root per candidate — the same trick the GPU kernels use.

use crate::point::Point;

/// Squared Euclidean distance between two points.
#[inline]
pub fn euclidean_dist_sq<const N: usize>(a: &Point<N>, b: &Point<N>) -> f32 {
    let mut acc = 0.0f32;
    for d in 0..N {
        let diff = a[d] - b[d];
        acc += diff * diff;
    }
    acc
}

/// Euclidean distance between two points.
#[inline]
pub fn euclidean_dist<const N: usize>(a: &Point<N>, b: &Point<N>) -> f32 {
    euclidean_dist_sq(a, b).sqrt()
}

/// Whether `b` lies within Euclidean distance `epsilon` of `a` (inclusive),
/// matching the paper's predicate `dist(p, q) <= ε`.
#[inline]
pub fn within_epsilon<const N: usize>(a: &Point<N>, b: &Point<N>, epsilon: f32) -> bool {
    euclidean_dist_sq(a, b) <= epsilon * epsilon
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_hand_computation() {
        let a = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        assert_eq!(euclidean_dist_sq(&a, &b), 25.0);
        assert_eq!(euclidean_dist(&a, &b), 5.0);
    }

    #[test]
    fn predicate_is_inclusive() {
        let a = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        assert!(within_epsilon(&a, &b, 5.0));
        assert!(!within_epsilon(&a, &b, 4.999));
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [1.0f32, -2.0, 0.5];
        let b = [0.25f32, 7.0, -3.0];
        assert_eq!(euclidean_dist_sq(&a, &b), euclidean_dist_sq(&b, &a));
    }

    #[test]
    fn zero_distance_to_self() {
        let a = [1.5f32, 2.5, 3.5, 4.5];
        assert_eq!(euclidean_dist_sq(&a, &a), 0.0);
        assert!(within_epsilon(&a, &a, 0.0));
    }
}
