//! # epsgrid — ε-grid spatial index for distance similarity self-joins
//!
//! This crate implements the grid index of Gowanlock & Karsin used by GPU
//! self-join kernels: the space is partitioned into cells of side length ε in
//! every dimension, and **only non-empty cells are materialized**, giving an
//! `O(|D|)` memory footprint regardless of how sparse the data is.
//!
//! A range query around a query point `q` with radius ε only needs to examine
//! the `3^n` cells adjacent to (and including) `q`'s home cell, because any
//! point within ε of `q` must fall in that window.
//!
//! The index layout mirrors the arrays used on the GPU:
//! - `cell_ids` (the paper's `B` array): sorted linear ids of non-empty cells,
//! - `cell_ranges` (the paper's `A` array): for each non-empty cell, the range
//!   of entries in `point_ids` belonging to it,
//! - `point_ids`: dataset indices grouped by cell.
//!
//! ```
//! use epsgrid::{GridIndex, euclidean_dist};
//!
//! let pts: Vec<[f32; 2]> = vec![[0.0, 0.0], [0.05, 0.02], [0.9, 0.9]];
//! let grid = GridIndex::build(&pts, 0.1).unwrap();
//! let mut neighbors = vec![];
//! grid.for_each_candidate_of(0, |cand| {
//!     if cand != 0 && euclidean_dist(&pts[0], &pts[cand]) <= 0.1 {
//!         neighbors.push(cand);
//!     }
//! });
//! assert_eq!(neighbors, vec![1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod cell;
pub mod distance;
pub mod dynamic;
pub mod grid;
pub mod neighbors;
pub mod point;

pub use bounds::Aabb;
pub use cell::{CellCoords, GridShape, LinearCellId, ShapeError, MAX_TOTAL_CELLS};
pub use distance::{euclidean_dist, euclidean_dist_sq, within_epsilon};
pub use dynamic::{ChurnError, DynamicGrid, MaintenanceStats};
pub use grid::{GridBuildError, GridIndex, NonEmptyCell};
pub use neighbors::{NeighborCellIter, NeighborWindow};
pub use point::{DynPoints, Point};
