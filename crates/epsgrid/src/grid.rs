//! The ε-grid index over non-empty cells.
//!
//! Mirrors the GPU index of Gowanlock & Karsin: only cells containing at
//! least one point are stored, as a list sorted by linear cell id (the
//! paper's `B` array) with per-cell ranges into a point-id array (the
//! paper's `A` array). Membership queries for a neighbor cell are binary
//! searches over the sorted id list — exactly the lookup the GPU kernels
//! perform.

use std::ops::Range;

use crate::bounds::Aabb;
use crate::cell::{CellCoords, GridShape, LinearCellId, ShapeError};
use crate::neighbors::NeighborWindow;
use crate::point::Point;

/// A non-empty grid cell: its linear id plus the range of `point_ids`
/// entries holding the dataset indices of the points it contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonEmptyCell {
    /// Row-major linear id of the cell.
    pub linear_id: LinearCellId,
    /// Range into [`GridIndex::point_ids`].
    pub range: Range<u32>,
}

impl NonEmptyCell {
    /// Number of points in the cell.
    pub fn len(&self) -> usize {
        (self.range.end - self.range.start) as usize
    }

    /// Whether the cell is empty (never true for cells stored in an index).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// Errors when building a [`GridIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridBuildError {
    /// The dataset is empty.
    EmptyDataset,
    /// The dataset contains NaN or infinite coordinates.
    NonFiniteCoordinates,
    /// The grid geometry is invalid (bad ε or overflowing resolution).
    Shape(ShapeError),
}

impl std::fmt::Display for GridBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridBuildError::EmptyDataset => write!(f, "cannot index an empty dataset"),
            GridBuildError::NonFiniteCoordinates => {
                write!(f, "dataset contains non-finite coordinates")
            }
            GridBuildError::Shape(e) => write!(f, "invalid grid geometry: {e}"),
        }
    }
}

impl std::error::Error for GridBuildError {}

impl From<ShapeError> for GridBuildError {
    fn from(e: ShapeError) -> Self {
        GridBuildError::Shape(e)
    }
}

/// The ε-grid index: non-empty cells of an ε-side grid over the dataset.
///
/// Space complexity is `O(|D|)` — independent of the conceptual grid
/// resolution — because empty cells are never materialized.
/// Equality is field-wise and therefore layout-sensitive: two indexes are
/// equal only when their cell lists, point orderings and filtered ranges are
/// bit-identical — exactly the property the incremental maintainer
/// ([`crate::DynamicGrid`]) is tested against.
#[derive(Debug, Clone, PartialEq)]
pub struct GridIndex<const N: usize> {
    pub(crate) shape: GridShape<N>,
    pub(crate) epsilon: f32,
    /// Non-empty cells sorted by ascending `linear_id` (paper's `B` + `A`).
    pub(crate) cells: Vec<NonEmptyCell>,
    /// Dataset point indices grouped by cell.
    pub(crate) point_ids: Vec<u32>,
    /// For each dataset point, the index into `cells` of its home cell.
    pub(crate) home_cell: Vec<u32>,
    /// Per-dimension min/max coordinate of non-empty cells
    /// (the paper's `filteredRanges`).
    pub(crate) filtered_ranges: [Range<u32>; N],
}

impl<const N: usize> GridIndex<N> {
    /// Builds the index over `points` with grid cell length `epsilon`.
    pub fn build(points: &[Point<N>], epsilon: f32) -> Result<Self, GridBuildError> {
        if points.is_empty() {
            return Err(GridBuildError::EmptyDataset);
        }
        let bounds = Aabb::of_points(points).ok_or(GridBuildError::NonFiniteCoordinates)?;
        let shape = GridShape::covering(&bounds, epsilon)?;

        // Pair each point with its home cell id, then group by sorting.
        let mut keyed: Vec<(LinearCellId, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (shape.linear_id(&shape.cell_of(p)), i as u32))
            .collect();
        keyed.sort_unstable();

        let mut cells: Vec<NonEmptyCell> = Vec::new();
        let mut point_ids: Vec<u32> = Vec::with_capacity(points.len());
        let mut home_cell: Vec<u32> = vec![0; points.len()];
        for (cell_id, point_id) in keyed {
            match cells.last_mut() {
                Some(cell) if cell.linear_id == cell_id => cell.range.end += 1,
                _ => {
                    let start = point_ids.len() as u32;
                    cells.push(NonEmptyCell {
                        linear_id: cell_id,
                        range: start..start + 1,
                    });
                }
            }
            home_cell[point_id as usize] = (cells.len() - 1) as u32;
            point_ids.push(point_id);
        }

        // Fold identity: any occupied coordinate shrinks/grows it into a
        // valid range on the first iteration.
        #[allow(clippy::reversed_empty_ranges)]
        let mut filtered_ranges = std::array::from_fn(|_| u32::MAX..0u32);
        for cell in &cells {
            let coords = shape.coords_of(cell.linear_id);
            for d in 0..N {
                let r: &mut Range<u32> = &mut filtered_ranges[d];
                r.start = r.start.min(coords[d]);
                r.end = r.end.max(coords[d] + 1);
            }
        }

        Ok(Self {
            shape,
            epsilon,
            cells,
            point_ids,
            home_cell,
            filtered_ranges,
        })
    }

    /// The grid geometry.
    pub fn shape(&self) -> &GridShape<N> {
        &self.shape
    }

    /// The ε the index was built with (equals the cell side length).
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Number of indexed (non-empty) cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of indexed points.
    pub fn num_points(&self) -> usize {
        self.home_cell.len()
    }

    /// The non-empty cells, sorted by ascending linear id.
    pub fn cells(&self) -> &[NonEmptyCell] {
        &self.cells
    }

    /// Per-dimension half-open coordinate range spanned by non-empty cells
    /// (the paper's `filteredRanges`).
    pub fn filtered_ranges(&self) -> &[Range<u32>; N] {
        &self.filtered_ranges
    }

    /// Binary-searches the non-empty cell list for `linear_id`
    /// (the kernels' `linearID ∈ B` test). Returns the cell's index.
    pub fn find_cell(&self, linear_id: LinearCellId) -> Option<usize> {
        self.cells
            .binary_search_by_key(&linear_id, |c| c.linear_id)
            .ok()
    }

    /// Dataset indices of the points in cell `cell_idx`.
    ///
    /// # Panics
    /// Panics if `cell_idx` is out of bounds.
    pub fn cell_points(&self, cell_idx: usize) -> &[u32] {
        let r = &self.cells[cell_idx].range;
        &self.point_ids[r.start as usize..r.end as usize]
    }

    /// Index (into [`Self::cells`]) of the home cell of dataset point `point_id`.
    ///
    /// # Panics
    /// Panics if `point_id` is out of bounds.
    pub fn home_cell_of(&self, point_id: usize) -> usize {
        self.home_cell[point_id] as usize
    }

    /// The neighbor window around cell `cell_idx`.
    pub fn window_around(&self, cell_idx: usize) -> NeighborWindow<N> {
        let coords = self.shape.coords_of(self.cells[cell_idx].linear_id);
        NeighborWindow::around(&self.shape, &coords)
    }

    /// Coordinates of a stored cell.
    pub fn cell_coords(&self, cell_idx: usize) -> CellCoords<N> {
        self.shape.coords_of(self.cells[cell_idx].linear_id)
    }

    /// Total number of candidate points in the `3^n` window around
    /// cell `cell_idx` — the workload quantification used by SORTBYWL
    /// (number of distance calculations each point of the cell performs).
    pub fn window_candidate_count(&self, cell_idx: usize) -> u64 {
        let window = self.window_around(cell_idx);
        let mut total = 0u64;
        for (_, id) in window.iter(&self.shape) {
            if let Some(ci) = self.find_cell(id) {
                total += self.cells[ci].len() as u64;
            }
        }
        total
    }

    /// Invokes `f` with every candidate point id in the neighbor window of
    /// `point_id`'s home cell (including `point_id` itself).
    pub fn for_each_candidate_of<F: FnMut(usize)>(&self, point_id: usize, mut f: F) {
        let home = self.home_cell_of(point_id);
        let window = self.window_around(home);
        for (_, id) in window.iter(&self.shape) {
            if let Some(ci) = self.find_cell(id) {
                for &cand in self.cell_points(ci) {
                    f(cand as usize);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::within_epsilon;

    fn sample_points() -> Vec<Point<2>> {
        vec![
            [0.05, 0.05],
            [0.07, 0.02],
            [0.95, 0.95],
            [0.50, 0.50],
            [0.52, 0.49],
            [0.49, 0.51],
        ]
    }

    #[test]
    fn build_groups_points_by_cell() {
        let pts = sample_points();
        let grid = GridIndex::build(&pts, 0.1).unwrap();
        assert_eq!(grid.num_points(), pts.len());
        let total: usize = grid.cells().iter().map(|c| c.len()).sum();
        assert_eq!(total, pts.len());
        // Points 0 and 1 share a cell.
        assert_eq!(grid.home_cell_of(0), grid.home_cell_of(1));
        // All points of a cell's range actually map back to that cell.
        for (ci, _cell) in grid.cells().iter().enumerate() {
            for &pid in grid.cell_points(ci) {
                assert_eq!(grid.home_cell_of(pid as usize), ci);
            }
        }
    }

    #[test]
    fn cells_sorted_by_linear_id() {
        let pts = sample_points();
        let grid = GridIndex::build(&pts, 0.1).unwrap();
        let ids: Vec<_> = grid.cells().iter().map(|c| c.linear_id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn find_cell_agrees_with_cell_list() {
        let pts = sample_points();
        let grid = GridIndex::build(&pts, 0.1).unwrap();
        for (ci, cell) in grid.cells().iter().enumerate() {
            assert_eq!(grid.find_cell(cell.linear_id), Some(ci));
        }
        // A cell id that is definitely absent.
        let absent = grid.shape().total_cells() + 1;
        assert_eq!(grid.find_cell(absent), None);
    }

    #[test]
    fn window_contains_all_epsilon_neighbors() {
        // Completeness: every in-ε pair must be discoverable via the window.
        let pts = sample_points();
        let eps = 0.1;
        let grid = GridIndex::build(&pts, eps).unwrap();
        for (i, a) in pts.iter().enumerate() {
            let mut found: Vec<usize> = vec![];
            grid.for_each_candidate_of(i, |cand| {
                if within_epsilon(a, &pts[cand], eps) {
                    found.push(cand);
                }
            });
            for (j, b) in pts.iter().enumerate() {
                if within_epsilon(a, b, eps) {
                    assert!(found.contains(&j), "pair ({i},{j}) missed by grid window");
                }
            }
        }
    }

    #[test]
    fn empty_dataset_rejected() {
        let pts: Vec<Point<2>> = vec![];
        assert!(matches!(
            GridIndex::build(&pts, 0.1),
            Err(GridBuildError::EmptyDataset)
        ));
    }

    #[test]
    fn nan_dataset_rejected() {
        let pts: Vec<Point<2>> = vec![[0.0, f32::NAN]];
        assert!(matches!(
            GridIndex::build(&pts, 0.1),
            Err(GridBuildError::NonFiniteCoordinates)
        ));
    }

    #[test]
    fn filtered_ranges_cover_all_cells() {
        let pts = sample_points();
        let grid = GridIndex::build(&pts, 0.1).unwrap();
        let fr = grid.filtered_ranges();
        for cell in grid.cells() {
            let coords = grid.shape().coords_of(cell.linear_id);
            for d in 0..2 {
                assert!(fr[d].contains(&coords[d]));
            }
        }
    }

    #[test]
    fn workload_counts_match_enumeration() {
        let pts = sample_points();
        let grid = GridIndex::build(&pts, 0.1).unwrap();
        for ci in 0..grid.num_cells() {
            let expected: u64 = {
                let window = grid.window_around(ci);
                let mut n = 0u64;
                for (_, id) in window.iter(grid.shape()) {
                    if let Some(c) = grid.find_cell(id) {
                        n += grid.cell_points(c).len() as u64;
                    }
                }
                n
            };
            assert_eq!(grid.window_candidate_count(ci), expected);
        }
    }

    #[test]
    fn single_point_dataset() {
        let pts: Vec<Point<3>> = vec![[1.0, 2.0, 3.0]];
        let grid = GridIndex::build(&pts, 0.5).unwrap();
        assert_eq!(grid.num_cells(), 1);
        assert_eq!(grid.cell_points(0), &[0]);
        assert_eq!(grid.window_candidate_count(0), 1);
    }

    #[test]
    fn duplicate_points_land_in_same_cell() {
        let pts: Vec<Point<2>> = vec![[0.5, 0.5]; 10];
        let grid = GridIndex::build(&pts, 0.25).unwrap();
        assert_eq!(grid.num_cells(), 1);
        assert_eq!(grid.cell_points(0).len(), 10);
    }
}
