//! Point representations.
//!
//! The core of the crate is generic over a compile-time dimensionality `N`
//! (the paper evaluates 2 ≤ n ≤ 6), with points stored as `[f32; N]` exactly
//! as they would live in GPU global memory. [`DynPoints`] provides a
//! dimension-erased container for harness code that sweeps dimensionality at
//! runtime.

/// A point in `N`-dimensional space, `f32` coordinates (GPU-native precision).
pub type Point<const N: usize> = [f32; N];

/// A dimension-erased, structure-of-arrays point container.
///
/// Coordinates are stored interleaved (`x0 y0 x1 y1 …` for 2-D); this is the
/// layout datasets are generated and serialized in before being viewed as
/// `[f32; N]` slices by the fixed-dimension code paths.
#[derive(Debug, Clone, PartialEq)]
pub struct DynPoints {
    dims: usize,
    coords: Vec<f32>,
}

impl DynPoints {
    /// Creates an empty container for `dims`-dimensional points.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dimensionality must be at least 1");
        Self {
            dims,
            coords: Vec::new(),
        }
    }

    /// Creates a container from interleaved coordinates.
    ///
    /// # Panics
    /// Panics if `coords.len()` is not a multiple of `dims` or `dims == 0`.
    pub fn from_interleaved(dims: usize, coords: Vec<f32>) -> Self {
        assert!(dims > 0, "dimensionality must be at least 1");
        assert_eq!(
            coords.len() % dims,
            0,
            "coordinate buffer length {} is not a multiple of dims {}",
            coords.len(),
            dims
        );
        Self { dims, coords }
    }

    /// The dimensionality of the stored points.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The number of points stored.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dims
    }

    /// Whether the container holds no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Appends a point given as a coordinate slice.
    ///
    /// # Panics
    /// Panics if `point.len() != self.dims()`.
    pub fn push(&mut self, point: &[f32]) {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        self.coords.extend_from_slice(point);
    }

    /// Returns the coordinates of point `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> &[f32] {
        let start = i * self.dims;
        &self.coords[start..start + self.dims]
    }

    /// The raw interleaved coordinate buffer.
    pub fn raw(&self) -> &[f32] {
        &self.coords
    }

    /// Consumes the container and returns the raw interleaved buffer.
    pub fn into_raw(self) -> Vec<f32> {
        self.coords
    }

    /// Reinterprets the container as a slice of fixed-dimension points.
    ///
    /// Returns `None` if `N != self.dims()`.
    pub fn as_fixed<const N: usize>(&self) -> Option<Vec<Point<N>>> {
        if N != self.dims {
            return None;
        }
        Some(
            self.coords
                .chunks_exact(N)
                .map(|c| {
                    let mut p = [0.0f32; N];
                    p.copy_from_slice(c);
                    p
                })
                .collect(),
        )
    }

    /// Iterates over points as coordinate slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> + '_ {
        self.coords.chunks_exact(self.dims)
    }
}

/// Converts a slice of fixed-dimension points into a [`DynPoints`] container.
pub fn to_dyn<const N: usize>(points: &[Point<N>]) -> DynPoints {
    let mut coords = Vec::with_capacity(points.len() * N);
    for p in points {
        coords.extend_from_slice(p);
    }
    DynPoints::from_interleaved(N, coords)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fixed_dyn() {
        let pts: Vec<Point<3>> = vec![[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        let dynp = to_dyn(&pts);
        assert_eq!(dynp.len(), 2);
        assert_eq!(dynp.dims(), 3);
        assert_eq!(dynp.get(1), &[4.0, 5.0, 6.0]);
        let back = dynp.as_fixed::<3>().unwrap();
        assert_eq!(back, pts);
    }

    #[test]
    fn as_fixed_rejects_wrong_dim() {
        let dynp = DynPoints::from_interleaved(2, vec![0.0; 8]);
        assert!(dynp.as_fixed::<3>().is_none());
        assert!(dynp.as_fixed::<2>().is_some());
    }

    #[test]
    fn push_and_iterate() {
        let mut dynp = DynPoints::new(2);
        assert!(dynp.is_empty());
        dynp.push(&[1.0, 2.0]);
        dynp.push(&[3.0, 4.0]);
        let pts: Vec<&[f32]> = dynp.iter().collect();
        assert_eq!(pts, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn push_wrong_dims_panics() {
        let mut dynp = DynPoints::new(2);
        dynp.push(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_interleaved_validates_length() {
        let _ = DynPoints::from_interleaved(3, vec![0.0; 7]);
    }
}
