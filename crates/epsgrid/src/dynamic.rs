//! Incrementally maintained ε-grid index for long-running services.
//!
//! [`GridIndex::build`] is a build-once structure: the one-shot pipeline
//! indexes, joins and exits. A serving deployment instead amortizes the index
//! across many requests while the dataset churns underneath it.
//! [`DynamicGrid`] wraps a [`GridIndex`] and maintains it under streaming
//! point inserts and removes:
//!
//! - every mutation patches the cell list / point-id layout **in place**, so
//!   the maintained index stays bit-identical (cells, point order, filtered
//!   ranges) to a fresh [`GridIndex::build`] over the current point set;
//! - mutations mark the touched cells **dirty**; the per-cell workload
//!   quantification (the SORTBYWL input) is re-derived lazily and only for
//!   dirty cells and their `3^n` neighbor windows;
//! - mutations that would change the grid geometry (a point outside the
//!   current bounding box, or removal of a hull point) and churn beyond a
//!   configurable dirt threshold fall back to a **full rebuild** escape
//!   hatch, which is always correct.
//!
//! Point ids are dataset positions. [`DynamicGrid::remove`] uses
//! `swap_remove` semantics: the last point takes over the removed point's id,
//! keeping ids dense so the index arrays never grow holes.

use std::collections::BTreeSet;

use crate::bounds::Aabb;
use crate::cell::LinearCellId;
use crate::grid::{GridBuildError, GridIndex, NonEmptyCell};
use crate::neighbors::NeighborWindow;
use crate::point::Point;

/// Fraction of non-empty cells that may be dirty before the next mutation
/// abandons incremental maintenance and rebuilds from scratch.
pub const DEFAULT_REBUILD_LIMIT: f64 = 0.25;

/// Errors from mutating a [`DynamicGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnError {
    /// The inserted point has a NaN or infinite coordinate.
    NonFinitePoint,
    /// The point id does not name a live point.
    UnknownPoint(u32),
    /// Removing the last remaining point would leave nothing to index.
    WouldEmptyDataset,
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::NonFinitePoint => {
                write!(f, "inserted point has non-finite coordinates")
            }
            ChurnError::UnknownPoint(id) => write!(f, "point id {id} is not in the dataset"),
            ChurnError::WouldEmptyDataset => {
                write!(f, "removing the last point would empty the dataset")
            }
        }
    }
}

impl std::error::Error for ChurnError {}

/// Counters describing how the index has been maintained so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Inserts applied by patching the index in place.
    pub incremental_inserts: u64,
    /// Removes applied by patching the index in place.
    pub incremental_removes: u64,
    /// Full rebuilds (geometry changes or dirt over the threshold).
    pub full_rebuilds: u64,
    /// Cells whose workload was re-quantified (incremental passes only).
    pub requantified_cells: u64,
}

/// An ε-grid index maintained under streaming inserts and removes.
///
/// Owns the point set. The wrapped [`GridIndex`] is patched eagerly on every
/// mutation (queries are always served from a correct index); the per-cell
/// workload quantification is refreshed lazily via [`Self::per_cell_workload`]
/// or [`Self::flush_maintenance`].
#[derive(Debug, Clone)]
pub struct DynamicGrid<const N: usize> {
    points: Vec<Point<N>>,
    epsilon: f32,
    index: GridIndex<N>,
    bounds: Aabb<N>,
    /// Linear ids of cells whose population changed since the last
    /// re-quantification. Kept ordered for deterministic refresh order.
    dirty: BTreeSet<LinearCellId>,
    /// Per-cell window candidate counts, aligned with `index.cells`.
    workload: Vec<u64>,
    rebuild_limit: f64,
    stats: MaintenanceStats,
}

impl<const N: usize> DynamicGrid<N> {
    /// Builds the initial index over `points`.
    pub fn new(points: Vec<Point<N>>, epsilon: f32) -> Result<Self, GridBuildError> {
        let index = GridIndex::build(&points, epsilon)?;
        // `build` succeeded, so the set is non-empty and finite.
        let bounds =
            Aabb::of_points(&points).expect("bounds exist for a successfully indexed dataset");
        let workload = (0..index.num_cells())
            .map(|ci| index.window_candidate_count(ci))
            .collect();
        Ok(Self {
            points,
            epsilon,
            index,
            bounds,
            dirty: BTreeSet::new(),
            workload,
            rebuild_limit: DEFAULT_REBUILD_LIMIT,
            stats: MaintenanceStats::default(),
        })
    }

    /// Overrides the dirt fraction that triggers the full-rebuild escape
    /// hatch (default [`DEFAULT_REBUILD_LIMIT`]).
    pub fn with_rebuild_limit(mut self, limit: f64) -> Self {
        self.rebuild_limit = limit.max(0.0);
        self
    }

    /// The maintained index. Always bit-identical to
    /// `GridIndex::build(self.points(), self.epsilon())`.
    pub fn index(&self) -> &GridIndex<N> {
        &self.index
    }

    /// The current point set; a point's id is its position here.
    pub fn points(&self) -> &[Point<N>] {
        &self.points
    }

    /// The ε the grid is maintained at.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid holds no points (never true: construction and
    /// [`Self::remove`] both refuse an empty dataset).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maintenance counters.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// Number of cells currently marked dirty (awaiting re-quantification).
    pub fn pending_dirty(&self) -> usize {
        self.dirty.len()
    }

    /// Per-cell window candidate counts (the SORTBYWL workload input),
    /// aligned with [`GridIndex::cells`]. Re-quantifies dirty windows first.
    pub fn per_cell_workload(&mut self) -> &[u64] {
        self.flush_maintenance();
        &self.workload
    }

    /// Re-quantifies the workload of every cell inside the neighbor window of
    /// a dirty cell, then clears the dirty set. Returns the number of cells
    /// refreshed.
    pub fn flush_maintenance(&mut self) -> usize {
        if self.dirty.is_empty() {
            return 0;
        }
        // A cell's candidate count changes iff the population of a cell in
        // its window changed; window membership is symmetric, so the affected
        // cells are exactly those inside the windows of the dirty cells.
        let mut affected: BTreeSet<usize> = BTreeSet::new();
        let shape = *self.index.shape();
        for &lid in &self.dirty {
            let window = NeighborWindow::around(&shape, &shape.coords_of(lid));
            for (_, id) in window.iter(&shape) {
                if let Some(ci) = self.index.find_cell(id) {
                    affected.insert(ci);
                }
            }
        }
        for &ci in &affected {
            self.workload[ci] = self.index.window_candidate_count(ci);
        }
        self.stats.requantified_cells += affected.len() as u64;
        self.dirty.clear();
        affected.len()
    }

    /// Discards the incremental state and rebuilds index, bounds and
    /// workload from the current point set.
    pub fn force_rebuild(&mut self) {
        self.index = GridIndex::build(&self.points, self.epsilon)
            .expect("maintained point set is non-empty and finite");
        self.bounds = Aabb::of_points(&self.points).expect("bounds exist for a maintained dataset");
        self.workload = (0..self.index.num_cells())
            .map(|ci| self.index.window_candidate_count(ci))
            .collect();
        self.dirty.clear();
        self.stats.full_rebuilds += 1;
    }

    /// Inserts a point, returning its id (`self.len() - 1` afterwards).
    ///
    /// Points inside the current bounding box are patched into the index in
    /// place; a point that would grow the box changes the grid geometry and
    /// takes the full-rebuild path.
    pub fn insert(&mut self, p: Point<N>) -> Result<u32, ChurnError> {
        if p.iter().any(|c| !c.is_finite()) {
            return Err(ChurnError::NonFinitePoint);
        }
        let pid = self.points.len() as u32;
        self.points.push(p);
        if !self.bounds.contains(&p) {
            self.force_rebuild();
            return Ok(pid);
        }

        let shape = *self.index.shape();
        let coords = shape.cell_of(&p);
        let lid = shape.linear_id(&coords);
        match self.index.cells.binary_search_by_key(&lid, |c| c.linear_id) {
            Ok(ci) => {
                // `pid` is the largest id, so the canonical (cell, pid) sort
                // places it at the end of its cell's group.
                let at = self.index.cells[ci].range.end as usize;
                self.index.point_ids.insert(at, pid);
                self.index.cells[ci].range.end += 1;
                for cell in &mut self.index.cells[ci + 1..] {
                    cell.range.start += 1;
                    cell.range.end += 1;
                }
                self.index.home_cell.push(ci as u32);
            }
            Err(pos) => {
                let start = match self.index.cells.get(pos) {
                    Some(next) => next.range.start,
                    None => self.index.point_ids.len() as u32,
                };
                self.index.point_ids.insert(start as usize, pid);
                self.index.cells.insert(
                    pos,
                    NonEmptyCell {
                        linear_id: lid,
                        range: start..start + 1,
                    },
                );
                for cell in &mut self.index.cells[pos + 1..] {
                    cell.range.start += 1;
                    cell.range.end += 1;
                }
                for hc in &mut self.index.home_cell {
                    if *hc as usize >= pos {
                        *hc += 1;
                    }
                }
                self.index.home_cell.push(pos as u32);
                // Placeholder until the dirty window is re-quantified.
                self.workload.insert(pos, 0);
                for (r, &c) in self.index.filtered_ranges.iter_mut().zip(&coords) {
                    r.start = r.start.min(c);
                    r.end = r.end.max(c + 1);
                }
            }
        }
        self.dirty.insert(lid);
        self.stats.incremental_inserts += 1;
        self.rebuild_if_too_dirty();
        Ok(pid)
    }

    /// Removes the point with id `pid` using `swap_remove` semantics.
    ///
    /// Returns the id of the point that was renamed to fill the hole: the
    /// point formerly known as `self.len() - 1` now answers to `pid`
    /// (`None` when `pid` already was the last point).
    ///
    /// Hull points (touching the bounding box on any face) shrink the grid
    /// geometry and take the full-rebuild path.
    pub fn remove(&mut self, pid: u32) -> Result<Option<u32>, ChurnError> {
        let i = pid as usize;
        if i >= self.points.len() {
            return Err(ChurnError::UnknownPoint(pid));
        }
        if self.points.len() == 1 {
            return Err(ChurnError::WouldEmptyDataset);
        }
        let last = self.points.len() - 1;
        let renamed = if i == last { None } else { Some(last as u32) };
        let removed = self.points[i];
        let on_hull =
            (0..N).any(|d| removed[d] == self.bounds.min[d] || removed[d] == self.bounds.max[d]);
        self.points.swap_remove(i);
        if on_hull {
            self.force_rebuild();
            return Ok(renamed);
        }

        let removed_ci = self.index.home_cell[i] as usize;
        let removed_lid = self.index.cells[removed_ci].linear_id;
        let moved_lid = renamed.map(|_| {
            let ci = self.index.home_cell[last] as usize;
            self.index.cells[ci].linear_id
        });

        // Drop `pid`'s entry from its cell's (pid-sorted) slice.
        let r = self.index.cells[removed_ci].range.clone();
        let slice = &self.index.point_ids[r.start as usize..r.end as usize];
        let off = slice
            .binary_search(&pid)
            .expect("home cell lists each of its points");
        self.index.point_ids.remove(r.start as usize + off);
        self.index.cells[removed_ci].range.end -= 1;
        for cell in &mut self.index.cells[removed_ci + 1..] {
            cell.range.start -= 1;
            cell.range.end -= 1;
        }
        if self.index.cells[removed_ci].range.is_empty() {
            self.index.cells.remove(removed_ci);
            self.workload.remove(removed_ci);
            for hc in &mut self.index.home_cell {
                if *hc as usize > removed_ci {
                    *hc -= 1;
                }
            }
            self.recompute_filtered_ranges();
        }

        // Mirror the dataset's swap_remove on the home-cell map, then rename
        // `last` to `pid` inside its (unchanged) cell, restoring sorted order.
        self.index.home_cell.swap_remove(i);
        if let Some(lid) = moved_lid {
            let ci = self
                .index
                .find_cell(lid)
                .expect("moved point's cell still has at least that point");
            let r = self.index.cells[ci].range.clone();
            let slice = &self.index.point_ids[r.start as usize..r.end as usize];
            // `last` is the global max id: it sits at the end of its slice.
            debug_assert_eq!(slice.last(), Some(&(last as u32)));
            let dest = slice.partition_point(|&x| x < pid);
            self.index.point_ids.remove(r.end as usize - 1);
            self.index.point_ids.insert(r.start as usize + dest, pid);
        }

        self.dirty.insert(removed_lid);
        self.stats.incremental_removes += 1;
        self.rebuild_if_too_dirty();
        Ok(renamed)
    }

    fn rebuild_if_too_dirty(&mut self) {
        let limit = self.rebuild_limit * self.index.num_cells() as f64;
        if self.dirty.len() as f64 > limit {
            self.force_rebuild();
        }
    }

    fn recompute_filtered_ranges(&mut self) {
        #[allow(clippy::reversed_empty_ranges)]
        let mut fr: [std::ops::Range<u32>; N] = std::array::from_fn(|_| u32::MAX..0u32);
        let shape = *self.index.shape();
        for cell in &self.index.cells {
            let coords = shape.coords_of(cell.linear_id);
            for d in 0..N {
                fr[d].start = fr[d].start.min(coords[d]);
                fr[d].end = fr[d].end.max(coords[d] + 1);
            }
        }
        self.index.filtered_ranges = fr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::within_epsilon;

    fn fresh_workload<const N: usize>(index: &GridIndex<N>) -> Vec<u64> {
        (0..index.num_cells())
            .map(|ci| index.window_candidate_count(ci))
            .collect()
    }

    /// Asserts the maintained state is bit-identical to a from-scratch build.
    fn assert_matches_fresh<const N: usize>(dg: &mut DynamicGrid<N>) {
        let fresh = GridIndex::build(dg.points(), dg.epsilon()).unwrap();
        assert_eq!(dg.index(), &fresh, "maintained index diverged from build");
        assert_eq!(
            dg.per_cell_workload(),
            fresh_workload(&fresh).as_slice(),
            "maintained workload diverged from fresh quantification"
        );
    }

    /// The grid-reported ε-pair set vs. the O(n²) oracle.
    fn assert_exact_pairs<const N: usize>(dg: &DynamicGrid<N>) {
        let pts = dg.points();
        let eps = dg.epsilon();
        let mut via_grid: Vec<(usize, usize)> = vec![];
        for i in 0..pts.len() {
            dg.index().for_each_candidate_of(i, |j| {
                if i < j && within_epsilon(&pts[i], &pts[j], eps) {
                    via_grid.push((i, j));
                }
            });
        }
        via_grid.sort_unstable();
        via_grid.dedup();
        let mut oracle: Vec<(usize, usize)> = vec![];
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                if within_epsilon(&pts[i], &pts[j], eps) {
                    oracle.push((i, j));
                }
            }
        }
        assert_eq!(via_grid, oracle, "pair set diverged from brute force");
    }

    fn seed_points() -> Vec<Point<2>> {
        vec![
            [0.0, 0.0],
            [1.0, 1.0],
            [0.31, 0.48],
            [0.52, 0.49],
            [0.49, 0.51],
            [0.05, 0.05],
            [0.95, 0.12],
        ]
    }

    #[test]
    fn insert_inside_bounds_is_incremental_and_exact() {
        let mut dg = DynamicGrid::new(seed_points(), 0.1).unwrap();
        let id = dg.insert([0.50, 0.50]).unwrap();
        assert_eq!(id, 7);
        assert_eq!(dg.stats().incremental_inserts, 1);
        assert_eq!(dg.stats().full_rebuilds, 0);
        assert_matches_fresh(&mut dg);
        assert_exact_pairs(&dg);
    }

    #[test]
    fn insert_outside_bounds_rebuilds() {
        let mut dg = DynamicGrid::new(seed_points(), 0.1).unwrap();
        dg.insert([2.0, 2.0]).unwrap();
        assert_eq!(dg.stats().full_rebuilds, 1);
        assert_matches_fresh(&mut dg);
    }

    #[test]
    fn remove_interior_point_is_incremental() {
        let mut dg = DynamicGrid::new(seed_points(), 0.1).unwrap();
        // Point 2 is interior; the last point (6) takes over id 2.
        let renamed = dg.remove(2).unwrap();
        assert_eq!(renamed, Some(6));
        assert_eq!(dg.stats().incremental_removes, 1);
        assert_eq!(dg.stats().full_rebuilds, 0);
        assert_matches_fresh(&mut dg);
        assert_exact_pairs(&dg);
    }

    #[test]
    fn remove_hull_point_rebuilds() {
        let mut dg = DynamicGrid::new(seed_points(), 0.1).unwrap();
        // Point 1 = [1.0, 1.0] sits on the bounding-box max corner.
        dg.remove(1).unwrap();
        assert_eq!(dg.stats().full_rebuilds, 1);
        assert_matches_fresh(&mut dg);
    }

    #[test]
    fn remove_last_point_id_needs_no_rename() {
        let mut dg = DynamicGrid::new(seed_points(), 0.1).unwrap();
        assert_eq!(dg.remove(6).unwrap(), None);
        assert_matches_fresh(&mut dg);
    }

    #[test]
    fn churn_errors_are_typed() {
        let mut dg = DynamicGrid::new(vec![[0.0f32, 0.0]], 0.1).unwrap();
        assert_eq!(dg.insert([f32::NAN, 0.0]), Err(ChurnError::NonFinitePoint));
        assert_eq!(dg.remove(7), Err(ChurnError::UnknownPoint(7)));
        assert_eq!(dg.remove(0), Err(ChurnError::WouldEmptyDataset));
        assert_eq!(dg.len(), 1);
    }

    #[test]
    fn dirt_threshold_triggers_rebuild() {
        let mut dg = DynamicGrid::new(seed_points(), 0.1)
            .unwrap()
            .with_rebuild_limit(0.0);
        dg.insert([0.5, 0.5]).unwrap();
        assert_eq!(dg.stats().full_rebuilds, 1);
        assert_eq!(dg.pending_dirty(), 0);
        assert_matches_fresh(&mut dg);
    }

    #[test]
    fn lazy_requantification_touches_only_dirty_windows() {
        let mut dg = DynamicGrid::new(seed_points(), 0.1).unwrap();
        dg.insert([0.50, 0.50]).unwrap();
        assert!(dg.pending_dirty() > 0);
        let refreshed = dg.flush_maintenance();
        assert!(refreshed >= 1);
        assert!(
            refreshed < dg.index().num_cells(),
            "incremental requantification refreshed every cell"
        );
        assert_eq!(dg.flush_maintenance(), 0);
    }
}
