//! Grid cell coordinates and linear ids.
//!
//! A grid of side length ε is laid over the dataset's bounding box. Each cell
//! is identified either by its multidimensional coordinates (`CellCoords`) or
//! by a row-major **linear id** (`LinearCellId`) — the unique id the
//! LID-UNICOMP access pattern orders cells by.

use crate::bounds::Aabb;
use crate::point::Point;

/// Multidimensional coordinates of a grid cell.
pub type CellCoords<const N: usize> = [u32; N];

/// Row-major linear id of a grid cell. Unique within a [`GridShape`].
pub type LinearCellId = u64;

/// The geometry of an ε-grid: origin, cell side length and cell counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridShape<const N: usize> {
    /// Minimum corner of the grid (cell `[0; N]` starts here).
    pub origin: [f32; N],
    /// Cell side length (= ε).
    pub cell_len: f32,
    /// Number of cells along each dimension.
    pub cells_per_dim: [u32; N],
}

/// Errors when constructing a [`GridShape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeError {
    /// ε must be strictly positive and finite.
    InvalidEpsilon,
    /// The total number of cells overflows the linear-id space.
    TooManyCells,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::InvalidEpsilon => write!(f, "epsilon must be positive and finite"),
            ShapeError::TooManyCells => {
                write!(
                    f,
                    "grid resolution overflows the 64-bit linear cell id space"
                )
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// Cap on the total (conceptual) cell count a [`GridShape`] may describe.
///
/// The index never materializes empty cells, but linear ids must stay well
/// inside `u64` so neighbor-window arithmetic cannot overflow, and a grid
/// this fine has long stopped pruning anything. 2^48 cells is orders of
/// magnitude beyond every dataset/ε regime in `EXPERIMENTS.md`.
pub const MAX_TOTAL_CELLS: u128 = 1 << 48;

impl<const N: usize> GridShape<N> {
    /// Builds the grid geometry covering `bounds` with cells of length `epsilon`.
    ///
    /// One cell of padding is added past the maximum corner so that points
    /// lying exactly on the boundary map to a valid cell.
    ///
    /// A tiny ε against a huge extent is rejected with
    /// [`ShapeError::TooManyCells`] instead of silently requesting an absurd
    /// resolution: the per-dimension count is bounded before the float→int
    /// cast (a saturating cast followed by `+ 1` would otherwise wrap the
    /// count to zero), and the product of all dimensions is capped at
    /// [`MAX_TOTAL_CELLS`].
    pub fn covering(bounds: &Aabb<N>, epsilon: f32) -> Result<Self, ShapeError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(ShapeError::InvalidEpsilon);
        }
        let mut cells_per_dim = [0u32; N];
        let mut total: u128 = 1;
        for (d, out) in cells_per_dim.iter_mut().enumerate() {
            let extent = bounds.max[d] - bounds.min[d];
            let raw = (extent / epsilon).floor();
            // Bound the count while it is still a float: `raw as u64`
            // saturates, so `+ 1` after the cast would wrap a huge extent
            // around to zero cells.
            if !raw.is_finite() || raw >= u32::MAX as f32 {
                return Err(ShapeError::TooManyCells);
            }
            let n = raw as u64 + 1;
            if n > u32::MAX as u64 {
                return Err(ShapeError::TooManyCells);
            }
            *out = n as u32;
            total = total.saturating_mul(n as u128);
        }
        if total > MAX_TOTAL_CELLS {
            return Err(ShapeError::TooManyCells);
        }
        Ok(Self {
            origin: bounds.min,
            cell_len: epsilon,
            cells_per_dim,
        })
    }

    /// Total number of cells in the (conceptual, mostly empty) grid.
    pub fn total_cells(&self) -> u64 {
        self.cells_per_dim.iter().map(|&c| c as u64).product()
    }

    /// The cell coordinates containing point `p`.
    ///
    /// Coordinates are clamped into the grid, so points marginally outside the
    /// bounding box (e.g. from float rounding) still map to a boundary cell.
    pub fn cell_of(&self, p: &Point<N>) -> CellCoords<N> {
        let mut c = [0u32; N];
        for d in 0..N {
            let raw = ((p[d] - self.origin[d]) / self.cell_len).floor();
            let clamped = raw.max(0.0).min((self.cells_per_dim[d] - 1) as f32);
            c[d] = clamped as u32;
        }
        c
    }

    /// Row-major linear id of a cell.
    ///
    /// # Panics
    /// Debug-asserts that the coordinates are in range.
    pub fn linear_id(&self, coords: &CellCoords<N>) -> LinearCellId {
        let mut id: u64 = 0;
        for (d, &coord) in coords.iter().enumerate() {
            debug_assert!(
                coord < self.cells_per_dim[d],
                "cell coordinate out of range"
            );
            id = id * self.cells_per_dim[d] as u64 + coord as u64;
        }
        id
    }

    /// Inverse of [`Self::linear_id`].
    pub fn coords_of(&self, mut id: LinearCellId) -> CellCoords<N> {
        let mut coords = [0u32; N];
        for d in (0..N).rev() {
            let n = self.cells_per_dim[d] as u64;
            coords[d] = (id % n) as u32;
            id /= n;
        }
        coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape2() -> GridShape<2> {
        GridShape {
            origin: [0.0, 0.0],
            cell_len: 1.0,
            cells_per_dim: [4, 5],
        }
    }

    #[test]
    fn linear_id_roundtrip() {
        let s = shape2();
        for x in 0..4 {
            for y in 0..5 {
                let id = s.linear_id(&[x, y]);
                assert_eq!(s.coords_of(id), [x, y]);
            }
        }
    }

    #[test]
    fn linear_ids_are_unique_and_dense() {
        let s = shape2();
        let mut seen = vec![false; s.total_cells() as usize];
        for x in 0..4 {
            for y in 0..5 {
                let id = s.linear_id(&[x, y]) as usize;
                assert!(!seen[id]);
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn cell_of_maps_points() {
        let s = shape2();
        assert_eq!(s.cell_of(&[0.5, 0.5]), [0, 0]);
        assert_eq!(s.cell_of(&[3.9, 4.9]), [3, 4]);
        // boundary points clamp into the last cell
        assert_eq!(s.cell_of(&[4.0, 5.0]), [3, 4]);
        // slightly negative coordinates clamp into cell 0
        assert_eq!(s.cell_of(&[-0.001, 0.0]), [0, 0]);
    }

    #[test]
    fn covering_pads_boundary() {
        let bb = Aabb {
            min: [0.0, 0.0],
            max: [1.0, 1.0],
        };
        let s = GridShape::covering(&bb, 0.5).unwrap();
        // extent/eps = 2 cells, +1 padding = 3
        assert_eq!(s.cells_per_dim, [3, 3]);
        assert!(s.cell_of(&[1.0, 1.0])[0] < 3);
    }

    #[test]
    fn covering_rejects_bad_epsilon() {
        let bb = Aabb {
            min: [0.0],
            max: [1.0],
        };
        assert_eq!(
            GridShape::covering(&bb, 0.0),
            Err(ShapeError::InvalidEpsilon)
        );
        assert_eq!(
            GridShape::covering(&bb, -1.0),
            Err(ShapeError::InvalidEpsilon)
        );
        assert_eq!(
            GridShape::covering(&bb, f32::NAN),
            Err(ShapeError::InvalidEpsilon)
        );
    }

    #[test]
    fn covering_rejects_overflowing_grids() {
        let bb = Aabb {
            min: [0.0f32; 4],
            max: [1.0e9f32; 4],
        };
        assert!(GridShape::<4>::covering(&bb, 1.0e-4).is_err());
    }

    #[test]
    fn covering_rejects_saturating_per_dim_counts() {
        // extent/ε overflows f32 → the old `as u64 + 1` wrapped the count to
        // zero cells in release builds (and panicked in debug). It must be a
        // typed error instead.
        let bb = Aabb {
            min: [0.0f32],
            max: [f32::MAX],
        };
        assert_eq!(
            GridShape::covering(&bb, 1.0e-30),
            Err(ShapeError::TooManyCells)
        );
        // An extent/ε that is finite but beyond u32 must also be rejected by
        // the per-dimension bound, not mangled by the saturating cast.
        let bb = Aabb {
            min: [0.0f32],
            max: [1.0e12],
        };
        assert_eq!(
            GridShape::covering(&bb, 1.0e-3),
            Err(ShapeError::TooManyCells)
        );
    }

    #[test]
    fn covering_caps_total_cells_across_dimensions() {
        // Each dimension individually fits in u32 (~2^25 cells), but the 3-D
        // product (~2^75) blows past MAX_TOTAL_CELLS.
        let bb = Aabb {
            min: [0.0f32; 3],
            max: [1.0f32; 3],
        };
        let eps = 1.0 / 33_554_432.0; // 2^-25
        assert_eq!(
            GridShape::<3>::covering(&bb, eps),
            Err(ShapeError::TooManyCells)
        );
        // The same resolution in one dimension stays comfortably under the
        // cap and must keep working.
        let bb1 = Aabb {
            min: [0.0f32],
            max: [1.0f32],
        };
        let s = GridShape::covering(&bb1, eps).unwrap();
        assert_eq!(s.cells_per_dim, [33_554_433]);
    }

    #[test]
    fn row_major_order_matches_lexicographic_coords() {
        // LID-UNICOMP depends on linear ids ordering cells lexicographically
        // by coordinates, which row-major ids do.
        let s = shape2();
        let mut prev = None;
        for x in 0..4 {
            for y in 0..5 {
                let id = s.linear_id(&[x, y]);
                if let Some(p) = prev {
                    assert!(id > p);
                }
                prev = Some(id);
            }
        }
    }
}
