//! Enumeration of the `3^n` neighbor-cell window around an origin cell.
//!
//! Every point within ε of a query point must lie in one of the up-to-`3^n`
//! cells adjacent to (or equal to) the query point's home cell, because cells
//! have side length ε. [`NeighborWindow`] captures the clamped per-dimension
//! coordinate ranges and [`NeighborCellIter`] walks the window in row-major
//! order (ascending linear id), which the access patterns rely on.

use crate::cell::{CellCoords, GridShape, LinearCellId};

/// The clamped per-dimension coordinate ranges of a neighbor window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborWindow<const N: usize> {
    /// Inclusive lower cell coordinate per dimension.
    pub lo: CellCoords<N>,
    /// Inclusive upper cell coordinate per dimension.
    pub hi: CellCoords<N>,
}

impl<const N: usize> NeighborWindow<N> {
    /// The window of cells adjacent to `origin` (including `origin` itself),
    /// clamped to the grid boundary.
    pub fn around(shape: &GridShape<N>, origin: &CellCoords<N>) -> Self {
        let mut lo = [0u32; N];
        let mut hi = [0u32; N];
        for d in 0..N {
            lo[d] = origin[d].saturating_sub(1);
            hi[d] = (origin[d] + 1).min(shape.cells_per_dim[d] - 1);
        }
        Self { lo, hi }
    }

    /// Number of cells in the window (≤ `3^N`).
    pub fn len(&self) -> usize {
        (0..N)
            .map(|d| (self.hi[d] - self.lo[d] + 1) as usize)
            .product()
    }

    /// Whether the window is empty (never true for windows from [`Self::around`]).
    pub fn is_empty(&self) -> bool {
        (0..N).any(|d| self.hi[d] < self.lo[d])
    }

    /// Whether the window contains the given cell coordinates.
    pub fn contains(&self, c: &CellCoords<N>) -> bool {
        (0..N).all(|d| c[d] >= self.lo[d] && c[d] <= self.hi[d])
    }

    /// Iterates the window's cells in row-major (ascending linear id) order.
    pub fn iter<'a>(&self, shape: &'a GridShape<N>) -> NeighborCellIter<'a, N> {
        NeighborCellIter {
            shape: *shape,
            window: *self,
            cursor: self.lo,
            done: self.is_empty(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// Row-major iterator over the cells of a [`NeighborWindow`].
///
/// Yields `(coords, linear_id)` pairs with strictly increasing linear ids.
#[derive(Debug, Clone)]
pub struct NeighborCellIter<'a, const N: usize> {
    shape: GridShape<N>,
    window: NeighborWindow<N>,
    cursor: CellCoords<N>,
    done: bool,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<const N: usize> Iterator for NeighborCellIter<'_, N> {
    type Item = (CellCoords<N>, LinearCellId);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let coords = self.cursor;
        let id = self.shape.linear_id(&coords);
        // odometer increment, last dimension fastest (row-major order)
        let mut d = N;
        loop {
            if d == 0 {
                self.done = true;
                break;
            }
            d -= 1;
            if self.cursor[d] < self.window.hi[d] {
                self.cursor[d] += 1;
                for lower in d + 1..N {
                    self.cursor[lower] = self.window.lo[lower];
                }
                break;
            }
        }
        Some((coords, id))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            // Upper bound only; exact remaining count is not tracked.
            let total = self.window.len();
            (0, Some(total))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::Aabb;

    fn shape(cells: [u32; 2]) -> GridShape<2> {
        GridShape {
            origin: [0.0, 0.0],
            cell_len: 1.0,
            cells_per_dim: cells,
        }
    }

    #[test]
    fn interior_cell_has_9_neighbors_in_2d() {
        let s = shape([5, 5]);
        let w = NeighborWindow::around(&s, &[2, 2]);
        assert_eq!(w.len(), 9);
        let cells: Vec<_> = w.iter(&s).collect();
        assert_eq!(cells.len(), 9);
        assert!(cells.iter().any(|(c, _)| *c == [2, 2]));
    }

    #[test]
    fn corner_cell_window_is_clamped() {
        let s = shape([5, 5]);
        let w = NeighborWindow::around(&s, &[0, 0]);
        assert_eq!(w.len(), 4);
        let w = NeighborWindow::around(&s, &[4, 4]);
        assert_eq!(w.len(), 4);
        let w = NeighborWindow::around(&s, &[0, 2]);
        assert_eq!(w.len(), 6);
    }

    #[test]
    fn iteration_order_is_ascending_linear_id() {
        let s = shape([7, 7]);
        let w = NeighborWindow::around(&s, &[3, 3]);
        let ids: Vec<_> = w.iter(&s).map(|(_, id)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            ids, sorted,
            "neighbor cells must come out in ascending id order"
        );
    }

    #[test]
    fn window_in_3d_has_27_cells() {
        let s = GridShape::<3> {
            origin: [0.0; 3],
            cell_len: 1.0,
            cells_per_dim: [4, 4, 4],
        };
        let w = NeighborWindow::around(&s, &[1, 2, 1]);
        assert_eq!(w.len(), 27);
        assert_eq!(w.iter(&s).count(), 27);
    }

    #[test]
    fn single_cell_grid() {
        let bb = Aabb {
            min: [0.0, 0.0],
            max: [0.0, 0.0],
        };
        let s = GridShape::covering(&bb, 1.0).unwrap();
        let w = NeighborWindow::around(&s, &[0, 0]);
        assert_eq!(w.len(), 1);
        let cells: Vec<_> = w.iter(&s).collect();
        assert_eq!(cells, vec![([0, 0], 0)]);
    }

    #[test]
    fn contains_matches_iteration() {
        let s = shape([6, 6]);
        let w = NeighborWindow::around(&s, &[1, 4]);
        for x in 0..6u32 {
            for y in 0..6u32 {
                let inside = w.iter(&s).any(|(c, _)| c == [x, y]);
                assert_eq!(inside, w.contains(&[x, y]), "cell [{x},{y}]");
            }
        }
    }
}
