//! Axis-aligned bounding boxes over point sets.

use crate::point::Point;

/// An axis-aligned bounding box in `N` dimensions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb<const N: usize> {
    /// Minimum coordinate in every dimension.
    pub min: [f32; N],
    /// Maximum coordinate in every dimension.
    pub max: [f32; N],
}

impl<const N: usize> Aabb<N> {
    /// Computes the bounding box of a point set.
    ///
    /// Returns `None` for an empty set or if any coordinate is not finite.
    pub fn of_points(points: &[Point<N>]) -> Option<Self> {
        let first = points.first()?;
        let mut min = *first;
        let mut max = *first;
        for p in points {
            for d in 0..N {
                if !p[d].is_finite() {
                    return None;
                }
                min[d] = min[d].min(p[d]);
                max[d] = max[d].max(p[d]);
            }
        }
        Some(Self { min, max })
    }

    /// The extent (`max - min`) in each dimension.
    pub fn extent(&self) -> [f32; N] {
        let mut e = [0.0f32; N];
        for (d, out) in e.iter_mut().enumerate() {
            *out = self.max[d] - self.min[d];
        }
        e
    }

    /// Whether the point lies inside the box (inclusive on all faces).
    pub fn contains(&self, p: &Point<N>) -> bool {
        (0..N).all(|d| p[d] >= self.min[d] && p[d] <= self.max[d])
    }

    /// Grows the box to include `p`.
    pub fn include(&mut self, p: &Point<N>) {
        for (d, &coord) in p.iter().enumerate() {
            self.min[d] = self.min[d].min(coord);
            self.max[d] = self.max[d].max(coord);
        }
    }

    /// The volume of the box (product of extents).
    pub fn volume(&self) -> f64 {
        self.extent().iter().map(|&e| e as f64).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_box_of_points() {
        let pts: Vec<Point<2>> = vec![[0.0, 5.0], [2.0, -1.0], [1.0, 3.0]];
        let bb = Aabb::of_points(&pts).unwrap();
        assert_eq!(bb.min, [0.0, -1.0]);
        assert_eq!(bb.max, [2.0, 5.0]);
        assert_eq!(bb.extent(), [2.0, 6.0]);
        assert!((bb.volume() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn empty_set_has_no_box() {
        let pts: Vec<Point<2>> = vec![];
        assert!(Aabb::of_points(&pts).is_none());
    }

    #[test]
    fn non_finite_rejected() {
        let pts: Vec<Point<2>> = vec![[0.0, f32::NAN]];
        assert!(Aabb::of_points(&pts).is_none());
        let pts: Vec<Point<2>> = vec![[f32::INFINITY, 0.0]];
        assert!(Aabb::of_points(&pts).is_none());
    }

    #[test]
    fn contains_and_include() {
        let mut bb = Aabb {
            min: [0.0, 0.0],
            max: [1.0, 1.0],
        };
        assert!(bb.contains(&[0.5, 1.0]));
        assert!(!bb.contains(&[1.5, 0.5]));
        bb.include(&[2.0, -1.0]);
        assert!(bb.contains(&[1.5, 0.0]));
    }

    #[test]
    fn single_point_box_is_degenerate() {
        let bb = Aabb::of_points(&[[3.0f32, 4.0, 5.0]]).unwrap();
        assert_eq!(bb.min, bb.max);
        assert_eq!(bb.volume(), 0.0);
    }
}
