//! Criterion bench for the DESIGN.md §5 ablations: issue-order policies,
//! the k sweep, and the substrate's grid/sort building blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simjoin::{Balancing, SelfJoinConfig};
use sj_bench::run_join_dyn;
use sjdata::DatasetSpec;
use warpsim::IssueOrder;

fn bench_issue_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_issue_order");
    group.sample_size(10);
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(6_000);
    let eps = spec.epsilons[2];
    for (label, order) in [
        ("arbitrary", IssueOrder::Arbitrary { seed: 1 }),
        ("in_order", IssueOrder::InOrder),
        ("reversed", IssueOrder::Reversed),
    ] {
        group.bench_function(BenchmarkId::new("sortbywl", label), |b| {
            b.iter(|| {
                run_join_dyn(
                    &pts,
                    SelfJoinConfig::new(eps)
                        .with_balancing(Balancing::SortByWorkload)
                        .with_issue_override(order),
                )
            })
        });
    }
    group.finish();
}

fn bench_k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_k_sweep");
    group.sample_size(10);
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(6_000);
    let eps = spec.epsilons[2];
    for k in [1u32, 2, 4, 8, 16, 32] {
        group.bench_function(BenchmarkId::from_parameter(k), |b| {
            b.iter(|| run_join_dyn(&pts, SelfJoinConfig::new(eps).with_k(k)))
        });
    }
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_substrates");
    group.sample_size(10);
    let spec = DatasetSpec::by_name("SW2DA").unwrap();
    let pts = spec.generate(20_000).as_fixed::<2>().unwrap();
    let eps = spec.epsilons[2];
    group.bench_function("grid_build", |b| {
        b.iter(|| epsgrid::GridIndex::build(&pts, eps).unwrap())
    });
    group.bench_function("ego_sort", |b| {
        b.iter(|| superego::EgoSorted::sort(&pts, eps))
    });
    let grid = epsgrid::GridIndex::build(&pts, eps).unwrap();
    group.bench_function("workload_profile", |b| {
        b.iter(|| simjoin::WorkloadProfile::compute(&grid))
    });
    group.finish();
}

criterion_group!(benches, bench_issue_orders, bench_k_sweep, bench_substrates);
criterion_main!(benches);
