//! Criterion bench for the intra-join host-parallel layers: the same
//! single-device join at `host_jobs` 1/2/4/8, plus the same sweep sharded
//! across a 4-device fleet (fleet shards and batches both ride the pool).
//!
//! `host_jobs` is a wall-clock-only knob — the pair set, the canonical
//! report, and every telemetry artifact are bit-identical across all of
//! these runs (the integration suites enforce it), so what this bench
//! measures is pure thread scaling of the executor. The recorded baseline
//! rows live under `"host_parallel"` in `results/bench_baseline.json`
//! (written by the `experiments` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simjoin::{Balancing, BatchingConfig, SelfJoinConfig};
use sj_bench::harness::run_join_dyn_sharded;
use sj_bench::run_join_dyn;
use sjdata::DatasetSpec;

const HOST_JOBS: [usize; 4] = [1, 2, 4, 8];

/// The skewed workload at a batch capacity tight enough that the plan
/// holds many independent units — the regime the batch layer spreads.
fn config(eps: f32, host_jobs: usize) -> SelfJoinConfig {
    SelfJoinConfig::new(eps)
        .with_balancing(Balancing::WorkQueue)
        .with_batching(BatchingConfig {
            batch_result_capacity: 50_000,
            max_batches: 64,
            ..BatchingConfig::default()
        })
        .with_host_jobs(host_jobs)
}

fn bench_single_device(c: &mut Criterion) {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(6_000);
    let eps = spec.epsilons[2];
    let mut group = c.benchmark_group("host_parallel");
    group.sample_size(10);
    for jobs in HOST_JOBS {
        group.bench_with_input(BenchmarkId::new("single_device", jobs), &pts, |b, pts| {
            b.iter(|| run_join_dyn(pts, config(eps, jobs)))
        });
    }
    group.finish();
}

fn bench_fleet(c: &mut Criterion) {
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(6_000);
    let eps = spec.epsilons[2];
    let mut group = c.benchmark_group("host_parallel_fleet");
    group.sample_size(10);
    for jobs in HOST_JOBS {
        group.bench_with_input(BenchmarkId::new("devices_4", jobs), &pts, |b, pts| {
            b.iter(|| {
                run_join_dyn_sharded(
                    pts,
                    config(eps, jobs),
                    4,
                    simjoin::ShardStrategy::WorkloadAware,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_device, bench_fleet);
criterion_main!(benches);
