//! Criterion bench for Fig. 12: real-world datasets, the combined GPU
//! optimization vs the baseline and vs SUPER-EGO.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simjoin::SelfJoinConfig;
use sj_bench::{run_join_dyn, run_superego_dyn, CpuModel};
use sjdata::DatasetSpec;
use warpsim::CostModel;

fn bench_realworld(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_realworld");
    group.sample_size(10);
    for name in ["SW2DA", "Gaia"] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let pts = spec.generate(8_000);
        let eps = spec.epsilons[3];
        group.bench_with_input(BenchmarkId::new("gpucalcglobal", name), &pts, |b, pts| {
            b.iter(|| run_join_dyn(pts, SelfJoinConfig::new(eps)))
        });
        group.bench_with_input(BenchmarkId::new("wq_lid_k8", name), &pts, |b, pts| {
            b.iter(|| run_join_dyn(pts, SelfJoinConfig::optimized(eps)))
        });
        group.bench_with_input(BenchmarkId::new("superego", name), &pts, |b, pts| {
            b.iter(|| run_superego_dyn(pts, eps, &CpuModel::default(), &CostModel::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_realworld);
criterion_main!(benches);
