//! Criterion bench for Fig. 9: the three cell access patterns
//! (GPUCALCGLOBAL vs UNICOMP vs LID-UNICOMP) on skewed and uniform data.
//!
//! Tracks the wall-clock cost of the simulated runs for regression
//! purposes; the paper-shaped model-time series come from
//! `cargo run -p sj-bench --bin experiments -- fig9`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simjoin::{AccessPattern, SelfJoinConfig};
use sj_bench::run_join_dyn;
use sjdata::DatasetSpec;

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_patterns");
    group.sample_size(10);
    for name in ["Expo2D2M", "Unif2D2M"] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let pts = spec.generate(6_000);
        let eps = spec.epsilons[2];
        for (label, pattern) in [
            ("gpucalcglobal", AccessPattern::FullWindow),
            ("unicomp", AccessPattern::Unicomp),
            ("lid_unicomp", AccessPattern::LidUnicomp),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &pts, |b, pts| {
                b.iter(|| run_join_dyn(pts, SelfJoinConfig::new(eps).with_pattern(pattern)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
