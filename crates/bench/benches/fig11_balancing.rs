//! Criterion bench for Fig. 11: SORTBYWL and WORKQUEUE vs the baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simjoin::{Balancing, SelfJoinConfig};
use sj_bench::run_join_dyn;
use sjdata::DatasetSpec;

fn bench_balancing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_balancing");
    group.sample_size(10);
    for name in ["Expo2D2M", "Unif2D2M"] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let pts = spec.generate(6_000);
        let eps = spec.epsilons[2];
        for (label, balancing) in [
            ("static", Balancing::None),
            ("sortbywl", Balancing::SortByWorkload),
            ("workqueue", Balancing::WorkQueue),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &pts, |b, pts| {
                b.iter(|| run_join_dyn(pts, SelfJoinConfig::new(eps).with_balancing(balancing)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_balancing);
criterion_main!(benches);
