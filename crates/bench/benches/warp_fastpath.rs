//! Criterion bench for the warp simulator's run-length fast path:
//! stepped vs run-length execution on uniform (fully converged) and skewed
//! (divergence-heavy) warps, plus whole-join runs in both step modes.
//!
//! The converged 32-lane scan is the headline case: the fast path advances
//! the whole run in one accounting update, so its wall-clock cost should be
//! a small constant independent of the run length. The recorded baseline
//! numbers live in `results/bench_baseline.json` (written by the
//! `experiments` binary).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simjoin::SelfJoinConfig;
use sj_bench::run_join_dyn;
use sjdata::DatasetSpec;
use warpsim::lane::FixedWorkLane;
use warpsim::{execute_warp_with, LaneSink, Op, OpKind, StepMode};

const WARP: u32 = 32;

/// A fully converged warp: every lane scans `n` candidates.
fn uniform_lanes(n: u32) -> Vec<FixedWorkLane> {
    let op = Op::new(OpKind::Distance, 18);
    (0..WARP).map(|_| FixedWorkLane::new(n, op)).collect()
}

/// A skewed warp: one heavy lane, the rest carry 1/16th of its work, so
/// lanes retire at different times and most rounds are partially idle.
fn skewed_lanes(n: u32) -> Vec<FixedWorkLane> {
    let op = Op::new(OpKind::Distance, 18);
    (0..WARP)
        .map(|i| FixedWorkLane::new(if i == 0 { n } else { (n / 16).max(1) }, op))
        .collect()
}

fn bench_warp_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("warp_fastpath");
    for n in [1_024u32, 16_384] {
        for (shape, make) in [
            ("uniform", uniform_lanes as fn(u32) -> Vec<FixedWorkLane>),
            ("skewed", skewed_lanes),
        ] {
            for mode in [StepMode::Stepped, StepMode::RunLength] {
                let id = BenchmarkId::new(format!("{shape}_{}", mode.name()), n);
                group.bench_with_input(id, &n, |b, &n| {
                    b.iter(|| {
                        let mut lanes = make(n);
                        let mut sink = LaneSink::new();
                        black_box(execute_warp_with(&mut lanes, WARP, &mut sink, mode))
                    })
                });
            }
        }
    }
    group.finish();
}

fn bench_join_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_step_modes");
    group.sample_size(10);
    for name in ["Expo2D2M", "Unif2D2M"] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let pts = spec.generate(6_000);
        let eps = spec.epsilons[2];
        for mode in [StepMode::Stepped, StepMode::RunLength] {
            group.bench_with_input(BenchmarkId::new(mode.name(), name), &pts, |b, pts| {
                b.iter(|| run_join_dyn(pts, SelfJoinConfig::new(eps).with_step_mode(mode)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_warp_modes, bench_join_modes);
criterion_main!(benches);
