//! Criterion bench for Fig. 13: the end-to-end configurations whose
//! model-time ratio is the paper's headline speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simjoin::SelfJoinConfig;
use sj_bench::{run_join_dyn, run_superego_dyn, CpuModel};
use sjdata::DatasetSpec;
use warpsim::CostModel;

fn bench_speedup_endpoints(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_speedup");
    group.sample_size(10);
    for name in ["Expo2D2M", "Expo6D2M", "SW2DB"] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let pts = spec.generate(6_000);
        let eps = spec.epsilons[3];
        group.bench_with_input(BenchmarkId::new("baseline", name), &pts, |b, pts| {
            b.iter(|| run_join_dyn(pts, SelfJoinConfig::new(eps)))
        });
        group.bench_with_input(BenchmarkId::new("optimized", name), &pts, |b, pts| {
            b.iter(|| run_join_dyn(pts, SelfJoinConfig::optimized(eps)))
        });
        group.bench_with_input(BenchmarkId::new("superego", name), &pts, |b, pts| {
            b.iter(|| run_superego_dyn(pts, eps, &CpuModel::default(), &CostModel::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_speedup_endpoints);
criterion_main!(benches);
