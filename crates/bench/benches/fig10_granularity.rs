//! Criterion bench for Fig. 10: thread granularity (k = 1 vs k = 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simjoin::SelfJoinConfig;
use sj_bench::run_join_dyn;
use sjdata::DatasetSpec;

fn bench_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_granularity");
    group.sample_size(10);
    for name in ["Expo2D2M", "Unif6D2M"] {
        let spec = DatasetSpec::by_name(name).unwrap();
        let pts = spec.generate(6_000);
        let eps = spec.epsilons[2];
        for k in [1u32, 8] {
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), name), &pts, |b, pts| {
                b.iter(|| run_join_dyn(pts, SelfJoinConfig::new(eps).with_k(k)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_granularity);
criterion_main!(benches);
