//! Criterion bench for the on-device primitives behind
//! `SortBackend::Device`: the warp-kernel radix argsort and exclusive scan,
//! per step mode and input size, plus whole joins on both sort backends.
//!
//! The primitives are differentially tested to match the host planner bit
//! for bit, so the interesting numbers here are wall-clock only: what the
//! simulated pre-pass costs to *run*, and how much of that the run-length
//! fast path recovers (the count and scan dispatches are pure compute and
//! ride it; only the scatter steps execute stepped). The recorded baseline
//! numbers live in `results/bench_baseline.json` (written by the
//! `experiments` binary).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simjoin::{Balancing, SelfJoinConfig, SortBackend};
use sj_bench::run_join_dyn;
use sjdata::DatasetSpec;
use warpsim::{
    device_exclusive_scan, device_radix_argsort, GpuConfig, LaunchOptions, StepMode,
    DEFAULT_DIGIT_BITS,
};

/// Heavy-tailed keys in SORTBYWL shape: a few huge workloads, many tiny
/// duplicated ones (the tie-break regime).
fn keys(n: usize) -> Vec<u128> {
    (0..n)
        .map(|i| {
            if i % 17 == 0 {
                500_000 + i as u128
            } else {
                (i as u128 * 13) % 64
            }
        })
        .collect()
}

fn bench_primitives(c: &mut Criterion) {
    let gpu = GpuConfig::default();
    let mut group = c.benchmark_group("primitives");
    for n in [1_024usize, 16_384] {
        let keys = keys(n);
        let values: Vec<u64> = keys.iter().map(|&k| k as u64 & 0xFFFF).collect();
        for mode in [StepMode::Stepped, StepMode::RunLength] {
            let opts = LaunchOptions::default().with_step_mode(mode);
            group.bench_with_input(
                BenchmarkId::new(format!("radix_argsort_{}", mode.name()), n),
                &keys,
                |b, keys| {
                    b.iter(|| {
                        black_box(device_radix_argsort(&gpu, keys, DEFAULT_DIGIT_BITS, &opts))
                            .expect("argsort")
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("exclusive_scan_{}", mode.name()), n),
                &values,
                |b, values| {
                    b.iter(|| black_box(device_exclusive_scan(&gpu, values, &opts)).expect("scan"))
                },
            );
        }
    }
    group.finish();
}

fn bench_join_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_sort_backends");
    group.sample_size(10);
    let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
    let pts = spec.generate(6_000);
    let eps = spec.epsilons[2];
    for backend in [SortBackend::Host, SortBackend::Device] {
        group.bench_with_input(
            BenchmarkId::new(backend.label(), "Expo2D2M"),
            &pts,
            |b, pts| {
                b.iter(|| {
                    run_join_dyn(
                        pts,
                        SelfJoinConfig::new(eps)
                            .with_balancing(Balancing::WorkQueue)
                            .with_sort_backend(backend),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_join_backends);
criterion_main!(benches);
