//! Dimension-erased run helpers for GPU variants and SUPER-EGO.

use std::time::{Duration, Instant};

use epsgrid::DynPoints;
use simjoin::{SelfJoin, SelfJoinConfig};
use sj_telemetry::Telemetry;
use superego::{super_ego_join_with, SuperEgoConfig};

use crate::cpu_model::CpuModel;

/// Outcome of one simulated-GPU join run.
#[derive(Debug, Clone)]
pub struct GpuRunResult {
    /// Variant label (from [`SelfJoinConfig::label`]).
    pub label: String,
    /// End-to-end response time in model seconds.
    pub response_s: f64,
    /// Warp execution efficiency, `[0, 1]`.
    pub wee: f64,
    /// Ordered result pairs found.
    pub pairs: usize,
    /// Batches executed.
    pub batches: usize,
    /// Distance calculations performed.
    pub distance_calcs: u64,
    /// Coefficient of variation of per-warp durations (inter-warp
    /// imbalance).
    pub warp_cv: f64,
    /// Wall-clock time the *simulation* took (not a result, just harness
    /// telemetry).
    pub sim_wall: Duration,
}

/// Outcome of one SUPER-EGO run.
#[derive(Debug, Clone)]
pub struct CpuRunResult {
    /// Model seconds under the shared cost model.
    pub model_s: f64,
    /// Native wall-clock seconds on the host.
    pub wall_s: f64,
    /// Ordered result pairs found.
    pub pairs: usize,
    /// Distance calculations performed.
    pub distance_calcs: u64,
}

fn run_join_fixed<const N: usize>(
    points: &[[f32; N]],
    config: SelfJoinConfig,
    telemetry: &dyn Telemetry,
) -> GpuRunResult {
    let start = Instant::now();
    let label = config.label();
    let join = SelfJoin::new(points, config)
        .expect("join configuration must be valid")
        .with_telemetry(telemetry);
    let outcome = join.run().expect("join execution must succeed");
    let warp_cv = outcome.report.warp_stats().map(|s| s.cv()).unwrap_or(0.0);
    GpuRunResult {
        label,
        response_s: outcome.report.response_time_s(),
        wee: outcome.report.wee(),
        pairs: outcome.result.len(),
        batches: outcome.report.num_batches,
        distance_calcs: outcome.report.distance_calcs(),
        warp_cv,
        sim_wall: start.elapsed(),
    }
}

/// Runs a GPU join variant on a dimension-erased dataset (2 ≤ dims ≤ 6).
///
/// # Panics
/// Panics on unsupported dimensionality or invalid configuration.
pub fn run_join_dyn(points: &DynPoints, config: SelfJoinConfig) -> GpuRunResult {
    run_join_dyn_with(points, config, &sj_telemetry::NULL)
}

/// [`run_join_dyn`] recording executor and kernel telemetry to `telemetry`.
pub fn run_join_dyn_with(
    points: &DynPoints,
    config: SelfJoinConfig,
    telemetry: &dyn Telemetry,
) -> GpuRunResult {
    match points.dims() {
        2 => run_join_fixed(&points.as_fixed::<2>().unwrap(), config, telemetry),
        3 => run_join_fixed(&points.as_fixed::<3>().unwrap(), config, telemetry),
        4 => run_join_fixed(&points.as_fixed::<4>().unwrap(), config, telemetry),
        5 => run_join_fixed(&points.as_fixed::<5>().unwrap(), config, telemetry),
        6 => run_join_fixed(&points.as_fixed::<6>().unwrap(), config, telemetry),
        d => panic!("unsupported dimensionality {d}"),
    }
}

fn run_join_sharded_fixed<const N: usize>(
    points: &[[f32; N]],
    config: SelfJoinConfig,
    devices: usize,
    strategy: simjoin::ShardStrategy,
    telemetry: &dyn Telemetry,
) -> (GpuRunResult, simjoin::FleetReport) {
    let start = Instant::now();
    let label = config.label();
    let fleet = warpsim::DeviceFleet::homogeneous(devices, config.gpu);
    let join = SelfJoin::new(points, config)
        .expect("join configuration must be valid")
        .with_telemetry(telemetry);
    let outcome = join
        .run_on_fleet(&fleet, strategy)
        .expect("fleet join execution must succeed");
    let warp_cv = outcome.report.warp_stats().map(|s| s.cv()).unwrap_or(0.0);
    (
        GpuRunResult {
            label,
            response_s: outcome.report.response_time_s(),
            wee: outcome.report.wee(),
            pairs: outcome.result.len(),
            batches: outcome.report.num_batches,
            distance_calcs: outcome.report.distance_calcs(),
            warp_cv,
            sim_wall: start.elapsed(),
        },
        outcome.fleet,
    )
}

/// Runs a GPU join sharded across `devices` homogeneous simulated devices.
/// The [`GpuRunResult`] is built from the *canonical* merged report, so its
/// fields are bit-identical to [`run_join_dyn`] on the same input; the
/// [`simjoin::FleetReport`] carries the per-shard view and the fleet
/// makespan.
///
/// # Panics
/// Panics on unsupported dimensionality, invalid configuration, or an empty
/// fleet (`devices == 0`).
pub fn run_join_dyn_sharded(
    points: &DynPoints,
    config: SelfJoinConfig,
    devices: usize,
    strategy: simjoin::ShardStrategy,
) -> (GpuRunResult, simjoin::FleetReport) {
    run_join_dyn_sharded_with(points, config, devices, strategy, &sj_telemetry::NULL)
}

/// [`run_join_dyn_sharded`] recording executor, kernel, and per-device fleet
/// telemetry to `telemetry`.
pub fn run_join_dyn_sharded_with(
    points: &DynPoints,
    config: SelfJoinConfig,
    devices: usize,
    strategy: simjoin::ShardStrategy,
    telemetry: &dyn Telemetry,
) -> (GpuRunResult, simjoin::FleetReport) {
    match points.dims() {
        2 => run_join_sharded_fixed(
            &points.as_fixed::<2>().unwrap(),
            config,
            devices,
            strategy,
            telemetry,
        ),
        3 => run_join_sharded_fixed(
            &points.as_fixed::<3>().unwrap(),
            config,
            devices,
            strategy,
            telemetry,
        ),
        4 => run_join_sharded_fixed(
            &points.as_fixed::<4>().unwrap(),
            config,
            devices,
            strategy,
            telemetry,
        ),
        5 => run_join_sharded_fixed(
            &points.as_fixed::<5>().unwrap(),
            config,
            devices,
            strategy,
            telemetry,
        ),
        6 => run_join_sharded_fixed(
            &points.as_fixed::<6>().unwrap(),
            config,
            devices,
            strategy,
            telemetry,
        ),
        d => panic!("unsupported dimensionality {d}"),
    }
}

fn run_join_hybrid_fixed<const N: usize>(
    points: &[[f32; N]],
    config: SelfJoinConfig,
    policy: &simjoin::HybridPolicy,
    telemetry: &dyn Telemetry,
) -> (GpuRunResult, simjoin::HybridReport) {
    let start = Instant::now();
    let label = config.label();
    let join = SelfJoin::new(points, config)
        .expect("join configuration must be valid")
        .with_telemetry(telemetry);
    let outcome = join
        .run_hybrid(policy)
        .expect("hybrid join execution must succeed");
    let warp_cv = outcome.report.warp_stats().map(|s| s.cv()).unwrap_or(0.0);
    (
        GpuRunResult {
            label,
            response_s: outcome.report.response_time_s(),
            wee: outcome.report.wee(),
            pairs: outcome.result.len(),
            batches: outcome.report.num_batches,
            distance_calcs: outcome.report.distance_calcs(),
            warp_cv,
            sim_wall: start.elapsed(),
        },
        outcome.hybrid,
    )
}

/// Runs the join through the hybrid CPU/GPU co-executor. The
/// [`GpuRunResult`] is built from the *canonical* report, so its fields are
/// bit-identical to [`run_join_dyn`] on the same input for any split; the
/// [`simjoin::HybridReport`] carries the cut and the per-backend costs.
///
/// # Panics
/// Panics on unsupported dimensionality, invalid configuration, or a failed
/// differential check.
pub fn run_join_dyn_hybrid(
    points: &DynPoints,
    config: SelfJoinConfig,
    policy: &simjoin::HybridPolicy,
    telemetry: &dyn Telemetry,
) -> (GpuRunResult, simjoin::HybridReport) {
    macro_rules! dims {
        ($($n:literal),*) => {
            match points.dims() {
                $($n => run_join_hybrid_fixed(
                    &points.as_fixed::<$n>().unwrap(),
                    config,
                    policy,
                    telemetry,
                ),)*
                d => panic!("unsupported dimensionality {d}"),
            }
        };
    }
    dims!(2, 3, 4, 5, 6)
}

fn run_join_sharded_chaos_fixed<const N: usize>(
    points: &[[f32; N]],
    config: SelfJoinConfig,
    devices: usize,
    strategy: simjoin::ShardStrategy,
    faults: &[(usize, warpsim::FaultSchedule)],
    telemetry: &dyn Telemetry,
) -> Result<(GpuRunResult, simjoin::FleetReport), String> {
    let start = Instant::now();
    let label = config.label();
    let mut fleet = warpsim::DeviceFleet::homogeneous(devices, config.gpu);
    for (device, schedule) in faults {
        fleet = fleet.with_fault_schedule(*device, schedule.clone());
    }
    let join = SelfJoin::new(points, config)
        .expect("join configuration must be valid")
        .with_telemetry(telemetry);
    let outcome = join
        .run_on_fleet(&fleet, strategy)
        .map_err(|e| e.to_string())?;
    let warp_cv = outcome.report.warp_stats().map(|s| s.cv()).unwrap_or(0.0);
    Ok((
        GpuRunResult {
            label,
            response_s: outcome.report.response_time_s(),
            wee: outcome.report.wee(),
            pairs: outcome.result.len(),
            batches: outcome.report.num_batches,
            distance_calcs: outcome.report.distance_calcs(),
            warp_cv,
            sim_wall: start.elapsed(),
        },
        outcome.fleet,
    ))
}

/// Runs a GPU join sharded across `devices` homogeneous simulated devices
/// with per-device fault schedules attached — the failover benchmark path.
/// `Err` carries the typed error's rendering — an acceptable chaos outcome,
/// unlike a wrong result.
pub fn run_join_dyn_sharded_chaos(
    points: &DynPoints,
    config: SelfJoinConfig,
    devices: usize,
    strategy: simjoin::ShardStrategy,
    faults: &[(usize, warpsim::FaultSchedule)],
    telemetry: &dyn Telemetry,
) -> Result<(GpuRunResult, simjoin::FleetReport), String> {
    macro_rules! dims {
        ($($n:literal),*) => {
            match points.dims() {
                $($n => run_join_sharded_chaos_fixed(
                    &points.as_fixed::<$n>().unwrap(),
                    config,
                    devices,
                    strategy,
                    faults,
                    telemetry,
                ),)*
                d => panic!("unsupported dimensionality {d}"),
            }
        };
    }
    dims!(2, 3, 4, 5, 6)
}

fn run_join_chaos_fixed<const N: usize>(
    points: &[[f32; N]],
    config: SelfJoinConfig,
    plane: &warpsim::FaultPlane,
    telemetry: &dyn Telemetry,
) -> Result<(GpuRunResult, Option<simjoin::DegradationReport>), String> {
    let start = Instant::now();
    let label = config.label();
    let join = SelfJoin::new(points, config)
        .expect("join configuration must be valid")
        .with_telemetry(telemetry)
        .with_fault_plane(plane);
    let outcome = join.run().map_err(|e| e.to_string())?;
    let warp_cv = outcome.report.warp_stats().map(|s| s.cv()).unwrap_or(0.0);
    let degradation = outcome.report.degradation.clone();
    Ok((
        GpuRunResult {
            label,
            response_s: outcome.report.response_time_s(),
            wee: outcome.report.wee(),
            pairs: outcome.result.len(),
            batches: outcome.report.num_batches,
            distance_calcs: outcome.report.distance_calcs(),
            warp_cv,
            sim_wall: start.elapsed(),
        },
        degradation,
    ))
}

/// Runs a GPU join with a fault plane attached. `Err` carries the typed
/// error's rendering — an acceptable chaos outcome, unlike a wrong result.
pub fn run_join_dyn_chaos(
    points: &DynPoints,
    config: SelfJoinConfig,
    plane: &warpsim::FaultPlane,
    telemetry: &dyn Telemetry,
) -> Result<(GpuRunResult, Option<simjoin::DegradationReport>), String> {
    match points.dims() {
        2 => run_join_chaos_fixed(&points.as_fixed::<2>().unwrap(), config, plane, telemetry),
        3 => run_join_chaos_fixed(&points.as_fixed::<3>().unwrap(), config, plane, telemetry),
        4 => run_join_chaos_fixed(&points.as_fixed::<4>().unwrap(), config, plane, telemetry),
        5 => run_join_chaos_fixed(&points.as_fixed::<5>().unwrap(), config, plane, telemetry),
        6 => run_join_chaos_fixed(&points.as_fixed::<6>().unwrap(), config, plane, telemetry),
        d => panic!("unsupported dimensionality {d}"),
    }
}

fn run_superego_fixed<const N: usize>(
    points: &[[f32; N]],
    epsilon: f32,
    cpu: &CpuModel,
    cost: &warpsim::CostModel,
    telemetry: &dyn Telemetry,
) -> CpuRunResult {
    let outcome = super_ego_join_with(points, &SuperEgoConfig::new(epsilon), telemetry);
    let model_s = cpu.model_seconds(&outcome.stats, N as u32, cost);
    if telemetry.is_enabled() {
        telemetry.record(
            sj_telemetry::Event::new("superego", "run_summary")
                .u64("pairs", outcome.pairs.len() as u64)
                .u64("threads", outcome.threads as u64)
                .f64("model_s", model_s)
                .f64("host_wall_s", outcome.wall.as_secs_f64()),
        );
    }
    CpuRunResult {
        model_s,
        wall_s: outcome.wall.as_secs_f64(),
        pairs: outcome.pairs.len(),
        distance_calcs: outcome.stats.distance_calcs,
    }
}

/// Runs SUPER-EGO on a dimension-erased dataset and converts its operation
/// counts to model seconds with the same cost table the GPU uses.
pub fn run_superego_dyn(
    points: &DynPoints,
    epsilon: f32,
    cpu: &CpuModel,
    cost: &warpsim::CostModel,
) -> CpuRunResult {
    run_superego_dyn_with(points, epsilon, cpu, cost, &sj_telemetry::NULL)
}

/// [`run_superego_dyn`] recording SUPER-EGO phase telemetry to `telemetry`.
pub fn run_superego_dyn_with(
    points: &DynPoints,
    epsilon: f32,
    cpu: &CpuModel,
    cost: &warpsim::CostModel,
    telemetry: &dyn Telemetry,
) -> CpuRunResult {
    match points.dims() {
        2 => run_superego_fixed(
            &points.as_fixed::<2>().unwrap(),
            epsilon,
            cpu,
            cost,
            telemetry,
        ),
        3 => run_superego_fixed(
            &points.as_fixed::<3>().unwrap(),
            epsilon,
            cpu,
            cost,
            telemetry,
        ),
        4 => run_superego_fixed(
            &points.as_fixed::<4>().unwrap(),
            epsilon,
            cpu,
            cost,
            telemetry,
        ),
        5 => run_superego_fixed(
            &points.as_fixed::<5>().unwrap(),
            epsilon,
            cpu,
            cost,
            telemetry,
        ),
        6 => run_superego_fixed(
            &points.as_fixed::<6>().unwrap(),
            epsilon,
            cpu,
            cost,
            telemetry,
        ),
        d => panic!("unsupported dimensionality {d}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sjdata::DatasetSpec;

    #[test]
    fn gpu_and_cpu_find_the_same_pairs() {
        let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
        let pts = spec.generate(2_000);
        let eps = 0.6;
        let gpu = run_join_dyn(&pts, SelfJoinConfig::optimized(eps));
        let cpu = run_superego_dyn(
            &pts,
            eps,
            &CpuModel::default(),
            &warpsim::CostModel::default(),
        );
        assert_eq!(gpu.pairs, cpu.pairs);
        assert!(gpu.response_s > 0.0);
        assert!(cpu.model_s > 0.0);
    }

    #[test]
    fn sharded_canonical_result_matches_single_device_bit_for_bit() {
        let spec = DatasetSpec::by_name("Expo2D2M").unwrap();
        let pts = spec.generate(1_200);
        let eps = spec.epsilons[2];
        let config = SelfJoinConfig::optimized(eps).with_batching(simjoin::BatchingConfig {
            batch_result_capacity: 20_000,
            ..simjoin::BatchingConfig::default()
        });
        let single = run_join_dyn(&pts, config.clone());
        for devices in [1usize, 4] {
            let (sharded, fleet) = run_join_dyn_sharded(
                &pts,
                config.clone(),
                devices,
                simjoin::ShardStrategy::WorkloadAware,
            );
            assert_eq!(sharded.pairs, single.pairs);
            assert_eq!(sharded.batches, single.batches);
            assert_eq!(sharded.distance_calcs, single.distance_calcs);
            assert_eq!(sharded.response_s.to_bits(), single.response_s.to_bits());
            assert_eq!(sharded.wee.to_bits(), single.wee.to_bits());
            assert_eq!(sharded.warp_cv.to_bits(), single.warp_cv.to_bits());
            assert_eq!(fleet.shards.len(), devices);
            assert!(fleet.makespan_s <= single.response_s + 1e-12);
        }
    }

    #[test]
    fn all_supported_dims_run() {
        for name in ["Unif2D2M", "Unif3D2M", "Unif4D2M", "Unif5D2M", "Unif6D2M"] {
            let spec = DatasetSpec::by_name(name).unwrap();
            let pts = spec.generate(800);
            let eps = spec.epsilons[2];
            let r = run_join_dyn(&pts, SelfJoinConfig::new(eps));
            assert!(r.wee > 0.0 && r.wee <= 1.0, "{name}");
        }
    }
}
