//! Dataset calibration tool: reports neighbor-count statistics per dataset
//! and ε, used to keep the scaled sweeps in the paper's
//! neighbors-per-point regimes.
//!
//! ```text
//! dataset-stats [--scale <f>] [DATASET]...
//! ```

use epsgrid::DynPoints;
use sj_bench::table::Table;
use sjdata::DatasetSpec;

fn neighbor_stats<const N: usize>(pts: &[[f32; N]], eps: f32) -> (f64, u64, usize) {
    let grid = epsgrid::GridIndex::build(pts, eps).expect("grid build");
    let stride = (pts.len() / 2000).max(1);
    let mut total = 0u64;
    let mut sampled = 0usize;
    for pid in (0..pts.len()).step_by(stride) {
        grid.for_each_candidate_of(pid, |cand| {
            if cand != pid && epsgrid::within_epsilon(&pts[pid], &pts[cand], eps) {
                total += 1;
            }
        });
        sampled += 1;
    }
    let mean = total as f64 / sampled as f64;
    let est_pairs = (mean * pts.len() as f64) as u64;
    (mean, est_pairs, grid.num_cells())
}

fn stats_dyn(pts: &DynPoints, eps: f32) -> (f64, u64, usize) {
    match pts.dims() {
        2 => neighbor_stats(&pts.as_fixed::<2>().unwrap(), eps),
        3 => neighbor_stats(&pts.as_fixed::<3>().unwrap(), eps),
        4 => neighbor_stats(&pts.as_fixed::<4>().unwrap(), eps),
        5 => neighbor_stats(&pts.as_fixed::<5>().unwrap(), eps),
        6 => neighbor_stats(&pts.as_fixed::<6>().unwrap(), eps),
        d => panic!("unsupported dims {d}"),
    }
}

fn main() {
    let mut scale = 1.0f64;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale <f>")
            }
            other => names.push(other.to_string()),
        }
    }
    let specs: Vec<DatasetSpec> = if names.is_empty() {
        DatasetSpec::table1()
    } else {
        names
            .iter()
            .map(|n| DatasetSpec::by_name(n).unwrap_or_else(|| panic!("unknown dataset {n}")))
            .collect()
    };
    let mut t = Table::new(vec![
        "dataset",
        "|D|",
        "eps",
        "mean neighbors",
        "est. pairs",
        "non-empty cells",
    ]);
    for spec in specs {
        let n = ((spec.default_points as f64 * scale) as usize).max(500);
        let pts = spec.generate(n);
        for &eps in &spec.epsilons {
            let (mean, pairs, cells) = stats_dyn(&pts, eps);
            t.row(vec![
                spec.name.clone(),
                n.to_string(),
                format!("{eps}"),
                format!("{mean:.1}"),
                pairs.to_string(),
                cells.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
}
