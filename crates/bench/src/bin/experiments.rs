//! The experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--quick | --scale <f>] [--eps-stride <n>] [all|table1|fig9|table3|fig10|table4|fig11|table5|fig12|table6|fig13|ablations]...
//! ```
//!
//! With no experiment names, runs everything. Output is markdown on stdout;
//! tee it into `EXPERIMENTS.md` material. Each experiment also writes a
//! schema-versioned telemetry document to `results/<name>_telemetry.json`
//! (disable with `--no-telemetry`; the sink never changes results).

use sj_bench::experiments::{ExperimentScale, Experiments};

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--quick] [--scale <factor>] [--eps-stride <n>] [--no-telemetry] [EXPERIMENT]...\n\
         experiments: all, table1, fig9, table3, fig10, table4, fig11, table5, fig12, table6, fig13, ablations, chaos\n\
         (chaos is not part of `all`: it exercises the fault-injection plane and resilient recovery)"
    );
    std::process::exit(2);
}

fn main() {
    let mut scale = ExperimentScale::full();
    let mut names: Vec<String> = Vec::new();
    let mut telemetry = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = ExperimentScale::quick(),
            "--no-telemetry" => telemetry = false,
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale.points_scale = v.parse().unwrap_or_else(|_| usage());
            }
            "--eps-stride" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale.eps_stride = v.parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        names.push("all".into());
    }
    let mut exp = Experiments::new(scale);
    if telemetry {
        exp.artifact_dir = Some("results".into());
    }
    println!(
        "# Experiment suite (points_scale = {}, eps_stride = {})",
        scale.points_scale, scale.eps_stride
    );
    for name in names {
        match name.as_str() {
            "all" => drop(exp.run_all()),
            "table1" => drop(exp.table1()),
            "fig9" => drop(exp.fig9()),
            "table3" => drop(exp.table3()),
            "fig10" => drop(exp.fig10()),
            "table4" => drop(exp.table4()),
            "fig11" => drop(exp.fig11()),
            "table5" => drop(exp.table5()),
            "fig12" => drop(exp.fig12()),
            "table6" => drop(exp.table6()),
            "fig13" => drop(exp.fig13()),
            "ablations" => drop(exp.ablations()),
            "chaos" => drop(exp.chaos()),
            _ => usage(),
        }
    }
}
