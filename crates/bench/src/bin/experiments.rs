//! The experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--quick | --scale <f>] [--eps-stride <n>] [--jobs <n>] \
//!             [--host-jobs <n>] [--step-mode stepped|runlength] \
//!             [--devices <n>] [--sort-backend host|device] \
//!             [all|table1|fig9|table3|fig10|table4|fig11|table5|fig12|table6|fig13|ablations]...
//! ```
//!
//! With no experiment names, runs everything. Output is markdown on stdout;
//! tee it into `EXPERIMENTS.md` material. Each experiment also writes a
//! schema-versioned telemetry document to `results/<name>_telemetry.json`
//! (disable with `--no-telemetry`; the sink never changes results), and
//! every invocation records host wall-clock times per experiment — plus a
//! stepped-vs-run-length micro-benchmark of a fully converged 32-lane warp —
//! to `results/bench_baseline.json`.
//!
//! Neither `--jobs`, `--host-jobs`, `--step-mode`, `--devices`, nor
//! `--sort-backend` can change any table: sweep cells are reassembled in
//! input order, the intra-join layers merge in plan order, the two step
//! modes are bit-identical, the sharded executor's canonical merged report
//! is device-count invariant, and the device sort/scan pre-pass is
//! differentially tested against the host planner (its cost lands only in
//! telemetry), so stdout diffs clean across all five knobs (CI verifies the
//! step modes, `--devices 1` vs `--devices 4`, host vs device sorting, and
//! `--host-jobs 1` vs `--host-jobs 4`).
//!
//! `--jobs` parallelizes *across* sweep cells; `--host-jobs` parallelizes
//! *inside* each join (fleet shards, batches, warps). Passing `--host-jobs`
//! without an explicit `--jobs` pins the sweep pool to one worker so the
//! two layers don't nest and intra-join scaling is what the wall-clock
//! measures.

use std::time::Instant;

use simjoin::SortBackend;
use sj_bench::experiments::{ExperimentScale, Experiments};
use warpsim::StepMode;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--quick] [--scale <factor>] [--eps-stride <n>] [--jobs <n>] [--host-jobs <n>] [--step-mode stepped|runlength] [--devices <n>] [--lose-device <d>] [--sort-backend host|device] [--exec-mode gpu|cpu|hybrid] [--no-telemetry] [EXPERIMENT]...\n\
         experiments: all, table1, fig9, table3, fig10, table4, fig11, table5, fig12, table6, fig13, ablations, chaos, scaling, failover, hybrid, serve\n\
         (chaos, scaling, failover, hybrid, and serve are not part of `all`: chaos exercises the fault-injection plane,\n\
          scaling shards the join across a simulated multi-device fleet, failover compares reshard\n\
          recovery against CPU degradation after a mid-join device loss, hybrid sweeps the CPU/GPU\n\
          co-executor's split fraction against the measured auto cut, serve replays a churn-and-query\n\
          request stream through the always-on daemon with and without ε-coalescing; --lose-device <d> injects a\n\
          device-lost fault into every fleet run — requires --devices > d; --exec-mode hybrid routes\n\
          every single-device cell through the co-executor — tables still diff clean;\n\
          --jobs spreads sweep cells across workers, --host-jobs threads the inside of each join —\n\
          both leave every table and telemetry artifact bit-identical)"
    );
    std::process::exit(2);
}

/// Wall-clock of one fully converged 32-lane warp scanning `cands`
/// candidates per lane, per step mode — the headline case for the
/// run-length fast path.
fn fastpath_micro(cands: u32) -> (f64, f64) {
    use warpsim::lane::FixedWorkLane;
    use warpsim::{execute_warp_with, LaneSink, Op, OpKind};
    const LANES: u32 = 32;
    const ITERS: u32 = 200;
    let op = Op::new(OpKind::Distance, 18);
    let time = |mode: StepMode| {
        let start = Instant::now();
        for _ in 0..ITERS {
            let mut lanes: Vec<FixedWorkLane> =
                (0..LANES).map(|_| FixedWorkLane::new(cands, op)).collect();
            let mut sink = LaneSink::new();
            std::hint::black_box(execute_warp_with(&mut lanes, LANES, &mut sink, mode));
        }
        start.elapsed().as_secs_f64() / ITERS as f64
    };
    (time(StepMode::Stepped), time(StepMode::RunLength))
}

/// Wall-clock of the on-device primitive chains (radix argsort + exclusive
/// scan over a heavy-tailed workload vector), per step mode — the cost of
/// choosing `--sort-backend device`, recorded next to the fast-path micro.
fn primitives_micro(n: usize) -> (f64, f64) {
    use warpsim::{device_exclusive_scan, device_radix_argsort, DEFAULT_DIGIT_BITS};
    const ITERS: u32 = 20;
    let gpu = warpsim::GpuConfig::default();
    let keys: Vec<u128> = (0..n)
        .map(|i| {
            if i % 17 == 0 {
                500_000 + i as u128
            } else {
                (i as u128 * 13) % 64
            }
        })
        .collect();
    let values: Vec<u64> = keys.iter().map(|&k| k as u64 & 0xFFFF).collect();
    let time = |mode: StepMode| {
        let opts = warpsim::LaunchOptions::default().with_step_mode(mode);
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(device_radix_argsort(&gpu, &keys, DEFAULT_DIGIT_BITS, &opts))
                .expect("argsort");
            std::hint::black_box(device_exclusive_scan(&gpu, &values, &opts)).expect("scan");
        }
        start.elapsed().as_secs_f64() / ITERS as f64
    };
    (time(StepMode::Stepped), time(StepMode::RunLength))
}

/// Multi-device scaling rows recorded into the baseline artifact: the same
/// sweep as the `scaling` experiment, pinned to quick scale so the recorded
/// makespans (model seconds, machine-independent) stay comparable no matter
/// what `--scale` the invocation used.
fn devices_scaling_rows() -> Vec<sj_bench::experiments::ScalingPoint> {
    Experiments::new(ExperimentScale::quick()).scaling_points()
}

/// Failover comparison rows recorded into the baseline artifact, pinned to
/// quick scale for the same reason: the acceptance row is the `reshard`
/// makespan landing strictly below `degrade` on the same lost-device run.
fn failover_rows() -> Vec<sj_bench::experiments::FailoverPoint> {
    Experiments::new(ExperimentScale::quick()).failover_points()
}

/// Hybrid co-execution rows recorded into the baseline artifact, pinned to
/// quick scale as above: the acceptance row is the `auto` makespan landing
/// strictly below both the `gpu-only` and `cpu-only` rows on the skewed
/// workload.
fn hybrid_rows() -> Vec<sj_bench::experiments::HybridPoint> {
    Experiments::new(ExperimentScale::quick()).hybrid_points()
}

/// Host-parallel wall-clock rows recorded into the baseline artifact,
/// pinned to quick scale: the same single-device join at `host_jobs`
/// 1/2/4/8. These are the only host-wall-clock rows keyed to a
/// results-invariant knob — the acceptance row is `host_jobs = 4` landing
/// well below the `host_jobs = 1` wall-clock while model seconds and pairs
/// stay bit-identical (asserted inside the sweep).
fn host_parallel_rows() -> Vec<sj_bench::experiments::HostParallelPoint> {
    Experiments::new(ExperimentScale::quick()).host_parallel_points()
}

/// Serve-daemon rows recorded into the baseline artifact, pinned to quick
/// scale: the identical request stream through the coalesced admission
/// queue and the serial one-launch-per-request baseline. The acceptance
/// row is the coalesced launch model seconds landing strictly below the
/// serial row's (asserted inside the sweep, with identical answers).
fn serve_rows() -> Vec<sj_bench::experiments::ServePoint> {
    Experiments::new(ExperimentScale::quick()).serve_points()
}

fn write_baseline(
    scale: ExperimentScale,
    jobs: usize,
    host_jobs: usize,
    step_mode: StepMode,
    sort_backend: SortBackend,
    timings: &[(String, f64)],
) {
    const FASTPATH_CANDS: u32 = 2_048;
    let (stepped_s, runlength_s) = fastpath_micro(FASTPATH_CANDS);
    let speedup = if runlength_s > 0.0 {
        stepped_s / runlength_s
    } else {
        f64::INFINITY
    };
    let mut json = String::from("{\n  \"schema\": \"bench_baseline/1\",\n");
    json.push_str(&format!(
        "  \"points_scale\": {},\n  \"eps_stride\": {},\n  \"jobs\": {},\n  \"host_jobs\": {},\n  \"step_mode\": \"{}\",\n  \"sort_backend\": \"{}\",\n",
        scale.points_scale,
        scale.eps_stride,
        jobs,
        host_jobs,
        step_mode.name(),
        sort_backend.label()
    ));
    json.push_str("  \"experiments\": [\n");
    for (i, (name, wall)) in timings.iter().enumerate() {
        let sep = if i + 1 < timings.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"sim_wall_s\": {wall:.6}}}{sep}\n"
        ));
    }
    json.push_str("  ],\n");
    let scaling = devices_scaling_rows();
    json.push_str("  \"devices_scaling\": [\n");
    for (i, p) in scaling.iter().enumerate() {
        let sep = if i + 1 < scaling.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"devices\": {}, \"partition\": \"{}\", \"makespan_model_s\": {:.9}, \
             \"workload_imbalance\": {:.6}, \"jain_fairness\": {:.6}, \"canonical_model_s\": {:.9}}}{sep}\n",
            p.devices, p.partition, p.makespan_s, p.imbalance, p.jain, p.canonical_s
        ));
    }
    json.push_str("  ],\n");
    let failover = failover_rows();
    json.push_str("  \"failover\": [\n");
    for (i, p) in failover.iter().enumerate() {
        let sep = if i + 1 < failover.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"makespan_model_s\": {:.9}, \"pairs\": {}, \
             \"reshard_rounds\": {}, \"reassigned_units\": {}, \"cpu_points\": {}}}{sep}\n",
            p.mode, p.makespan_s, p.pairs, p.reshard_rounds, p.reassigned_units, p.cpu_points
        ));
    }
    json.push_str("  ],\n");
    let hybrid = hybrid_rows();
    json.push_str("  \"hybrid\": [\n");
    for (i, p) in hybrid.iter().enumerate() {
        let sep = if i + 1 < hybrid.len() { "," } else { "" };
        let fraction = p
            .cpu_fraction
            .map_or("null".to_string(), |f| format!("{f:.2}"));
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"cpu_fraction\": {fraction}, \"units\": {}, \"cut\": {}, \
             \"gpu_units\": {}, \"cpu_units\": {}, \"gpu_model_s\": {:.9}, \
             \"cpu_model_s\": {:.9}, \"makespan_model_s\": {:.9}, \"pairs\": {}}}{sep}\n",
            p.mode,
            p.units,
            p.cut,
            p.gpu_units,
            p.cpu_units,
            p.gpu_s,
            p.cpu_s,
            p.makespan_s,
            p.pairs
        ));
    }
    json.push_str("  ],\n");
    let host_parallel = host_parallel_rows();
    json.push_str("  \"host_parallel\": [\n");
    for (i, p) in host_parallel.iter().enumerate() {
        let sep = if i + 1 < host_parallel.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"host_jobs\": {}, \"sim_wall_s\": {:.6}, \"speedup\": {:.2}, \
             \"canonical_model_s\": {:.9}, \"pairs\": {}}}{sep}\n",
            p.host_jobs, p.wall_s, p.speedup, p.model_s, p.pairs
        ));
    }
    json.push_str("  ],\n");
    let serve = serve_rows();
    json.push_str("  \"serve\": [\n");
    for (i, p) in serve.iter().enumerate() {
        let sep = if i + 1 < serve.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"requests\": {}, \"admitted\": {}, \"launches\": {}, \
             \"coalesced_requests\": {}, \"cache_hits\": {}, \"incremental_reindexes\": {}, \
             \"full_rebuilds\": {}, \"execute_model_s\": {:.9}, \"total_p50_s\": {:.9}, \
             \"total_p99_s\": {:.9}}}{sep}\n",
            p.mode,
            p.requests,
            p.admitted,
            p.launches,
            p.coalesced_requests,
            p.cache_hits,
            p.incremental_reindexes,
            p.full_rebuilds,
            p.execute_model_s,
            p.total_p50_s,
            p.total_p99_s
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"warp_fastpath\": {{\"lanes\": 32, \"candidates\": {FASTPATH_CANDS}, \
         \"stepped_s\": {stepped_s:.9}, \"runlength_s\": {runlength_s:.9}, \
         \"speedup\": {speedup:.2}}},\n"
    ));
    const PRIMITIVES_N: usize = 4_096;
    let (prim_stepped_s, prim_runlength_s) = primitives_micro(PRIMITIVES_N);
    json.push_str(&format!(
        "  \"primitives\": {{\"n\": {PRIMITIVES_N}, \
         \"stepped_s\": {prim_stepped_s:.9}, \"runlength_s\": {prim_runlength_s:.9}}}\n}}\n"
    ));
    let path = std::path::Path::new("results").join("bench_baseline.json");
    let write = std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, json));
    match write {
        Ok(()) => eprintln!(
            "[baseline] wrote {} (fastpath speedup {speedup:.1}x)",
            path.display()
        ),
        Err(e) => eprintln!("[baseline] failed to write {}: {e}", path.display()),
    }
}

fn main() {
    let mut scale = ExperimentScale::full();
    let mut names: Vec<String> = Vec::new();
    let mut telemetry = true;
    let mut jobs: Option<usize> = None;
    let mut host_jobs: Option<usize> = None;
    let mut step_mode = StepMode::default();
    let mut devices = 1usize;
    let mut lose_device: Option<usize> = None;
    let mut sort_backend = SortBackend::default();
    let mut exec_mode = simjoin::ExecMode::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = ExperimentScale::quick(),
            "--no-telemetry" => telemetry = false,
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale.points_scale = v.parse().unwrap_or_else(|_| usage());
            }
            "--eps-stride" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale.eps_stride = v.parse().unwrap_or_else(|_| usage());
            }
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                jobs = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--host-jobs" => {
                let v = args.next().unwrap_or_else(|| usage());
                host_jobs = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--step-mode" => {
                let v = args.next().unwrap_or_else(|| usage());
                step_mode = StepMode::parse(&v).unwrap_or_else(|| usage());
            }
            "--devices" => {
                let v = args.next().unwrap_or_else(|| usage());
                devices = v.parse().unwrap_or_else(|_| usage());
                if devices == 0 {
                    usage();
                }
            }
            "--lose-device" => {
                let v = args.next().unwrap_or_else(|| usage());
                lose_device = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--sort-backend" => {
                let v = args.next().unwrap_or_else(|| usage());
                sort_backend = SortBackend::by_name(&v).unwrap_or_else(|| usage());
            }
            "--exec-mode" => {
                let v = args.next().unwrap_or_else(|| usage());
                exec_mode = simjoin::ExecMode::by_name(&v).unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        names.push("all".into());
    }
    let mut exp = Experiments::new(scale);
    if telemetry {
        exp.artifact_dir = Some("results".into());
    }
    if let Some(jobs) = jobs {
        exp.jobs = jobs.max(1);
    }
    if let Some(hj) = host_jobs {
        exp.host_jobs = hj;
        // Intra-join scaling is what --host-jobs measures; unless the
        // caller also pinned --jobs, drop the sweep-cell pool to a single
        // worker so the two thread layers don't nest (and oversubscribe).
        if jobs.is_none() {
            exp.jobs = 1;
        }
    }
    exp.step_mode = step_mode;
    exp.devices = devices;
    exp.lose_device = lose_device;
    exp.sort_backend = sort_backend;
    exp.exec_mode = exec_mode;
    if let Some(lost) = lose_device {
        if lost >= devices || devices < 2 {
            eprintln!("--lose-device {lost} needs --devices > {}", lost.max(1));
            std::process::exit(2);
        }
    }
    println!(
        "# Experiment suite (points_scale = {}, eps_stride = {})",
        scale.points_scale, scale.eps_stride
    );
    let mut timings: Vec<(String, f64)> = Vec::new();
    for name in names {
        let start = Instant::now();
        match name.as_str() {
            "all" => drop(exp.run_all()),
            "table1" => drop(exp.table1()),
            "fig9" => drop(exp.fig9()),
            "table3" => drop(exp.table3()),
            "fig10" => drop(exp.fig10()),
            "table4" => drop(exp.table4()),
            "fig11" => drop(exp.fig11()),
            "table5" => drop(exp.table5()),
            "fig12" => drop(exp.fig12()),
            "table6" => drop(exp.table6()),
            "fig13" => drop(exp.fig13()),
            "ablations" => drop(exp.ablations()),
            "chaos" => drop(exp.chaos()),
            "scaling" => drop(exp.scaling()),
            "failover" => drop(exp.failover()),
            "hybrid" => drop(exp.hybrid()),
            "serve" => drop(exp.serve()),
            _ => usage(),
        }
        timings.push((name, start.elapsed().as_secs_f64()));
    }
    write_baseline(
        scale,
        exp.jobs,
        exp.host_jobs,
        step_mode,
        sort_backend,
        &timings,
    );
}
