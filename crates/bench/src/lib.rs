//! # sj-bench — the benchmark harness regenerating the paper's evaluation
//!
//! Two complementary layers:
//!
//! - the [`harness`] module runs join variants over dimension-erased
//!   datasets and converts simulated-GPU and modeled-CPU executions to a
//!   common model-time scale;
//! - the [`experiments`] module regenerates **every table and figure** of
//!   the paper's §IV (Tables I and III–VI, Figures 9–13) as printed series,
//!   via the `experiments` binary;
//! - the Criterion benches (`benches/fig*.rs`) track the wall-clock cost of
//!   representative harness configurations for regression purposes.
//!
//! Model times are *not* expected to match the paper's absolute seconds
//! (the substrate is a simulator, see `DESIGN.md` §2); the comparisons that
//! must hold are the relative ones, recorded in `EXPERIMENTS.md`.

pub mod cpu_model;
pub mod experiments;
pub mod harness;
pub mod table;

pub use cpu_model::CpuModel;
pub use harness::{run_join_dyn, run_superego_dyn, CpuRunResult, GpuRunResult};
