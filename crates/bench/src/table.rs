//! Minimal markdown table printing for experiment output.

/// A markdown table under construction.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for i in 0..cols {
                s.push(' ');
                s.push_str(&format!("{:w$}", cells[i], w = widths[i]));
                s.push_str(" |");
            }
            s
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<w$}-|", "", w = w + 1));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a model time in engineering units.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.1} µs", seconds * 1e6)
    }
}

/// Formats an efficiency as a percentage.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}", fraction * 100.0)
}

/// Formats a speedup factor.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}×")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "23"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name") && lines[0].contains("value"));
        assert!(lines[1].starts_with("|-"));
        assert_eq!(lines[2].len(), lines[3].len(), "rows align");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.5 µs");
        assert_eq!(fmt_pct(0.755), "75.5");
        assert_eq!(fmt_speedup(2.0), "2.00×");
    }
}
