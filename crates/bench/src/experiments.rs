//! Regeneration of every table and figure in the paper's evaluation (§IV).
//!
//! Each function prints (and returns) one artifact:
//!
//! | function | paper artifact |
//! |---|---|
//! | [`Experiments::table1`] | Table I — dataset inventory |
//! | [`Experiments::fig9`] | Fig. 9 — response time vs ε: GPUCALCGLOBAL vs UNICOMP vs LID-UNICOMP |
//! | [`Experiments::table3`] | Table III — WEE & time for the three patterns |
//! | [`Experiments::fig10`] | Fig. 10 — k = 1 vs k = 8 |
//! | [`Experiments::table4`] | Table IV — WEE & time, k = 1 vs k = 8 |
//! | [`Experiments::fig11`] | Fig. 11 — baseline vs SORTBYWL vs WORKQUEUE |
//! | [`Experiments::table5`] | Table V — WEE & time, baseline vs WORKQUEUE (k = 8) |
//! | [`Experiments::fig12`] | Fig. 12 — real-world datasets vs SUPER-EGO |
//! | [`Experiments::table6`] | Table VI — WEE & time, all variants, real-world datasets |
//! | [`Experiments::fig13`] | Fig. 13 — speedups of the combined optimization |
//! | [`Experiments::ablations`] | DESIGN.md §5 — scheduler order, k sweep, estimator, atomic cost |
//! | [`Experiments::scaling`] | DESIGN.md §7 — multi-device sharding, workload-aware vs equal-count |

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::Arc;

use epsgrid::DynPoints;
use simjoin::{
    AccessPattern, Balancing, BatchingConfig, ExecMode, HybridPolicy, RecoveryPolicy, Reply,
    Request, SelfJoinConfig, ServeConfig, ServeSession, ShardStrategy, SortBackend,
};
use sj_telemetry::{Event, JsonTelemetry, Telemetry};
use sjdata::DatasetSpec;
use warpsim::{CostModel, FaultSchedule, IssueOrder, StepMode};

use crate::cpu_model::CpuModel;
use crate::harness::{
    run_join_dyn, run_join_dyn_chaos, run_join_dyn_hybrid, run_join_dyn_sharded,
    run_join_dyn_sharded_chaos, run_join_dyn_sharded_with, run_join_dyn_with, run_superego_dyn,
    run_superego_dyn_with, CpuRunResult, GpuRunResult,
};
use crate::table::{fmt_pct, fmt_speedup, fmt_time, Table};

/// Scale knobs for the experiment suite.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Multiplier on each dataset's scaled default size.
    pub points_scale: f64,
    /// Keep every `eps_stride`-th ε of each sweep (1 = full sweep).
    pub eps_stride: usize,
}

impl ExperimentScale {
    /// Full-scale run (the numbers recorded in `EXPERIMENTS.md`).
    pub fn full() -> Self {
        Self {
            points_scale: 1.0,
            eps_stride: 1,
        }
    }

    /// Quick run for smoke-testing the suite.
    pub fn quick() -> Self {
        Self {
            points_scale: 0.15,
            eps_stride: 2,
        }
    }
}

/// The experiment driver.
#[derive(Debug, Clone)]
pub struct Experiments {
    /// Scale knobs.
    pub scale: ExperimentScale,
    /// CPU comparator model.
    pub cpu: CpuModel,
    /// Batching parameters shared by all runs (`b_s` scaled down from the
    /// paper's 10⁸ to suit simulator-scale result sets).
    pub batching: BatchingConfig,
    /// Directory receiving one schema-versioned telemetry JSON document per
    /// experiment (`None` disables artifact writing — runs are unaffected
    /// either way; the sink is observation-only).
    pub artifact_dir: Option<PathBuf>,
    /// Host worker threads used for the (dataset, ε, variant) sweep cells of
    /// the figure experiments. Table rows and result ordering are
    /// deterministic regardless; with `jobs > 1` only the *interleaving* of
    /// telemetry events across concurrent cells varies between runs.
    pub jobs: usize,
    /// Host worker threads used *inside* each join (fleet shards,
    /// within-device batches, warp micro-execution) — the
    /// [`SelfJoinConfig::with_host_jobs`] knob, `0` = auto. Orthogonal to
    /// `jobs`, which parallelizes across sweep cells: canonical reports,
    /// tables, and telemetry artifacts are bit-identical for any value.
    pub host_jobs: usize,
    /// Warp simulator step mode for every GPU run (host-side only; simulated
    /// results are bit-identical across modes — CI diffs both).
    pub step_mode: StepMode,
    /// Simulated devices every GPU run is sharded across (workload-aware
    /// partitioning). The canonical merged report is device-count invariant,
    /// so tables are bit-identical for any value — CI diffs 1 vs 4.
    pub devices: usize,
    /// Where the planner's sorts and prefix sums run (host folds or the
    /// on-device kernel chains). Planning is backend-invariant — the device
    /// pre-pass shows up only in telemetry — so tables are bit-identical
    /// across backends too; CI diffs host vs device.
    pub sort_backend: SortBackend,
    /// Lose this device (`DeviceLost` on its first launch) in every sharded
    /// run — the failover soak knob. Requires `devices > 1` to matter; with
    /// the default reshard recovery the canonical merged report is still
    /// bit-identical (re-executed units are re-parameterized identically
    /// and a device loss adds no backoff), so tables diff clean against a
    /// healthy fleet — CI verifies `--devices 4 --lose-device 1` vs
    /// `--devices 4`.
    pub lose_device: Option<usize>,
    /// Execution substrate for every (single-device) GPU cell: `Gpu` runs
    /// the plan on the simulated device alone; `Hybrid`/`Cpu` route it
    /// through the differential co-executor. The canonical report is
    /// split-invariant, so tables are bit-identical across modes — CI diffs
    /// `--exec-mode hybrid` vs `--exec-mode gpu` on fig9.
    pub exec_mode: ExecMode,
    sink: RefCell<Option<Arc<JsonTelemetry>>>,
}

/// The `Sync` subset of the driver that executes one sweep cell, so cells
/// can run on [`par_map`] worker threads (`Experiments` itself holds a
/// `RefCell` and cannot cross threads).
struct CellRunner {
    sink: Option<Arc<JsonTelemetry>>,
    cpu: CpuModel,
    devices: usize,
    lose_device: Option<usize>,
    exec_mode: ExecMode,
}

impl CellRunner {
    fn run(&self, pts: &DynPoints, config: SelfJoinConfig) -> GpuRunResult {
        if self.devices > 1 {
            return self.run_sharded(pts, config, self.devices, simjoin::ShardStrategy::default());
        }
        if self.exec_mode != ExecMode::Gpu {
            let policy = match self.exec_mode {
                ExecMode::Cpu => HybridPolicy::cpu_only(),
                _ => HybridPolicy::default(),
            };
            let telemetry: &dyn Telemetry = match self.sink.as_ref() {
                Some(sink) => sink.as_ref(),
                None => &sj_telemetry::NULL,
            };
            let (r, _) = run_join_dyn_hybrid(
                pts,
                config.with_exec_mode(self.exec_mode),
                &policy,
                telemetry,
            );
            if let Some(sink) = self.sink.as_ref() {
                record_gpu_run(sink.as_ref(), &r);
            }
            return r;
        }
        let Some(sink) = self.sink.as_ref() else {
            return run_join_dyn(pts, config);
        };
        let r = run_join_dyn_with(pts, config, sink.as_ref());
        record_gpu_run(sink.as_ref(), &r);
        r
    }

    /// Runs one cell sharded across `devices` simulated devices, returning
    /// the canonical merged result (bit-identical to [`Self::run`]) plus the
    /// per-shard fleet report.
    fn run_sharded(
        &self,
        pts: &DynPoints,
        config: SelfJoinConfig,
        devices: usize,
        strategy: simjoin::ShardStrategy,
    ) -> GpuRunResult {
        self.run_sharded_with_fleet(pts, config, devices, strategy)
            .0
    }

    fn run_sharded_with_fleet(
        &self,
        pts: &DynPoints,
        config: SelfJoinConfig,
        devices: usize,
        strategy: simjoin::ShardStrategy,
    ) -> (GpuRunResult, simjoin::FleetReport) {
        // The failover soak knob: kill the chosen device on its first
        // launch. Reshard recovery must absorb it without changing the
        // canonical merged report.
        if let Some(lost) = self.lose_device.filter(|&d| devices > 1 && d < devices) {
            let faults = vec![(lost, FaultSchedule::new().device_lost_at(0))];
            let telemetry: &dyn Telemetry = match self.sink.as_ref() {
                Some(sink) => sink.as_ref(),
                None => &sj_telemetry::NULL,
            };
            let (r, fleet) =
                run_join_dyn_sharded_chaos(pts, config, devices, strategy, &faults, telemetry)
                    .expect("a lost device must be recovered, not surfaced");
            if let Some(sink) = self.sink.as_ref() {
                record_gpu_run(sink.as_ref(), &r);
            }
            return (r, fleet);
        }
        match self.sink.as_ref() {
            Some(sink) => {
                let (r, fleet) =
                    run_join_dyn_sharded_with(pts, config, devices, strategy, sink.as_ref());
                record_gpu_run(sink.as_ref(), &r);
                (r, fleet)
            }
            None => run_join_dyn_sharded(pts, config, devices, strategy),
        }
    }

    fn sego(&self, pts: &DynPoints, eps: f32) -> CpuRunResult {
        match self.sink.as_ref() {
            Some(s) => {
                run_superego_dyn_with(pts, eps, &self.cpu, &CostModel::default(), s.as_ref())
            }
            None => run_superego_dyn(pts, eps, &self.cpu, &CostModel::default()),
        }
    }
}

/// Records the canonical summary event of one GPU cell run.
fn record_gpu_run(sink: &JsonTelemetry, r: &GpuRunResult) {
    sink.record(
        Event::new("bench", "gpu_run")
            .str("variant", r.label.clone())
            .u64("pairs", r.pairs as u64)
            .u64("batches", r.batches as u64)
            .u64("distance_calcs", r.distance_calcs)
            .f64("response_model_s", r.response_s)
            .f64("wee", r.wee)
            .f64("warp_cv", r.warp_cv)
            .f64("sim_wall_s", r.sim_wall.as_secs_f64()),
    );
}

/// One sweep cell of a figure experiment: a GPU variant run or the SUPER-EGO
/// CPU comparator, against the dataset at `usize`-indexed position.
// A figure's cell list holds tens of entries for the duration of one sweep,
// so the Gpu variant's inline config outweighing Cpu is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Cell {
    Gpu(usize, SelfJoinConfig),
    Cpu(usize, f32),
}

/// The outcome of a [`Cell`].
enum CellOut {
    Gpu(GpuRunResult),
    Cpu(CpuRunResult),
}

impl CellOut {
    fn gpu(self) -> GpuRunResult {
        match self {
            CellOut::Gpu(r) => r,
            CellOut::Cpu(_) => panic!("expected a GPU cell"),
        }
    }

    fn cpu(self) -> CpuRunResult {
        match self {
            CellOut::Cpu(r) => r,
            CellOut::Gpu(_) => panic!("expected a CPU cell"),
        }
    }
}

// Sweep cells run on `simjoin::pool::par_map` — the one shared pool behind
// the hybrid CPU backend and the executor's intra-join layers. Results come
// back in input order no matter how cells were scheduled, so every table
// built from them is deterministic.
use simjoin::pool::par_map;

impl Experiments {
    /// Creates a driver at the given scale.
    pub fn new(scale: ExperimentScale) -> Self {
        Self {
            scale,
            artifact_dir: None,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            host_jobs: 0,
            step_mode: StepMode::default(),
            devices: 1,
            sort_backend: SortBackend::default(),
            lose_device: None,
            exec_mode: ExecMode::default(),
            sink: RefCell::new(None),
            cpu: CpuModel::default(),
            batching: BatchingConfig {
                batch_result_capacity: 2_000_000,
                // Scale bridging: the paper's 2M-point batches always
                // saturate the device; at simulator-scale sizes the
                // saturation floor keeps kernels large enough that batch
                // counts measure load balance, not launch overhead.
                max_batches: 8,
                // Scale bridging: preserve the paper's kernel:transfer time
                // ratio (kernels dominate, transfers hide under streams).
                // Simulator-scale kernels are short in model time while
                // result sets shrink only linearly, so the physical 12 GB/s
                // would make every heavy run transfer-bound — a regime the
                // paper's evaluation never enters.
                transfer_bandwidth: 400.0e9,
                ..BatchingConfig::default()
            },
        }
    }

    fn dataset(&self, name: &str) -> (DatasetSpec, DynPoints) {
        let spec = DatasetSpec::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
        let n = ((spec.default_points as f64 * self.scale.points_scale) as usize).max(500);
        let pts = spec.generate(n);
        (spec, pts)
    }

    fn epsilons(&self, spec: &DatasetSpec) -> Vec<f32> {
        spec.epsilons
            .iter()
            .copied()
            .step_by(self.scale.eps_stride.max(1))
            .collect()
    }

    fn config(&self, eps: f32) -> SelfJoinConfig {
        SelfJoinConfig::new(eps)
            .with_batching(self.batching)
            .with_step_mode(self.step_mode)
            .with_sort_backend(self.sort_backend)
            .with_host_jobs(self.host_jobs)
    }

    /// Snapshot of the state a sweep cell needs, detached from the
    /// non-`Sync` driver so it can cross into [`par_map`] workers.
    fn runner(&self) -> CellRunner {
        CellRunner {
            sink: self.sink.borrow().clone(),
            cpu: self.cpu,
            devices: self.devices,
            lose_device: self.lose_device,
            exec_mode: self.exec_mode,
        }
    }

    /// Opens a fresh telemetry document for `name` (no-op when
    /// `artifact_dir` is unset). Subsequent [`Self::run`] / [`Self::sego`]
    /// calls record into it until [`Self::end_experiment`].
    fn begin_experiment(&self, name: &str) {
        if self.artifact_dir.is_none() {
            return;
        }
        let sink = JsonTelemetry::new(name);
        sink.record(
            Event::new("bench", "experiment")
                .str("name", name)
                .f64("points_scale", self.scale.points_scale)
                .u64("eps_stride", self.scale.eps_stride as u64),
        );
        *self.sink.borrow_mut() = Some(Arc::new(sink));
    }

    /// Writes the open telemetry document to
    /// `<artifact_dir>/<name>_telemetry.json` and closes it.
    fn end_experiment(&self, name: &str) {
        let Some(sink) = self.sink.borrow_mut().take() else {
            return;
        };
        let Some(dir) = self.artifact_dir.as_ref() else {
            return;
        };
        let path = dir.join(format!("{name}_telemetry.json"));
        match sink.write_to_file(&path) {
            Ok(()) => {
                println!(
                    "[telemetry] wrote {} ({} events)",
                    path.display(),
                    sink.len()
                );
            }
            Err(e) => eprintln!("[telemetry] failed to write {}: {e}", path.display()),
        }
    }

    fn run(&self, pts: &DynPoints, config: SelfJoinConfig) -> GpuRunResult {
        self.runner().run(pts, config)
    }

    /// Executes a flat list of sweep [`Cell`]s on `self.jobs` workers and
    /// returns their outcomes in input order.
    fn sweep(&self, data: &[(DatasetSpec, DynPoints)], cells: Vec<Cell>) -> Vec<CellOut> {
        let runner = self.runner();
        par_map(self.jobs, cells, |cell| match cell {
            Cell::Gpu(di, config) => CellOut::Gpu(runner.run(&data[di].1, config)),
            Cell::Cpu(di, eps) => CellOut::Cpu(runner.sego(&data[di].1, eps)),
        })
    }

    /// Table I: the dataset inventory (paper size vs scaled size).
    pub fn table1(&self) -> String {
        let mut t = Table::new(vec![
            "Dataset",
            "n",
            "|D| (paper)",
            "|D| (scaled)",
            "family",
        ]);
        for spec in DatasetSpec::table1() {
            let n = ((spec.default_points as f64 * self.scale.points_scale) as usize).max(500);
            t.row(vec![
                spec.name.clone(),
                spec.dims.to_string(),
                spec.paper_points.to_string(),
                n.to_string(),
                format!("{:?}", spec.family),
            ]);
        }
        emit("Table I — datasets", t.render())
    }

    /// Fig. 9: response time vs ε for the three cell access patterns
    /// (k = 1) on Expo2D/Expo6D/Unif2D/Unif6D.
    pub fn fig9(&self) -> String {
        self.begin_experiment("fig9");
        let mut t = Table::new(vec![
            "dataset",
            "eps",
            "GPUCALCGLOBAL",
            "UNICOMP",
            "LID-UNICOMP",
            "best",
        ]);
        let data: Vec<_> = ["Expo2D2M", "Expo6D2M", "Unif2D2M", "Unif6D2M"]
            .into_iter()
            .map(|n| self.dataset(n))
            .collect();
        let mut rows = Vec::new();
        let mut cells = Vec::new();
        for (di, (spec, _)) in data.iter().enumerate() {
            for eps in self.epsilons(spec) {
                rows.push((di, eps));
                cells.push(Cell::Gpu(di, self.config(eps)));
                cells.push(Cell::Gpu(
                    di,
                    self.config(eps).with_pattern(AccessPattern::Unicomp),
                ));
                cells.push(Cell::Gpu(
                    di,
                    self.config(eps).with_pattern(AccessPattern::LidUnicomp),
                ));
            }
        }
        let mut results = self.sweep(&data, cells).into_iter();
        for (di, eps) in rows {
            let full = results.next().unwrap().gpu();
            let uni = results.next().unwrap().gpu();
            let lid = results.next().unwrap().gpu();
            let best = [
                ("GPUCALCGLOBAL", full.response_s),
                ("UNICOMP", uni.response_s),
                ("LID-UNICOMP", lid.response_s),
            ]
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
            t.row(vec![
                data[di].0.name.clone(),
                format!("{eps}"),
                fmt_time(full.response_s),
                fmt_time(uni.response_s),
                fmt_time(lid.response_s),
                best.to_string(),
            ]);
        }
        let out = emit(
            "Fig. 9 — cell access patterns, response time vs eps (k = 1)",
            t.render(),
        );
        self.end_experiment("fig9");
        out
    }

    /// Table III: WEE and response time of the three patterns at one
    /// selected ε per dataset.
    pub fn table3(&self) -> String {
        self.begin_experiment("table3");
        let mut t = Table::new(vec![
            "dataset",
            "eps",
            "GCG WEE(%)",
            "GCG time",
            "UNI WEE(%)",
            "UNI time",
            "LID WEE(%)",
            "LID time",
        ]);
        for name in ["Expo2D2M", "Expo6D2M", "Unif2D2M", "Unif6D2M"] {
            let (spec, pts) = self.dataset(name);
            let eps = selected_eps(&spec);
            let full = self.run(&pts, self.config(eps));
            let uni = self.run(&pts, self.config(eps).with_pattern(AccessPattern::Unicomp));
            let lid = self.run(
                &pts,
                self.config(eps).with_pattern(AccessPattern::LidUnicomp),
            );
            t.row(vec![
                name.to_string(),
                format!("{eps}"),
                fmt_pct(full.wee),
                fmt_time(full.response_s),
                fmt_pct(uni.wee),
                fmt_time(uni.response_s),
                fmt_pct(lid.wee),
                fmt_time(lid.response_s),
            ]);
        }
        let out = emit(
            "Table III — WEE and time of the cell access patterns",
            t.render(),
        );
        self.end_experiment("table3");
        out
    }

    /// Fig. 10: k = 1 vs k = 8 for GPUCALCGLOBAL.
    pub fn fig10(&self) -> String {
        self.begin_experiment("fig10");
        let mut t = Table::new(vec!["dataset", "eps", "k=1", "k=8", "k=8 speedup"]);
        let data: Vec<_> = ["Expo2D2M", "Expo6D2M", "Unif2D2M", "Unif6D2M"]
            .into_iter()
            .map(|n| self.dataset(n))
            .collect();
        let mut rows = Vec::new();
        let mut cells = Vec::new();
        for (di, (spec, _)) in data.iter().enumerate() {
            for eps in self.epsilons(spec) {
                rows.push((di, eps));
                cells.push(Cell::Gpu(di, self.config(eps)));
                cells.push(Cell::Gpu(di, self.config(eps).with_k(8)));
            }
        }
        let mut results = self.sweep(&data, cells).into_iter();
        for (di, eps) in rows {
            let k1 = results.next().unwrap().gpu();
            let k8 = results.next().unwrap().gpu();
            t.row(vec![
                data[di].0.name.clone(),
                format!("{eps}"),
                fmt_time(k1.response_s),
                fmt_time(k8.response_s),
                fmt_speedup(k1.response_s / k8.response_s),
            ]);
        }
        let out = emit(
            "Fig. 10 — thread granularity (k = 1 vs k = 8), GPUCALCGLOBAL",
            t.render(),
        );
        self.end_experiment("fig10");
        out
    }

    /// Table IV: WEE and time for k = 1 vs k = 8 at one ε per dataset.
    pub fn table4(&self) -> String {
        self.begin_experiment("table4");
        let mut t = Table::new(vec![
            "dataset",
            "eps",
            "k=1 WEE(%)",
            "k=1 time",
            "k=8 WEE(%)",
            "k=8 time",
        ]);
        for name in ["Expo2D2M", "Expo6D2M", "Unif2D2M", "Unif6D2M"] {
            let (spec, pts) = self.dataset(name);
            let eps = selected_eps(&spec);
            let k1 = self.run(&pts, self.config(eps));
            let k8 = self.run(&pts, self.config(eps).with_k(8));
            t.row(vec![
                name.to_string(),
                format!("{eps}"),
                fmt_pct(k1.wee),
                fmt_time(k1.response_s),
                fmt_pct(k8.wee),
                fmt_time(k8.response_s),
            ]);
        }
        let out = emit("Table IV — WEE and time, k = 1 vs k = 8", t.render());
        self.end_experiment("table4");
        out
    }

    /// Fig. 11: baseline vs SORTBYWL vs WORKQUEUE (k = 1, FullWindow).
    pub fn fig11(&self) -> String {
        self.begin_experiment("fig11");
        let mut t = Table::new(vec![
            "dataset",
            "eps",
            "GPUCALCGLOBAL",
            "SORTBYWL",
            "WORKQUEUE",
            "best",
        ]);
        let data: Vec<_> = ["Expo2D2M", "Expo6D2M", "Unif2D2M", "Unif6D2M"]
            .into_iter()
            .map(|n| self.dataset(n))
            .collect();
        let mut rows = Vec::new();
        let mut cells = Vec::new();
        for (di, (spec, _)) in data.iter().enumerate() {
            for eps in self.epsilons(spec) {
                rows.push((di, eps));
                cells.push(Cell::Gpu(di, self.config(eps)));
                cells.push(Cell::Gpu(
                    di,
                    self.config(eps).with_balancing(Balancing::SortByWorkload),
                ));
                cells.push(Cell::Gpu(
                    di,
                    self.config(eps).with_balancing(Balancing::WorkQueue),
                ));
            }
        }
        let mut results = self.sweep(&data, cells).into_iter();
        for (di, eps) in rows {
            let base = results.next().unwrap().gpu();
            let sorted = results.next().unwrap().gpu();
            let queued = results.next().unwrap().gpu();
            let best = [
                ("GPUCALCGLOBAL", base.response_s),
                ("SORTBYWL", sorted.response_s),
                ("WORKQUEUE", queued.response_s),
            ]
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0;
            t.row(vec![
                data[di].0.name.clone(),
                format!("{eps}"),
                fmt_time(base.response_s),
                fmt_time(sorted.response_s),
                fmt_time(queued.response_s),
                best.to_string(),
            ]);
        }
        let out = emit("Fig. 11 — workload sorting and the work queue", t.render());
        self.end_experiment("fig11");
        out
    }

    /// Table V: WEE and time, GPUCALCGLOBAL vs WORKQUEUE with k = 8.
    pub fn table5(&self) -> String {
        self.begin_experiment("table5");
        let mut t = Table::new(vec![
            "dataset",
            "eps",
            "GCG WEE(%)",
            "GCG time",
            "WQ k=8 WEE(%)",
            "WQ k=8 time",
        ]);
        for name in ["Expo2D2M", "Expo6D2M", "Unif2D2M", "Unif6D2M"] {
            let (spec, pts) = self.dataset(name);
            let eps = selected_eps(&spec);
            let base = self.run(&pts, self.config(eps));
            let wq = self.run(
                &pts,
                self.config(eps)
                    .with_balancing(Balancing::WorkQueue)
                    .with_k(8),
            );
            t.row(vec![
                name.to_string(),
                format!("{eps}"),
                fmt_pct(base.wee),
                fmt_time(base.response_s),
                fmt_pct(wq.wee),
                fmt_time(wq.response_s),
            ]);
        }
        let out = emit(
            "Table V — WEE and time, baseline vs WORKQUEUE (k = 8)",
            t.render(),
        );
        self.end_experiment("table5");
        out
    }

    /// Fig. 12: the real-world datasets, all WORKQUEUE combinations vs the
    /// baseline and vs SUPER-EGO.
    pub fn fig12(&self) -> String {
        self.begin_experiment("fig12");
        let mut t = Table::new(vec![
            "dataset",
            "eps",
            "GPUCALCGLOBAL",
            "SUPER-EGO",
            "WQ",
            "WQ+LID",
            "WQ+k8",
            "WQ+LID+k8",
        ]);
        let data: Vec<_> = ["SW2DA", "SW2DB", "SW3DA", "SW3DB", "Gaia"]
            .into_iter()
            .map(|n| self.dataset(n))
            .collect();
        let mut rows = Vec::new();
        let mut cells = Vec::new();
        for (di, (spec, _)) in data.iter().enumerate() {
            for eps in self.epsilons(spec) {
                rows.push((di, eps));
                cells.push(Cell::Gpu(di, self.config(eps)));
                cells.push(Cell::Cpu(di, eps));
                cells.push(Cell::Gpu(
                    di,
                    self.config(eps).with_balancing(Balancing::WorkQueue),
                ));
                cells.push(Cell::Gpu(
                    di,
                    self.config(eps)
                        .with_balancing(Balancing::WorkQueue)
                        .with_pattern(AccessPattern::LidUnicomp),
                ));
                cells.push(Cell::Gpu(
                    di,
                    self.config(eps)
                        .with_balancing(Balancing::WorkQueue)
                        .with_k(8),
                ));
                cells.push(Cell::Gpu(
                    di,
                    self.config(eps)
                        .with_balancing(Balancing::WorkQueue)
                        .with_pattern(AccessPattern::LidUnicomp)
                        .with_k(8),
                ));
            }
        }
        let mut results = self.sweep(&data, cells).into_iter();
        for (di, eps) in rows {
            let base = results.next().unwrap().gpu();
            let sego = results.next().unwrap().cpu();
            let wq = results.next().unwrap().gpu();
            let wq_lid = results.next().unwrap().gpu();
            let wq_k8 = results.next().unwrap().gpu();
            let all = results.next().unwrap().gpu();
            t.row(vec![
                data[di].0.name.clone(),
                format!("{eps}"),
                fmt_time(base.response_s),
                fmt_time(sego.model_s),
                fmt_time(wq.response_s),
                fmt_time(wq_lid.response_s),
                fmt_time(wq_k8.response_s),
                fmt_time(all.response_s),
            ]);
        }
        let out = emit(
            "Fig. 12 — real-world datasets, response time vs eps",
            t.render(),
        );
        self.end_experiment("fig12");
        out
    }

    /// Table VI: WEE and time for all variants on the real-world datasets.
    pub fn table6(&self) -> String {
        self.begin_experiment("table6");
        let mut t = Table::new(vec![
            "dataset",
            "eps",
            "GCG WEE(%)",
            "GCG time",
            "WQ WEE(%)",
            "WQ+LID WEE(%)",
            "WQ+k8 WEE(%)",
            "WQ+LID+k8 WEE(%)",
            "WQ+LID+k8 time",
        ]);
        for name in ["SW2DA", "SW2DB", "SW3DA", "SW3DB", "Gaia"] {
            let (spec, pts) = self.dataset(name);
            let eps = selected_eps(&spec);
            let base = self.run(&pts, self.config(eps));
            let wq = self.run(&pts, self.config(eps).with_balancing(Balancing::WorkQueue));
            let wq_lid = self.run(
                &pts,
                self.config(eps)
                    .with_balancing(Balancing::WorkQueue)
                    .with_pattern(AccessPattern::LidUnicomp),
            );
            let wq_k8 = self.run(
                &pts,
                self.config(eps)
                    .with_balancing(Balancing::WorkQueue)
                    .with_k(8),
            );
            let all = self.run(
                &pts,
                self.config(eps)
                    .with_balancing(Balancing::WorkQueue)
                    .with_pattern(AccessPattern::LidUnicomp)
                    .with_k(8),
            );
            t.row(vec![
                name.to_string(),
                format!("{eps}"),
                fmt_pct(base.wee),
                fmt_time(base.response_s),
                fmt_pct(wq.wee),
                fmt_pct(wq_lid.wee),
                fmt_pct(wq_k8.wee),
                fmt_pct(all.wee),
                fmt_time(all.response_s),
            ]);
        }
        let out = emit("Table VI — WEE and time on real-world datasets", t.render());
        self.end_experiment("table6");
        out
    }

    /// Fig. 13: speedups of WORKQUEUE + LID-UNICOMP + k = 8 over SUPER-EGO
    /// (a) and over GPUCALCGLOBAL (b), across every dataset and ε.
    pub fn fig13(&self) -> String {
        self.begin_experiment("fig13");
        let mut t = Table::new(vec!["dataset", "eps", "vs SUPER-EGO", "vs GPUCALCGLOBAL"]);
        let mut vs_cpu: Vec<f64> = Vec::new();
        let mut vs_gpu: Vec<f64> = Vec::new();
        let all_names: Vec<String> = DatasetSpec::table1().into_iter().map(|s| s.name).collect();
        let data: Vec<_> = all_names.iter().map(|n| self.dataset(n)).collect();
        let mut rows = Vec::new();
        let mut cells = Vec::new();
        for (di, (spec, _)) in data.iter().enumerate() {
            for eps in self.epsilons(spec) {
                rows.push((di, eps));
                cells.push(Cell::Gpu(di, self.config(eps)));
                cells.push(Cell::Cpu(di, eps));
                cells.push(Cell::Gpu(
                    di,
                    self.config(eps)
                        .with_balancing(Balancing::WorkQueue)
                        .with_pattern(AccessPattern::LidUnicomp)
                        .with_k(8),
                ));
            }
        }
        let mut results = self.sweep(&data, cells).into_iter();
        for (di, eps) in rows {
            let base = results.next().unwrap().gpu();
            let sego = results.next().unwrap().cpu();
            let best = results.next().unwrap().gpu();
            let s_cpu = sego.model_s / best.response_s;
            let s_gpu = base.response_s / best.response_s;
            vs_cpu.push(s_cpu);
            vs_gpu.push(s_gpu);
            t.row(vec![
                data[di].0.name.clone(),
                format!("{eps}"),
                fmt_speedup(s_cpu),
                fmt_speedup(s_gpu),
            ]);
        }
        let summary = |v: &[f64]| {
            let max = v.iter().copied().fold(f64::MIN, f64::max);
            let avg = v.iter().sum::<f64>() / v.len().max(1) as f64;
            (max, avg)
        };
        let (cpu_max, cpu_avg) = summary(&vs_cpu);
        let (gpu_max, gpu_avg) = summary(&vs_gpu);
        let mut out = t.render();
        out.push_str(&format!(
            "\nSummary: vs SUPER-EGO max {} avg {} (paper: 10.7×, 2.5×); \
             vs GPUCALCGLOBAL max {} avg {} (paper: 9.7×, 1.6×)\n",
            fmt_speedup(cpu_max),
            fmt_speedup(cpu_avg),
            fmt_speedup(gpu_max),
            fmt_speedup(gpu_avg),
        ));
        let out = emit("Fig. 13 — speedup of WORKQUEUE + LID-UNICOMP + k = 8", out);
        self.end_experiment("fig13");
        out
    }

    /// Ablations from DESIGN.md §5.
    pub fn ablations(&self) -> String {
        self.begin_experiment("ablations");
        let mut out = String::new();

        // (a) Warp issue order under SORTBYWL: isolates the WORKQUEUE's
        // forced execution order from its packing.
        let (spec, pts) = self.dataset("Expo2D2M");
        let eps = selected_eps(&spec);
        let mut t = Table::new(vec!["variant", "issue order", "time", "WEE(%)"]);
        let base = self.run(&pts, self.config(eps));
        t.row(vec![
            "baseline".into(),
            "arbitrary".into(),
            fmt_time(base.response_s),
            fmt_pct(base.wee),
        ]);
        for (label, order) in [
            ("arbitrary", IssueOrder::Arbitrary { seed: 0xC0FFEE }),
            ("in-order", IssueOrder::InOrder),
            ("reversed", IssueOrder::Reversed),
        ] {
            let r = self.run(
                &pts,
                self.config(eps)
                    .with_balancing(Balancing::SortByWorkload)
                    .with_issue_override(order),
            );
            t.row(vec![
                "SORTBYWL".into(),
                label.into(),
                fmt_time(r.response_s),
                fmt_pct(r.wee),
            ]);
        }
        out.push_str(&emit(
            "Ablation A — warp issue order under SORTBYWL (Expo2D)",
            t.render(),
        ));

        // (b) k sweep beyond the paper's 1-vs-8.
        let mut t = Table::new(vec!["k", "time", "WEE(%)", "warps cv"]);
        for k in [1u32, 2, 4, 8, 16, 32] {
            let r = self.run(&pts, self.config(eps).with_k(k));
            t.row(vec![
                k.to_string(),
                fmt_time(r.response_s),
                fmt_pct(r.wee),
                format!("{:.3}", r.warp_cv),
            ]);
        }
        out.push_str(&emit(
            "Ablation B — thread granularity sweep (Expo2D)",
            t.render(),
        ));

        // (c) Estimator strategy: strided vs heaviest-prefix sampling.
        let mut t = Table::new(vec![
            "strategy",
            "estimated pairs",
            "batches",
            "actual pairs",
        ]);
        for (label, balancing) in [
            ("strided (baseline)", Balancing::None),
            ("prefix (workqueue)", Balancing::WorkQueue),
        ] {
            let cfg = self.config(eps).with_balancing(balancing);
            let (estimate, plan) = {
                let fixed = pts.as_fixed::<2>().unwrap();
                let join = simjoin::SelfJoin::new(&fixed, cfg.clone()).unwrap();
                join.plan()
            };
            let r = self.run(&pts, cfg);
            t.row(vec![
                label.to_string(),
                estimate.estimated_total.to_string(),
                plan.num_batches().to_string(),
                r.pairs.to_string(),
            ]);
        }
        out.push_str(&emit(
            "Ablation C — result-size estimator strategies (Expo2D)",
            t.render(),
        ));

        // (d) Atomic-cost sensitivity of the WORKQUEUE.
        let mut t = Table::new(vec!["atomic cost (cycles)", "time", "WEE(%)"]);
        for atomic in [10u32, 40, 160, 640] {
            let mut cfg = self.config(eps).with_balancing(Balancing::WorkQueue);
            cfg.gpu.cost.atomic = atomic;
            let r = self.run(&pts, cfg);
            t.row(vec![
                atomic.to_string(),
                fmt_time(r.response_s),
                fmt_pct(r.wee),
            ]);
        }
        out.push_str(&emit(
            "Ablation D — work-queue atomic cost sensitivity (Expo2D)",
            t.render(),
        ));

        // (e) Fixed vs workload-balanced queue chunking (paper §V future
        // work): per-batch result spread and total time.
        let mut t = Table::new(vec!["chunking", "batches", "max/mean batch pairs", "time"]);
        let tight = BatchingConfig {
            batch_result_capacity: 500_000,
            ..self.batching
        };
        for (label, balanced) in [("fixed (paper)", false), ("balanced (§V)", true)] {
            let cfg = self
                .config(eps)
                .with_balancing(Balancing::WorkQueue)
                .with_batching(BatchingConfig {
                    balanced_queue: balanced,
                    ..tight
                });
            let fixed_pts = pts.as_fixed::<2>().unwrap();
            let outcome = simjoin::SelfJoin::new(&fixed_pts, cfg)
                .unwrap()
                .run()
                .unwrap();
            let batch_pairs: Vec<f64> = outcome
                .report
                .batches
                .iter()
                .map(|b| b.pairs as f64)
                .collect();
            let mean = batch_pairs.iter().sum::<f64>() / batch_pairs.len().max(1) as f64;
            let max = batch_pairs.iter().copied().fold(0.0f64, f64::max);
            t.row(vec![
                label.to_string(),
                outcome.report.num_batches.to_string(),
                format!("{:.2}", if mean > 0.0 { max / mean } else { 0.0 }),
                fmt_time(outcome.report.response_time_s()),
            ]);
        }
        out.push_str(&emit(
            "Ablation E — fixed vs workload-balanced queue chunking (Expo2D)",
            t.render(),
        ));
        self.end_experiment("ablations");
        out
    }

    /// Runs everything, in paper order.
    /// Resilience table (not part of the paper; not in `run_all`): the
    /// optimized variant under each named fault profile at a fixed seed,
    /// reporting what recovery cost and whether the result stayed exact.
    pub fn chaos(&self) -> String {
        self.begin_experiment("chaos");
        let mut t = Table::new(vec![
            "profile",
            "outcome",
            "pairs",
            "batches",
            "retries t/o/c",
            "stalls",
            "cpu pts",
            "time",
            "overhead",
        ]);
        let (spec, pts) = self.dataset("Expo2D2M");
        let eps = selected_eps(&spec);
        // Probe the result size, then tighten the batch capacity so the run
        // spans several launches — otherwise most schedule entries sit past
        // the last launch index and nothing injects.
        let probe = self.run(
            &pts,
            SelfJoinConfig::optimized(eps).with_batching(self.batching),
        );
        let batching = simjoin::BatchingConfig {
            batch_result_capacity: probe.pairs / 6 + 64,
            ..self.batching
        };
        let config = SelfJoinConfig::optimized(eps).with_batching(batching);
        let clean = self.run(&pts, config.clone());
        t.row(vec![
            "(none)".into(),
            "clean".into(),
            format!("{}", clean.pairs),
            format!("{}", clean.batches),
            "0/0/0".into(),
            "0".into(),
            "0".into(),
            fmt_time(clean.response_s),
            fmt_speedup(1.0),
        ]);
        for profile_name in warpsim::FaultProfile::names() {
            let profile = warpsim::FaultProfile::by_name(profile_name).expect("named profile");
            let plane = warpsim::FaultPlane::seeded(0xC4A05, &profile);
            let sink = self.sink.borrow().clone();
            let run = match sink {
                Some(s) => run_join_dyn_chaos(&pts, config.clone(), &plane, s.as_ref()),
                None => run_join_dyn_chaos(&pts, config.clone(), &plane, &sj_telemetry::NULL),
            };
            match run {
                Err(error) => t.row(vec![
                    profile_name.to_string(),
                    format!("typed error: {error}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
                Ok((r, degradation)) => {
                    assert_eq!(
                        r.pairs, clean.pairs,
                        "chaos run under `{profile_name}` lost pairs"
                    );
                    let d = degradation.unwrap_or_default();
                    t.row(vec![
                        profile_name.to_string(),
                        if d.points_degraded > 0 {
                            "degraded, exact".into()
                        } else if plane.injected_faults() > 0 {
                            "recovered, exact".into()
                        } else {
                            "clean (no fault landed)".into()
                        },
                        format!("{}", r.pairs),
                        format!("{}", r.batches),
                        format!(
                            "{}/{}/{}",
                            d.transient_retries, d.overflow_splits, d.counter_retries
                        ),
                        format!("{}", d.transfer_stalls),
                        format!("{}", d.points_degraded),
                        fmt_time(r.response_s),
                        fmt_speedup(r.response_s / clean.response_s),
                    ])
                }
            }
        }
        let out = emit(
            "Chaos — resilient executor under seeded fault profiles",
            t.render(),
        );
        self.end_experiment("chaos");
        out
    }

    /// One measured point of [`Self::scaling`]: the fleet sweep over
    /// `devices × partition strategy`, all from the same global plan.
    pub fn scaling_points(&self) -> Vec<ScalingPoint> {
        let (spec, pts) = self.dataset("Expo2D2M");
        let eps = selected_eps(&spec);
        // Probe the result size, then tighten the batch capacity so the
        // plan holds enough units for an 8-way partition to be meaningful.
        let probe = self.run(
            &pts,
            SelfJoinConfig::optimized(eps).with_batching(self.batching),
        );
        let batching = BatchingConfig {
            batch_result_capacity: probe.pairs / 24 + 64,
            max_batches: 64,
            ..self.batching
        };
        let config = SelfJoinConfig::optimized(eps).with_batching(batching);
        let runner = self.runner();
        let mut points = Vec::new();
        for devices in [1usize, 2, 4, 8] {
            for strategy in [ShardStrategy::WorkloadAware, ShardStrategy::EqualCount] {
                if devices == 1 && strategy != ShardStrategy::WorkloadAware {
                    continue;
                }
                let (r, fleet) =
                    runner.run_sharded_with_fleet(&pts, config.clone(), devices, strategy);
                if let Some(sink) = self.sink.borrow().as_ref() {
                    sink.record(
                        Event::new("bench", "scaling_run")
                            .u64("devices", devices as u64)
                            .str("partition", strategy.label())
                            .f64("makespan_model_s", fleet.makespan_s)
                            .f64("workload_imbalance", fleet.workload_imbalance())
                            .f64("jain_fairness", fleet.jain_fairness())
                            .f64("canonical_model_s", r.response_s),
                    );
                }
                points.push(ScalingPoint {
                    devices,
                    partition: strategy.label(),
                    makespan_s: fleet.makespan_s,
                    imbalance: fleet.workload_imbalance(),
                    jain: fleet.jain_fairness(),
                    canonical_s: r.response_s,
                    batches: r.batches,
                });
            }
        }
        points
    }

    /// Multi-device scaling table (not part of the paper; not in
    /// `run_all`): the optimized variant on the skewed Expo2D dataset,
    /// sharded across 1–8 simulated devices with workload-aware vs
    /// equal-count partitioning. The canonical merged time is device-count
    /// invariant by construction; what scales is the *fleet makespan*, and
    /// on skewed data the workload-aware cut should beat equal-count.
    pub fn scaling(&self) -> String {
        self.begin_experiment("scaling");
        let mut t = Table::new(vec![
            "devices",
            "partition",
            "makespan",
            "speedup",
            "imbalance",
            "jain",
            "canonical time",
            "batches",
        ]);
        let points = self.scaling_points();
        let single = points.first().map_or(0.0, |p| p.makespan_s);
        for p in &points {
            t.row(vec![
                p.devices.to_string(),
                p.partition.to_string(),
                fmt_time(p.makespan_s),
                fmt_speedup(single / p.makespan_s),
                format!("{:.3}", p.imbalance),
                format!("{:.3}", p.jain),
                fmt_time(p.canonical_s),
                p.batches.to_string(),
            ]);
        }
        let out = emit(
            "Scaling — multi-device sharding, workload-aware vs equal-count",
            t.render(),
        );
        self.end_experiment("scaling");
        out
    }

    /// One measured point of the host-parallel wall-clock sweep: the same
    /// single-device join with `host_jobs` forced to 1, 2, 4, and 8. Model
    /// seconds and the pair count are asserted bit-identical across the
    /// rows — host threads are allowed to change wall-clock only.
    pub fn host_parallel_points(&self) -> Vec<HostParallelPoint> {
        let (spec, pts) = self.dataset("Expo2D2M");
        let eps = selected_eps(&spec);
        // Same probe-and-tighten as the scaling sweep: shrink the batch
        // capacity so the plan holds enough independent units for the
        // batch-level layer to have work to spread across threads.
        let probe = self.run(
            &pts,
            SelfJoinConfig::optimized(eps).with_batching(self.batching),
        );
        let batching = BatchingConfig {
            batch_result_capacity: probe.pairs / 24 + 64,
            max_batches: 64,
            ..self.batching
        };
        let runner = self.runner();
        let mut points: Vec<HostParallelPoint> = Vec::new();
        let mut single = 0.0f64;
        let mut canonical: Option<(usize, f64)> = None;
        for host_jobs in [1usize, 2, 4, 8] {
            let config = SelfJoinConfig::optimized(eps)
                .with_batching(batching)
                .with_host_jobs(host_jobs);
            let r = runner.run(&pts, config);
            let wall = r.sim_wall.as_secs_f64();
            match canonical {
                None => canonical = Some((r.pairs, r.response_s)),
                Some((pairs, model_s)) => {
                    assert_eq!(pairs, r.pairs, "host_jobs must not change the pair count");
                    assert_eq!(
                        model_s.to_bits(),
                        r.response_s.to_bits(),
                        "host_jobs must not change model seconds"
                    );
                }
            }
            if host_jobs == 1 {
                single = wall;
            }
            points.push(HostParallelPoint {
                host_jobs,
                wall_s: wall,
                speedup: if wall > 0.0 {
                    single / wall
                } else {
                    f64::INFINITY
                },
                model_s: r.response_s,
                pairs: r.pairs,
            });
        }
        points
    }

    /// One measured point of [`Self::failover`]: the same 4-device join
    /// under a clean fleet, a mid-join device loss with reshard recovery,
    /// and the same loss with CPU degradation.
    pub fn failover_points(&self) -> Vec<FailoverPoint> {
        const DEVICES: usize = 4;
        const LOST_DEVICE: usize = 1;
        let (spec, pts) = self.dataset("Unif2D2M");
        let eps = selected_eps(&spec);
        // Tighten the batch capacity (as in the scaling sweep) so the plan
        // holds enough units that the lost device's region is non-trivial.
        let probe = self.run(
            &pts,
            SelfJoinConfig::optimized(eps).with_batching(self.batching),
        );
        let batching = BatchingConfig {
            batch_result_capacity: probe.pairs / 24 + 64,
            max_batches: 64,
            ..self.batching
        };
        let mut points = Vec::new();
        for (mode, recovery, faulted) in [
            ("clean", RecoveryPolicy::reshard(), false),
            ("reshard", RecoveryPolicy::reshard(), true),
            ("degrade", RecoveryPolicy::degrade(), true),
        ] {
            let config = SelfJoinConfig::optimized(eps)
                .with_batching(batching)
                .with_recovery(recovery);
            let faults: Vec<(usize, FaultSchedule)> = if faulted {
                vec![(LOST_DEVICE, FaultSchedule::new().device_lost_at(0))]
            } else {
                Vec::new()
            };
            let sink = self.sink.borrow().clone();
            let telemetry: &dyn Telemetry = match sink.as_ref() {
                Some(s) => s.as_ref(),
                None => &sj_telemetry::NULL,
            };
            let (r, fleet) = run_join_dyn_sharded_chaos(
                &pts,
                config,
                DEVICES,
                ShardStrategy::WorkloadAware,
                &faults,
                telemetry,
            )
            .expect("failover run must recover, not surface the loss");
            let cpu_points = fleet.recovery.cpu_last_resort_points
                + fleet
                    .shards
                    .iter()
                    .filter_map(|s| s.degradation.as_ref())
                    .map(|d| d.points_degraded)
                    .sum::<usize>();
            if let Some(s) = sink.as_ref() {
                s.record(
                    Event::new("bench", "failover_run")
                        .str("mode", mode)
                        .f64("makespan_model_s", fleet.makespan_s)
                        .u64("pairs", r.pairs as u64)
                        .u64("reshard_rounds", u64::from(fleet.recovery.reshard_rounds))
                        .u64("reassigned_units", fleet.recovery.reassigned_units as u64)
                        .u64("cpu_points", cpu_points as u64),
                );
            }
            points.push(FailoverPoint {
                mode,
                makespan_s: fleet.makespan_s,
                pairs: r.pairs,
                reshard_rounds: fleet.recovery.reshard_rounds,
                reassigned_units: fleet.recovery.reassigned_units,
                cpu_points,
            });
        }
        points
    }

    /// Failover comparison table (not part of the paper; not in `run_all`):
    /// device 1 of a 4-device fleet latches `DeviceLost` on its first
    /// launch. Re-sharding its unexecuted units onto the three survivors is
    /// compared against degrading them to the exact CPU fallback; the pair
    /// set is identical in all three rows by the exactness invariant.
    pub fn failover(&self) -> String {
        self.begin_experiment("failover");
        let mut t = Table::new(vec![
            "mode",
            "makespan",
            "inflation",
            "pairs",
            "reshard rounds",
            "units moved",
            "cpu points",
        ]);
        let points = self.failover_points();
        let clean = points.first().map_or(0.0, |p| p.makespan_s);
        for p in &points {
            t.row(vec![
                p.mode.to_string(),
                fmt_time(p.makespan_s),
                fmt_speedup(p.makespan_s / clean),
                p.pairs.to_string(),
                p.reshard_rounds.to_string(),
                p.reassigned_units.to_string(),
                p.cpu_points.to_string(),
            ]);
        }
        let out = emit(
            "Failover — one device lost mid-join: reshard vs CPU degradation",
            t.render(),
        );
        self.end_experiment("failover");
        out
    }

    /// One measured point of [`Self::hybrid`]: the co-executor on the
    /// skewed Expo2D workload at one forced split fraction (or the measured
    /// auto cut), against the same plan.
    pub fn hybrid_points(&self) -> Vec<HybridPoint> {
        let (spec, pts) = self.dataset("Expo2D2M");
        let eps = selected_eps(&spec);
        // WORKQUEUE sorting without balanced chunking leaves a light tail of
        // small units behind the heavy head — exactly the shape where
        // peeling the tail onto host workers shortens the GPU pipeline by
        // more than the tail costs on the CPU. Tighten the capacity (as in
        // the scaling sweep) so the plan holds enough units to cut.
        let probe = self.run(
            &pts,
            SelfJoinConfig::optimized(eps).with_batching(self.batching),
        );
        let batching = BatchingConfig {
            batch_result_capacity: probe.pairs / 24 + 64,
            max_batches: 64,
            ..self.batching
        };
        let config = SelfJoinConfig::optimized(eps)
            .with_batching(batching)
            .with_exec_mode(ExecMode::Hybrid);
        let sink = self.sink.borrow().clone();
        let telemetry: &dyn Telemetry = match sink.as_ref() {
            Some(s) => s.as_ref(),
            None => &sj_telemetry::NULL,
        };
        let mut points = Vec::new();
        let sweep: [(&'static str, Option<f64>); 6] = [
            ("gpu-only", Some(0.0)),
            ("f=0.25", Some(0.25)),
            ("f=0.50", Some(0.5)),
            ("f=0.75", Some(0.75)),
            ("cpu-only", Some(1.0)),
            ("auto", None),
        ];
        for (mode, fraction) in sweep {
            let mut policy = HybridPolicy::default();
            if let Some(f) = fraction {
                policy = policy.with_forced_cpu_fraction(f);
            }
            let (r, h) = run_join_dyn_hybrid(&pts, config.clone(), &policy, telemetry);
            if let Some(s) = sink.as_ref() {
                s.record(
                    Event::new("bench", "hybrid_run")
                        .str("mode", mode)
                        .f64("cpu_fraction", fraction.unwrap_or(-1.0))
                        .u64("units", h.units as u64)
                        .u64("cut", h.cut as u64)
                        .f64("gpu_model_s", h.gpu_response_s)
                        .f64("cpu_model_s", h.cpu_model_s)
                        .f64("makespan_model_s", h.makespan_s)
                        .u64("pairs", r.pairs as u64),
                );
            }
            points.push(HybridPoint {
                mode,
                cpu_fraction: fraction,
                units: h.units,
                cut: h.cut,
                gpu_units: h.gpu_units,
                cpu_units: h.cpu_units,
                gpu_s: h.gpu_response_s,
                cpu_s: h.cpu_model_s,
                makespan_s: h.makespan_s,
                pairs: r.pairs,
            });
        }
        points
    }

    /// Hybrid co-execution table (not part of the paper; not in `run_all`):
    /// the optimized variant on the skewed Expo2D dataset, co-executed
    /// across the simulated GPU and the modeled CPU backend at forced split
    /// fractions plus the measured auto cut. The pair set is identical in
    /// every row (each CPU unit is differentially checked against the GPU
    /// segment); what varies is the co-processed makespan, and the measured
    /// cut should land at or below both single-backend rows.
    pub fn hybrid(&self) -> String {
        self.begin_experiment("hybrid");
        let mut t = Table::new(vec![
            "mode",
            "cut",
            "gpu units",
            "cpu units",
            "gpu side",
            "cpu side",
            "makespan",
            "vs gpu-only",
            "pairs",
        ]);
        let points = self.hybrid_points();
        let gpu_only = points.first().map_or(0.0, |p| p.makespan_s);
        for p in &points {
            t.row(vec![
                p.mode.to_string(),
                format!("{}/{}", p.cut, p.units),
                p.gpu_units.to_string(),
                p.cpu_units.to_string(),
                fmt_time(p.gpu_s),
                fmt_time(p.cpu_s),
                fmt_time(p.makespan_s),
                fmt_speedup(gpu_only / p.makespan_s),
                p.pairs.to_string(),
            ]);
        }
        let out = emit(
            "Hybrid — CPU/GPU co-execution, forced splits vs the measured cut",
            t.render(),
        );
        self.end_experiment("hybrid");
        out
    }

    /// The serve throughput comparison: the same churn-and-query request
    /// stream through the always-on daemon in coalesced mode (admission
    /// queue merges same-ε requests into one launch, barrier-flushed by
    /// mutations) and in the serial baseline (one launch per request).
    /// Answers are asserted identical across the two modes — coalescing is
    /// a scheduling optimization, never a semantic one — and the coalesced
    /// mode must beat the serial baseline on total launch model seconds.
    pub fn serve_points(&self) -> Vec<ServePoint> {
        const ROUNDS: usize = 5;
        const BURST: usize = 6;
        let (spec, pts) = self.dataset("Expo2D2M");
        let eps = selected_eps(&spec);
        let fixed: Vec<[f32; 2]> = pts.as_fixed::<2>().expect("Expo2D is 2-D");
        let sink = self.sink.borrow().clone();
        let mut points = Vec::new();
        let mut transcripts: Vec<Vec<String>> = Vec::new();
        for (mode, coalesce) in [("coalesced", true), ("serial", false)] {
            let telemetry: &dyn Telemetry = match sink.as_ref() {
                Some(s) => s.as_ref(),
                None => &sj_telemetry::NULL,
            };
            let config = SelfJoinConfig::optimized(eps).with_batching(self.batching);
            let serve_cfg = ServeConfig {
                queue_capacity: BURST + 4,
                coalesce,
                ..ServeConfig::default()
            };
            let mut session = ServeSession::new(fixed.clone(), config, serve_cfg)
                .expect("dataset indexes at its sweep ε")
                .with_telemetry(telemetry);
            let mut responses = Vec::new();
            for round in 0..ROUNDS {
                // Churn: one insert near an existing point, one remove.
                // Mutations barrier-flush the previous round's burst.
                let seed = fixed[(round * 13) % fixed.len()];
                responses.extend(session.request(Request::Insert {
                    point: [seed[0] + 0.01, seed[1] - 0.01],
                }));
                responses.extend(session.request(Request::Remove {
                    point_id: (round % 7) as u32,
                }));
                for q in 0..BURST {
                    let pid = ((round * BURST + q) * 31 % session.num_points()) as u32;
                    responses.extend(session.request(Request::Query {
                        point_id: pid,
                        epsilon: eps,
                    }));
                }
                responses.extend(session.request(Request::Join { epsilon: eps }));
            }
            responses.extend(session.request(Request::Flush));
            let report = session.report();
            // Latency-independent answer transcript, keyed by request id.
            let transcript: Vec<String> = responses
                .iter()
                .filter_map(|r| match &r.reply {
                    Reply::Neighbors {
                        point_id,
                        neighbors,
                        ..
                    } => Some(format!("q{} p{point_id} {neighbors:?}", r.id)),
                    Reply::JoinSummary { pairs, .. } => Some(format!("j{} {pairs}", r.id)),
                    _ => None,
                })
                .collect();
            transcripts.push(transcript);
            if let Some(s) = sink.as_ref() {
                s.record(
                    Event::new("bench", "serve_mode")
                        .str("mode", mode)
                        .u64("requests", report.requests)
                        .u64("launches", report.launches)
                        .u64("coalesced_requests", report.coalesced_requests)
                        .u64("cache_hits", report.cache_hits)
                        .f64("execute_model_s", report.execute_model_s)
                        .f64("total_p50_s", report.total_p50_s)
                        .f64("total_p99_s", report.total_p99_s),
                );
            }
            points.push(ServePoint {
                mode,
                requests: report.requests,
                admitted: report.queries + report.joins,
                launches: report.launches,
                coalesced_requests: report.coalesced_requests,
                cache_hits: report.cache_hits,
                incremental_reindexes: report.incremental_reindexes,
                full_rebuilds: report.full_rebuilds,
                execute_model_s: report.execute_model_s,
                total_p50_s: report.total_p50_s,
                total_p99_s: report.total_p99_s,
            });
        }
        assert_eq!(
            transcripts[0], transcripts[1],
            "serve invariant violated: coalesced and serial modes answered differently"
        );
        points
    }

    /// Serve daemon table (not part of the paper; not in `run_all`): the
    /// coalesced admission queue vs the serial one-launch-per-request
    /// baseline on an identical churn-and-query stream. See
    /// [`Experiments::serve_points`].
    pub fn serve(&self) -> String {
        self.begin_experiment("serve");
        let mut t = Table::new(vec![
            "mode",
            "requests",
            "admitted",
            "launches",
            "coalesced",
            "cache hits",
            "reindex inc/full",
            "exec model s",
            "total p50",
            "total p99",
        ]);
        let points = self.serve_points();
        for p in &points {
            t.row(vec![
                p.mode.to_string(),
                p.requests.to_string(),
                p.admitted.to_string(),
                p.launches.to_string(),
                p.coalesced_requests.to_string(),
                p.cache_hits.to_string(),
                format!("{}/{}", p.incremental_reindexes, p.full_rebuilds),
                fmt_time(p.execute_model_s),
                fmt_time(p.total_p50_s),
                fmt_time(p.total_p99_s),
            ]);
        }
        let (coalesced, serial) = (&points[0], &points[1]);
        assert!(
            coalesced.execute_model_s < serial.execute_model_s,
            "serve acceptance violated: coalesced total {} model s is not below serial {}",
            coalesced.execute_model_s,
            serial.execute_model_s
        );
        let out = emit(
            &format!(
                "Serve — coalesced admission vs serial baseline \
                 ({:.2}x less launch time)",
                serial.execute_model_s / coalesced.execute_model_s
            ),
            t.render(),
        );
        self.end_experiment("serve");
        out
    }

    pub fn run_all(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.table1());
        out.push_str(&self.fig9());
        out.push_str(&self.table3());
        out.push_str(&self.fig10());
        out.push_str(&self.table4());
        out.push_str(&self.fig11());
        out.push_str(&self.table5());
        out.push_str(&self.fig12());
        out.push_str(&self.table6());
        out.push_str(&self.fig13());
        out.push_str(&self.ablations());
        out
    }
}

/// One measured point of the multi-device scaling sweep
/// ([`Experiments::scaling_points`]).
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Simulated devices in the fleet.
    pub devices: usize,
    /// Partition strategy label (`"workload"` or `"count"`).
    pub partition: &'static str,
    /// Fleet makespan (slowest shard) in model seconds.
    pub makespan_s: f64,
    /// Max/mean per-shard workload ratio (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Jain's fairness index of per-shard response times (1.0 = perfectly
    /// fair).
    pub jain: f64,
    /// Canonical merged response time in model seconds (device-count
    /// invariant).
    pub canonical_s: f64,
    /// Batches in the canonical merged report.
    pub batches: usize,
}

/// One measured point of the host-parallel wall-clock sweep
/// ([`Experiments::host_parallel_points`]). Wall-clock only: the canonical
/// report and model seconds are bit-identical across rows by the
/// host-parallelism invariant (asserted when the sweep runs).
#[derive(Debug, Clone, Copy)]
pub struct HostParallelPoint {
    /// Forced [`SelfJoinConfig::host_jobs`] for this row.
    pub host_jobs: usize,
    /// Host wall-clock of the join in seconds (machine-dependent).
    pub wall_s: f64,
    /// `wall_s(host_jobs = 1) / wall_s` — intra-join thread scaling.
    pub speedup: f64,
    /// Canonical response time in model seconds (identical across rows).
    pub model_s: f64,
    /// Result pairs (identical across rows).
    pub pairs: usize,
}

/// One measured point of the failover comparison
/// ([`Experiments::failover_points`]).
#[derive(Debug, Clone, Copy)]
pub struct FailoverPoint {
    /// Row label: `"clean"`, `"reshard"`, or `"degrade"`.
    pub mode: &'static str,
    /// Fleet makespan (slowest shard plus any CPU last resort) in model
    /// seconds.
    pub makespan_s: f64,
    /// Result pairs — identical across the three modes by the exactness
    /// invariant.
    pub pairs: usize,
    /// Failover re-shard rounds the recovery loop ran.
    pub reshard_rounds: u32,
    /// Plan units moved off the lost device onto survivors.
    pub reassigned_units: usize,
    /// Points executed on the exact CPU path (degradation + last resort).
    pub cpu_points: usize,
}

/// One measured point of the hybrid co-execution sweep
/// ([`Experiments::hybrid_points`]).
#[derive(Debug, Clone, Copy)]
pub struct HybridPoint {
    /// Row label: `"gpu-only"`, `"f=<fraction>"`, `"cpu-only"`, or
    /// `"auto"`.
    pub mode: &'static str,
    /// Forced CPU fraction, `None` for the measured auto cut.
    pub cpu_fraction: Option<f64>,
    /// Plan units in the workload-sorted list.
    pub units: usize,
    /// Chosen cut: units `[0, cut)` count for the GPU, `[cut, units)` for
    /// the CPU backend.
    pub cut: usize,
    /// Units the GPU side was charged for.
    pub gpu_units: usize,
    /// Units the CPU pool computed and kept.
    pub cpu_units: usize,
    /// GPU-side response time (pipeline of kept units + recovery), model
    /// seconds.
    pub gpu_s: f64,
    /// CPU-side backend model time, model seconds.
    pub cpu_s: f64,
    /// Co-processed makespan, `max(gpu, cpu)`, model seconds.
    pub makespan_s: f64,
    /// Result pairs — identical across every row by the differential check.
    pub pairs: usize,
}

/// One measured serve-daemon mode ([`Experiments::serve_points`]).
#[derive(Debug, Clone, Copy)]
pub struct ServePoint {
    /// Row label: `"coalesced"` or `"serial"`.
    pub mode: &'static str,
    /// Requests admitted or answered, including mutations and control ops.
    pub requests: u64,
    /// Launch-bearing requests (queries + whole joins).
    pub admitted: u64,
    /// Batched kernel launches the session paid for.
    pub launches: u64,
    /// Requests that shared a launch with at least one other request.
    pub coalesced_requests: u64,
    /// Requests answered from the epoch result cache without a launch.
    pub cache_hits: u64,
    /// Mutations absorbed by incremental grid maintenance.
    pub incremental_reindexes: u64,
    /// Mutations that escalated to a full grid rebuild.
    pub full_rebuilds: u64,
    /// Total launch time across the session, model seconds.
    pub execute_model_s: f64,
    /// Median request latency (queue + execute), model seconds.
    pub total_p50_s: f64,
    /// Tail request latency, model seconds.
    pub total_p99_s: f64,
}

/// The ε each table reports (the paper picks one representative ε per
/// dataset; we use the 4th entry of the sweep).
fn selected_eps(spec: &DatasetSpec) -> f32 {
    spec.epsilons[spec.epsilons.len().min(4) - 1]
}

fn emit(title: &str, body: String) -> String {
    let out = format!("\n## {title}\n\n{body}\n");
    print!("{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiments {
        Experiments::new(ExperimentScale {
            points_scale: 0.02,
            eps_stride: 6,
        })
    }

    #[test]
    fn table1_lists_all_datasets() {
        let out = tiny().table1();
        for name in ["Unif2D2M", "Expo6D2M", "SW3DB", "Gaia"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn fig9_produces_rows_for_each_dataset() {
        let out = tiny().fig9();
        assert!(out.contains("Expo2D2M"));
        assert!(out.contains("Unif6D2M"));
        assert!(out.contains("LID-UNICOMP"));
    }

    #[test]
    fn chaos_table_covers_every_profile_and_stays_exact() {
        let out = tiny().chaos();
        for profile in warpsim::FaultProfile::names() {
            assert!(out.contains(profile), "missing profile {profile}");
        }
        assert!(out.contains("clean"));
    }

    #[test]
    fn scaling_table_covers_every_fleet_size_and_both_partitions() {
        let out = tiny().scaling();
        assert!(out.contains("workload"), "missing workload-aware rows");
        assert!(out.contains("count"), "missing equal-count rows");
        for devices in ["1", "2", "4", "8"] {
            assert!(out.contains(devices), "missing {devices}-device row");
        }
    }

    #[test]
    fn failover_rows_are_exact_and_account_for_the_loss() {
        let exp = tiny();
        let points = exp.failover_points();
        assert_eq!(
            points.iter().map(|p| p.mode).collect::<Vec<_>>(),
            vec!["clean", "reshard", "degrade"]
        );
        let clean = &points[0];
        assert_eq!(clean.reshard_rounds, 0, "clean run must not intervene");
        assert_eq!(clean.cpu_points, 0, "clean run must stay on the fleet");
        for p in &points[1..] {
            assert_eq!(p.pairs, clean.pairs, "{}: exactness broken", p.mode);
        }
        let reshard = &points[1];
        assert!(
            reshard.reshard_rounds >= 1 && reshard.reassigned_units > 0,
            "reshard row must move the lost device's units ({reshard:?})"
        );
        assert_eq!(reshard.cpu_points, 0, "survivors must absorb the loss");
        let degrade = &points[2];
        assert!(
            degrade.cpu_points > 0,
            "degrade row must fall back to the CPU ({degrade:?})"
        );
        assert_eq!(degrade.reshard_rounds, 0, "degrade must not re-shard");
        let table = exp.failover();
        for mode in ["clean", "reshard", "degrade"] {
            assert!(table.contains(mode), "missing {mode} row");
        }
    }

    #[test]
    fn hybrid_auto_cut_beats_both_single_backends_on_skewed_data() {
        let exp = tiny();
        let points = exp.hybrid_points();
        let by_mode = |m: &str| {
            points
                .iter()
                .find(|p| p.mode == m)
                .unwrap_or_else(|| panic!("missing {m} row"))
        };
        let gpu_only = by_mode("gpu-only");
        let cpu_only = by_mode("cpu-only");
        let auto = by_mode("auto");
        for p in &points {
            assert_eq!(p.pairs, gpu_only.pairs, "{}: exactness broken", p.mode);
        }
        assert_eq!(gpu_only.cpu_units, 0);
        assert_eq!(cpu_only.gpu_units, 0);
        // The acceptance row: on the skewed workload the measured cut must
        // land strictly below both single-backend makespans.
        assert!(
            auto.makespan_s < gpu_only.makespan_s && auto.makespan_s < cpu_only.makespan_s,
            "auto {:.6e} must beat gpu-only {:.6e} and cpu-only {:.6e}",
            auto.makespan_s,
            gpu_only.makespan_s,
            cpu_only.makespan_s
        );
        assert!(
            auto.cut > 0 && auto.cut < auto.units,
            "skewed data should split interior ({auto:?})"
        );
        let table = exp.hybrid();
        for mode in ["gpu-only", "cpu-only", "auto", "f=0.50"] {
            assert!(table.contains(mode), "missing {mode} row");
        }
    }

    #[test]
    fn hybrid_driver_reproduces_the_gpu_tables() {
        let exp = tiny();
        let single = exp.table3();
        let mut hybrid = tiny();
        hybrid.exec_mode = ExecMode::Hybrid;
        assert_eq!(
            single,
            hybrid.table3(),
            "table3 must be exec-mode invariant"
        );
    }

    #[test]
    fn sharded_driver_reproduces_the_single_device_tables() {
        let exp = tiny();
        let single = exp.table3();
        let mut sharded = tiny();
        sharded.devices = 4;
        assert_eq!(single, sharded.table3(), "table3 must be devices-invariant");
    }

    #[test]
    fn ablations_cover_all_four() {
        let out = tiny().ablations();
        for marker in [
            "Ablation A",
            "Ablation B",
            "Ablation C",
            "Ablation D",
            "Ablation E",
        ] {
            assert!(out.contains(marker), "missing {marker}");
        }
    }
}
