//! Model-time conversion for the CPU comparator.
//!
//! SUPER-EGO runs natively (its wall time is also recorded), but comparing
//! native seconds on this machine against simulated-GPU model seconds would
//! conflate host speed with the experiment. Instead both sides are put on
//! the **same cost model**: SUPER-EGO's operation counts (distance
//! calculations with the same per-dimension cost table the GPU lanes use,
//! plus the EGO-sort's `n log n` comparisons) are divided by a modeled CPU
//! throughput (cores × SIMD lanes × clock).

use superego::JoinStats;
use warpsim::CostModel;

/// The modeled CPU (defaults approximate the paper's 2× Xeon E5-2620 v4,
/// 16 cores at 2.1 GHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Physical cores.
    pub cores: u32,
    /// Effective SIMD lanes per core for this workload. SUPER-EGO's inner
    /// loop short-circuits per dimension, which defeats vectorization; 2
    /// effective lanes (scalar + ILP) matches the original's scalar code.
    pub simd_lanes: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Model cycles per sort comparison.
    pub sort_cost_per_cmp: u32,
}

impl Default for CpuModel {
    fn default() -> Self {
        Self {
            cores: 16,
            simd_lanes: 2,
            clock_hz: 2.1e9,
            sort_cost_per_cmp: 6,
        }
    }
}

impl CpuModel {
    /// Converts SUPER-EGO operation counts into model seconds.
    pub fn model_seconds(&self, stats: &JoinStats, dims: u32, cost: &CostModel) -> f64 {
        let dist_cycles = stats.distance_calcs as f64 * cost.distance_op(dims).cycles as f64;
        let n = stats.sorted_points.max(2) as f64;
        let sort_cycles = n * n.log2() * self.sort_cost_per_cmp as f64;
        let emit_cycles = stats.pairs_found as f64 * cost.emit as f64;
        let total = dist_cycles + sort_cycles + emit_cycles;
        total / (self.cores as f64 * self.simd_lanes as f64 * self.clock_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(dist: u64, n: u64, pairs: u64) -> JoinStats {
        JoinStats {
            distance_calcs: dist,
            sorted_points: n,
            pairs_found: pairs,
            ..JoinStats::default()
        }
    }

    #[test]
    fn more_work_takes_longer() {
        let m = CpuModel::default();
        let cost = CostModel::default();
        let small = m.model_seconds(&stats(1_000, 100, 10), 2, &cost);
        let large = m.model_seconds(&stats(1_000_000, 100, 10), 2, &cost);
        assert!(large > small * 100.0);
    }

    #[test]
    fn higher_dims_cost_more_per_distance() {
        let m = CpuModel::default();
        let cost = CostModel::default();
        let d2 = m.model_seconds(&stats(1_000_000, 2, 0), 2, &cost);
        let d6 = m.model_seconds(&stats(1_000_000, 2, 0), 6, &cost);
        assert!(d6 > d2);
    }

    #[test]
    fn throughput_scales_with_cores() {
        let cost = CostModel::default();
        let s = stats(10_000_000, 1000, 0);
        let one = CpuModel {
            cores: 1,
            ..CpuModel::default()
        }
        .model_seconds(&s, 3, &cost);
        let sixteen = CpuModel::default().model_seconds(&s, 3, &cost);
        assert!((one / sixteen - 16.0).abs() < 0.01);
    }

    #[test]
    fn sort_cost_counts_even_with_no_distances() {
        let m = CpuModel::default();
        let cost = CostModel::default();
        let s = stats(0, 1_000_000, 0);
        assert!(m.model_seconds(&s, 2, &cost) > 0.0);
    }
}
