//! # warpsim — a lane-accurate SIMT (warp-level) GPU execution simulator
//!
//! This crate stands in for the CUDA GPU used by the paper. It models the
//! parts of the SIMT execution model that determine load-imbalance behaviour:
//!
//! - **Warps**: threads execute in lockstep groups of `warp_size` (32) lanes.
//!   Each lane runs a [`lane::LaneProgram`] — a resumable instruction stream.
//!   Lanes whose next instructions differ (branch divergence) are serialized
//!   into divergence groups, and lanes that retire early sit idle while the
//!   rest of the warp keeps executing.
//! - **Warp execution efficiency (WEE)**: the average fraction of active
//!   lanes per issued warp instruction — the exact quantity `nvprof` reports
//!   as `warp_execution_efficiency` and the paper's headline metric. Because
//!   the simulator executes lockstep explicitly, WEE here is exact rather
//!   than sampled.
//! - **Machine occupancy**: the GPU executes a bounded number of warps
//!   concurrently (`num_sms × warp_slots_per_sm`). Warps are issued to free
//!   slots in an order chosen by an [`scheduler::IssueOrder`] policy —
//!   `Arbitrary` models the uncontrollable hardware scheduler, `InOrder`
//!   models the forced execution order obtained with the paper's WORKQUEUE.
//! - **Device-side primitives**: a global atomic counter
//!   ([`atomics::DeviceCounter`], the work-queue head), a capacity-bounded
//!   result buffer ([`memory::DeviceBuffer`]), cooperative thread groups
//!   ([`coop`]), and an analytic multi-stream transfer/kernel overlap model
//!   ([`stream`]) for the batching scheme.
//! - **Fault injection**: a deterministic, seeded [`fault::FaultPlane`]
//!   attachable via [`kernel::LaunchOptions`] injects transient launch
//!   failures, device-lost conditions, forced result overflows, queue-head
//!   corruption, and transfer stalls on a reproducible schedule, so the
//!   host-side recovery paths of the batching scheme can be exercised.
//!
//! Simulated time is counted in model cycles and converted to model seconds
//! with [`config::GpuConfig::cycles_to_seconds`]. Absolute times are not
//! meant to match any physical device; relative behaviour between kernel
//! variants (who wins, by what factor, where crossovers fall) is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomics;
pub mod config;
pub mod coop;
pub mod fault;
pub mod fleet;
pub mod kernel;
pub mod lane;
pub mod machine;
pub mod memory;
pub mod metrics;
pub mod occupancy;
pub mod op;
pub mod primitives;
pub mod scheduler;
pub mod stream;
pub mod trace;
pub mod warp;

pub use atomics::DeviceCounter;
pub use config::{CostModel, GpuConfig};
pub use coop::CoopGroups;
pub use fault::{
    CounterFault, DeviceLostFault, FaultPlane, FaultProfile, FaultSchedule, LaunchAdmission,
    TransientFault,
};
pub use fleet::{DeviceFleet, SimDevice};
pub use kernel::{launch, launch_with, LaunchError, LaunchOptions, LaunchReport, WarpSource};
pub use lane::{LaneProgram, LaneSink, RunClaim};
pub use machine::{MachineModel, MakespanReport};
pub use memory::{BufferOverflow, DeviceBuffer};
pub use metrics::WarpStatsSummary;
pub use occupancy::{occupancy, resident_warps_per_sm, KernelResources, SmLimits};
pub use op::{Op, OpKind, NUM_OP_KINDS};
pub use primitives::{
    device_exclusive_scan, device_radix_argsort, PrimitiveReport, DEFAULT_DIGIT_BITS,
};
pub use scheduler::IssueOrder;
pub use stream::{BatchTiming, PipelineReport, StreamPipeline};
pub use trace::{trace_warp, trace_warp_with, WarpTrace};
pub use warp::{execute_warp, execute_warp_with, StepMode, WarpExecution};
