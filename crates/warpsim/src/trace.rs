//! Warp execution traces: the per-round lane-occupancy view behind the
//! paper's Figures 3 and 7 (idle periods of threads within a warp).
//!
//! [`trace_warp`] runs a warp through the same lockstep semantics as
//! [`crate::warp::execute_warp`] while recording, for every lockstep round,
//! how many lanes were active and how many divergence groups were
//! serialized. [`WarpTrace::render_ascii`] draws the classic
//! one-row-per-lane timeline where `#` is an executing lane and `.` an idle
//! one.

use crate::lane::{LaneProgram, LaneSink};
use crate::op::Op;
use crate::warp::StepMode;

/// One lockstep round of a traced warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRound {
    /// Which lanes issued an op this round.
    pub active: Vec<bool>,
    /// Number of serialized divergence groups.
    pub groups: u32,
    /// Cycle cost of the round (sum of its groups' op costs).
    pub cycles: u64,
}

/// The recorded execution of one warp.
#[derive(Debug, Clone, Default)]
pub struct WarpTrace {
    /// Rounds, in execution order.
    pub rounds: Vec<TraceRound>,
    /// Warp width used for idle accounting.
    pub warp_size: u32,
}

impl WarpTrace {
    /// Total cycles of the traced warp.
    pub fn cycles(&self) -> u64 {
        self.rounds.iter().map(|r| r.cycles).sum()
    }

    /// Fraction of lane-rounds spent idle (1 − WEE at round granularity,
    /// counting absent lanes of a partial warp as idle).
    pub fn idle_fraction(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        let total = self.rounds.len() as u64 * self.warp_size as u64;
        let active: u64 = self
            .rounds
            .iter()
            .map(|r| r.active.iter().filter(|&&a| a).count() as u64)
            .sum();
        1.0 - active as f64 / total as f64
    }

    /// Renders the lane × round occupancy grid: one row per lane, `#` for
    /// an active round, `.` for an idle one. Rounds beyond `max_cols` are
    /// elided with a trailing `…`.
    pub fn render_ascii(&self, max_cols: usize) -> String {
        let mut out = String::new();
        let cols = self.rounds.len().min(max_cols);
        for lane in 0..self.warp_size as usize {
            out.push_str(&format!("lane {lane:>2} "));
            for round in &self.rounds[..cols] {
                let active = round.active.get(lane).copied().unwrap_or(false);
                out.push(if active { '#' } else { '.' });
            }
            if self.rounds.len() > max_cols {
                out.push('…');
            }
            out.push('\n');
        }
        out
    }
}

/// Executes a warp in lockstep (same semantics as
/// [`crate::warp::execute_warp`]) while recording the occupancy timeline.
/// Uses the default [`StepMode`]; the recorded rounds are bit-identical
/// across modes (a claimed run expands into its individual rounds).
pub fn trace_warp<L: LaneProgram>(
    lanes: &mut [L],
    warp_size: u32,
    sink: &mut LaneSink,
) -> WarpTrace {
    trace_warp_with(lanes, warp_size, sink, StepMode::default())
}

/// [`trace_warp`] with an explicit [`StepMode`]. In
/// [`StepMode::RunLength`], a fully-converged claimed run is committed in
/// one go and expanded into `run` identical [`TraceRound`]s, so the trace
/// matches stepped execution round for round.
pub fn trace_warp_with<L: LaneProgram>(
    lanes: &mut [L],
    warp_size: u32,
    sink: &mut LaneSink,
    mode: StepMode,
) -> WarpTrace {
    assert!(
        lanes.len() <= warp_size as usize,
        "too many lanes for the warp"
    );
    let mut trace = WarpTrace {
        rounds: Vec::new(),
        warp_size,
    };
    let mut retired = vec![false; lanes.len()];
    let mut live = lanes.len();
    while live > 0 {
        if mode == StepMode::RunLength {
            // Fast path mirror of `execute_warp`'s converged-run skip.
            let mut converged: Option<(Op, u32)> = None;
            for (i, lane) in lanes.iter_mut().enumerate() {
                if retired[i] {
                    continue;
                }
                match lane.peek_run() {
                    Some(claim) if claim.len > 0 => match &mut converged {
                        None => converged = Some((claim.op, claim.len)),
                        Some((op, len)) if *op == claim.op => *len = (*len).min(claim.len),
                        Some(_) => {
                            converged = None;
                            break;
                        }
                    },
                    _ => {
                        converged = None;
                        break;
                    }
                }
            }
            if let Some((op, run)) = converged {
                for (i, lane) in lanes.iter_mut().enumerate() {
                    if !retired[i] {
                        lane.commit_run(run, sink);
                    }
                }
                let active: Vec<bool> = retired.iter().map(|&r| !r).collect();
                for _ in 0..run {
                    trace.rounds.push(TraceRound {
                        active: active.clone(),
                        groups: 1,
                        cycles: op.cycles as u64,
                    });
                }
                continue;
            }
        }
        let mut active = vec![false; lanes.len()];
        let mut groups: std::collections::BTreeMap<Op, u32> = std::collections::BTreeMap::new();
        for (i, lane) in lanes.iter_mut().enumerate() {
            if retired[i] {
                continue;
            }
            match lane.step(sink) {
                Some(op) => {
                    active[i] = true;
                    *groups.entry(op).or_insert(0) += 1;
                }
                None => {
                    retired[i] = true;
                    live -= 1;
                }
            }
        }
        if groups.is_empty() {
            break;
        }
        let cycles = groups.keys().map(|op| op.cycles as u64).sum();
        trace.rounds.push(TraceRound {
            active,
            groups: groups.len() as u32,
            cycles,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::FixedWorkLane;
    use crate::op::OpKind;
    use crate::warp::execute_warp;

    fn work_lanes(work: &[u32]) -> Vec<FixedWorkLane> {
        work.iter()
            .map(|&w| FixedWorkLane::new(w, Op::new(OpKind::Distance, 10)))
            .collect()
    }

    #[test]
    fn trace_matches_execute_warp_timing() {
        let work = [7u32, 2, 5, 1];
        let mut a = work_lanes(&work);
        let mut b = work_lanes(&work);
        let mut sink_a = LaneSink::new();
        let mut sink_b = LaneSink::new();
        let exec = execute_warp(&mut a, 4, &mut sink_a);
        let trace = trace_warp(&mut b, 4, &mut sink_b);
        assert_eq!(trace.cycles(), exec.cycles);
        assert_eq!(trace.rounds.len() as u64, 7, "rounds = max lane work");
    }

    #[test]
    fn idle_fraction_reflects_skew() {
        let mut balanced = work_lanes(&[4, 4, 4, 4]);
        let mut skewed = work_lanes(&[8, 1, 1, 1]);
        let t1 = trace_warp(&mut balanced, 4, &mut LaneSink::new());
        let t2 = trace_warp(&mut skewed, 4, &mut LaneSink::new());
        assert_eq!(t1.idle_fraction(), 0.0);
        assert!(t2.idle_fraction() > 0.5);
    }

    #[test]
    fn ascii_rendering_shows_idle_tails() {
        let mut lanes = work_lanes(&[4, 2]);
        let trace = trace_warp(&mut lanes, 2, &mut LaneSink::new());
        let art = trace.render_ascii(10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("####"));
        assert!(lines[1].ends_with("##.."));
    }

    #[test]
    fn rendering_elides_long_traces() {
        let mut lanes = work_lanes(&[50]);
        let trace = trace_warp(&mut lanes, 1, &mut LaneSink::new());
        let art = trace.render_ascii(10);
        assert!(art.lines().next().unwrap().ends_with('…'));
    }

    #[test]
    fn empty_warp_traces_empty() {
        let mut lanes: Vec<FixedWorkLane> = vec![];
        let trace = trace_warp(&mut lanes, 4, &mut LaneSink::new());
        assert!(trace.rounds.is_empty());
        assert_eq!(trace.idle_fraction(), 0.0);
        assert_eq!(trace.cycles(), 0);
    }
}
