//! Capacity-bounded device buffers.
//!
//! The self-join's result set can exceed GPU global memory, which is why the
//! batching scheme exists. [`DeviceBuffer`] models the per-batch pinned
//! result buffer of size `b_s`: appends beyond capacity fail with
//! [`BufferOverflow`] instead of silently growing, so the batch planner's
//! "never overflow" guarantee is checkable.

/// Error returned when an append would exceed the buffer capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferOverflow {
    /// Buffer capacity in elements.
    pub capacity: usize,
    /// Elements stored before the failing append.
    pub len: usize,
    /// Elements the failing append attempted to add.
    pub attempted: usize,
}

impl std::fmt::Display for BufferOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device buffer overflow: {} + {} elements exceeds capacity {}",
            self.len, self.attempted, self.capacity
        )
    }
}

impl std::error::Error for BufferOverflow {}

/// A fixed-capacity device-side output buffer.
#[derive(Debug, Clone)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    capacity: usize,
}

impl<T> DeviceBuffer<T> {
    /// Allocates a buffer for at most `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::new(),
            capacity,
        }
    }

    /// The buffer capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Elements currently stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Remaining free capacity.
    pub fn remaining(&self) -> usize {
        self.capacity - self.data.len()
    }

    /// Appends all elements of `items`, failing (without partial writes) if
    /// they do not fit.
    pub fn extend_from_slice(&mut self, items: &[T]) -> Result<(), BufferOverflow>
    where
        T: Clone,
    {
        if items.len() > self.remaining() {
            return Err(BufferOverflow {
                capacity: self.capacity,
                len: self.data.len(),
                attempted: items.len(),
            });
        }
        self.data.extend_from_slice(items);
        Ok(())
    }

    /// Appends one element.
    pub fn push(&mut self, item: T) -> Result<(), BufferOverflow> {
        if self.remaining() == 0 {
            return Err(BufferOverflow {
                capacity: self.capacity,
                len: self.data.len(),
                attempted: 1,
            });
        }
        self.data.push(item);
        Ok(())
    }

    /// The stored elements.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Empties the buffer (the host "transferred the batch back"), keeping
    /// the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Consumes the buffer and returns its contents.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_capacity_accumulates() {
        let mut b = DeviceBuffer::with_capacity(4);
        b.extend_from_slice(&[1, 2]).unwrap();
        b.push(3).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.remaining(), 1);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn overflow_is_rejected_without_partial_write() {
        let mut b = DeviceBuffer::with_capacity(3);
        b.extend_from_slice(&[1, 2]).unwrap();
        let err = b.extend_from_slice(&[3, 4]).unwrap_err();
        assert_eq!(
            err,
            BufferOverflow {
                capacity: 3,
                len: 2,
                attempted: 2
            }
        );
        assert_eq!(
            b.as_slice(),
            &[1, 2],
            "failed append must not partially write"
        );
        b.push(3).unwrap();
        assert!(b.push(4).is_err());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut b = DeviceBuffer::with_capacity(2);
        b.push(1).unwrap();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 2);
        b.extend_from_slice(&[5, 6]).unwrap();
        assert_eq!(b.into_vec(), vec![5, 6]);
    }

    #[test]
    fn zero_capacity_buffer_rejects_everything() {
        let mut b: DeviceBuffer<u8> = DeviceBuffer::with_capacity(0);
        assert!(b.push(0).is_err());
        assert!(b.extend_from_slice(&[1]).is_err());
        assert!(b.extend_from_slice(&[]).is_ok(), "empty append always fits");
    }

    #[test]
    fn overflow_error_is_displayable() {
        let e = BufferOverflow {
            capacity: 10,
            len: 8,
            attempted: 5,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('8') && s.contains('5'));
    }
}
