//! GPU machine configuration and the op cost model.

use crate::op::{Op, OpKind};

/// Cycle costs for each op category.
///
/// These are *model* constants — chosen to reflect plausible relative costs
/// on a Pascal-class GPU (the paper's Quadro GP100) — and are the knobs of
/// the simulator's timing model. The `ablations` bench sweeps the ones that
/// could plausibly change experimental conclusions (atomic cost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Kernel prologue (tid computation, point load, neighbor ranges).
    pub setup: u32,
    /// One binary-search probe sequence over the non-empty cell list.
    pub cell_lookup: u32,
    /// Fixed part of one distance calculation (loop control, compare, sqrt-free test).
    pub distance_base: u32,
    /// Per-dimension part of one distance calculation (sub, mul, add).
    pub distance_per_dim: u32,
    /// One result-pair write (buffered global store).
    pub emit: u32,
    /// One global atomic RMW (uncontended).
    pub atomic: u32,
    /// One warp shuffle / cooperative-group broadcast.
    pub shuffle: u32,
    /// One synchronization.
    pub sync: u32,
    /// One scan combine step: load an element and add it into a running
    /// partial sum (the per-lane tile reduction of the device scan).
    pub scan_combine: u32,
    /// One radix-digit extraction: load a key, shift/mask out the current
    /// digit and bump the work-group histogram bin.
    pub digit_extract: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            setup: 24,
            cell_lookup: 18,
            distance_base: 6,
            distance_per_dim: 4,
            emit: 8,
            atomic: 40,
            shuffle: 4,
            sync: 4,
            scan_combine: 6,
            digit_extract: 10,
        }
    }
}

impl CostModel {
    /// The [`Op`] for one distance calculation in `dims` dimensions.
    pub fn distance_op(&self, dims: u32) -> Op {
        Op::new(
            OpKind::Distance,
            self.distance_base + self.distance_per_dim * dims,
        )
    }

    /// The [`Op`] for the kernel prologue.
    pub fn setup_op(&self) -> Op {
        Op::new(OpKind::Setup, self.setup)
    }

    /// The [`Op`] for one neighbor-cell lookup.
    pub fn cell_lookup_op(&self) -> Op {
        Op::new(OpKind::CellLookup, self.cell_lookup)
    }

    /// The [`Op`] for one result emission.
    pub fn emit_op(&self) -> Op {
        Op::new(OpKind::Emit, self.emit)
    }

    /// The [`Op`] for one global atomic.
    pub fn atomic_op(&self) -> Op {
        Op::new(OpKind::Atomic, self.atomic)
    }

    /// The [`Op`] for one shuffle/broadcast.
    pub fn shuffle_op(&self) -> Op {
        Op::new(OpKind::Shuffle, self.shuffle)
    }

    /// The [`Op`] for one synchronization barrier.
    pub fn sync_op(&self) -> Op {
        Op::new(OpKind::Sync, self.sync)
    }

    /// The [`Op`] for one scan combine step (load + add).
    pub fn scan_combine_op(&self) -> Op {
        Op::new(OpKind::Other, self.scan_combine)
    }

    /// The [`Op`] for one radix-digit extraction (load + shift/mask +
    /// histogram bump).
    pub fn digit_extract_op(&self) -> Op {
        Op::new(OpKind::Other, self.digit_extract)
    }
}

/// The simulated GPU: SIMT widths, occupancy limits and clock.
///
/// Defaults approximate the paper's Quadro GP100 (56 SMs, 32-lane warps).
/// `warp_slots_per_sm` is the number of warps an SM makes *forward progress
/// on* concurrently in the model (a throughput abstraction of its schedulers
/// and pipelines), not the architectural residency limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Lanes per warp.
    pub warp_size: u32,
    /// Threads per block (CTA); warp issue shuffles at block granularity.
    pub block_size: u32,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Concurrent warp slots per SM (throughput abstraction).
    pub warp_slots_per_sm: u32,
    /// Model clock in Hz, used only to convert cycles to model seconds.
    pub clock_hz: f64,
    /// Average stall factor per op (memory latency, pipeline bubbles) used
    /// when converting cycles to model seconds. This is the calibration
    /// constant that puts simulated-GPU times on a scale comparable with
    /// modeled CPU times; it scales all kernel times uniformly, so
    /// GPU-vs-GPU comparisons are unaffected by its value.
    pub ipc_derate: f64,
    /// Op cost table.
    pub cost: CostModel,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            warp_size: 32,
            block_size: 256,
            num_sms: 56,
            warp_slots_per_sm: 8,
            clock_hz: 1.3e9,
            ipc_derate: 2.0,
            cost: CostModel::default(),
        }
    }
}

impl GpuConfig {
    /// Total concurrent warp slots on the device.
    pub fn total_warp_slots(&self) -> usize {
        (self.num_sms * self.warp_slots_per_sm) as usize
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> u32 {
        self.block_size.div_ceil(self.warp_size)
    }

    /// Converts model cycles to model seconds (applying the derate).
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 * self.ipc_derate / self.clock_hz
    }

    /// The effective clock after derating (`clock_hz / ipc_derate`).
    pub fn effective_clock_hz(&self) -> f64 {
        self.clock_hz / self.ipc_derate
    }

    /// Derives `warp_slots_per_sm` from a kernel's occupancy: `fraction` is
    /// the share of *resident* warps an SM makes forward progress on per
    /// cycle (the default configuration corresponds to 8/64 = 0.125 at full
    /// occupancy). A register- or shared-memory-hungry kernel lowers
    /// residency and therefore throughput — the hardware limitation the
    /// paper cites when motivating bounded warp concurrency (§III).
    pub fn with_kernel_occupancy(
        mut self,
        limits: &crate::occupancy::SmLimits,
        kernel: &crate::occupancy::KernelResources,
        fraction: f64,
    ) -> Self {
        let resident = crate::occupancy::resident_warps_per_sm(limits, kernel);
        self.warp_slots_per_sm = ((resident as f64 * fraction).round() as u32).max(1);
        self.block_size = kernel.block_size;
        self
    }

    /// A small configuration for unit tests: 4 SMs, 2 slots each.
    pub fn small_test() -> Self {
        Self {
            warp_size: 4,
            block_size: 8,
            num_sms: 4,
            warp_slots_per_sm: 2,
            clock_hz: 1.0e9,
            ipc_derate: 1.0,
            cost: CostModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_gp100_shape() {
        let c = GpuConfig::default();
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.num_sms, 56);
        assert_eq!(c.total_warp_slots(), 56 * 8);
        assert_eq!(c.warps_per_block(), 8);
    }

    #[test]
    fn distance_cost_scales_with_dims() {
        let cost = CostModel::default();
        let d2 = cost.distance_op(2).cycles;
        let d6 = cost.distance_op(6).cycles;
        assert!(d6 > d2);
        assert_eq!(d6 - d2, 4 * cost.distance_per_dim);
    }

    #[test]
    fn cycles_to_seconds_uses_effective_clock() {
        let c = GpuConfig {
            clock_hz: 2.0e9,
            ipc_derate: 1.0,
            ..GpuConfig::default()
        };
        assert!((c.cycles_to_seconds(2_000_000_000) - 1.0).abs() < 1e-12);
        let derated = GpuConfig {
            clock_hz: 2.0e9,
            ipc_derate: 4.0,
            ..GpuConfig::default()
        };
        assert!((derated.cycles_to_seconds(2_000_000_000) - 4.0).abs() < 1e-12);
        assert!((derated.effective_clock_hz() - 0.5e9).abs() < 1.0);
    }

    #[test]
    fn occupancy_derives_slots() {
        use crate::occupancy::{KernelResources, SmLimits};
        let limits = SmLimits::gp100();
        let light = GpuConfig::default().with_kernel_occupancy(
            &limits,
            &KernelResources::light(256),
            0.125,
        );
        assert_eq!(
            light.warp_slots_per_sm, 8,
            "full occupancy keeps the default"
        );
        let heavy = GpuConfig::default().with_kernel_occupancy(
            &limits,
            &KernelResources {
                registers_per_thread: 96,
                shared_mem_per_block: 0,
                block_size: 256,
            },
            0.125,
        );
        assert_eq!(
            heavy.warp_slots_per_sm, 2,
            "register pressure cuts throughput"
        );
        assert!(heavy.total_warp_slots() < light.total_warp_slots());
    }

    #[test]
    fn op_constructors_use_table() {
        let cost = CostModel::default();
        assert_eq!(cost.setup_op().kind, OpKind::Setup);
        assert_eq!(cost.setup_op().cycles, cost.setup);
        assert_eq!(cost.atomic_op().kind, OpKind::Atomic);
        assert_eq!(cost.emit_op().kind, OpKind::Emit);
        assert_eq!(cost.cell_lookup_op().kind, OpKind::CellLookup);
        assert_eq!(cost.shuffle_op().kind, OpKind::Shuffle);
        assert_eq!(cost.sync_op().kind, OpKind::Sync);
        assert_eq!(cost.sync_op().cycles, cost.sync);
        assert_eq!(cost.scan_combine_op().kind, OpKind::Other);
        assert_eq!(cost.scan_combine_op().cycles, cost.scan_combine);
        assert_eq!(cost.digit_extract_op().kind, OpKind::Other);
        assert_eq!(cost.digit_extract_op().cycles, cost.digit_extract);
    }
}
