//! Summary statistics over per-warp durations.

/// Summary of a set of warp durations (cycles), used to quantify inter-warp
/// load imbalance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarpStatsSummary {
    /// Number of warps summarized.
    pub count: usize,
    /// Shortest warp.
    pub min: u64,
    /// Longest warp.
    pub max: u64,
    /// Mean duration.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median duration.
    pub median: u64,
    /// 99th percentile duration (nearest-rank).
    pub p99: u64,
}

impl WarpStatsSummary {
    /// Summarizes a slice of durations. Returns `None` for an empty slice.
    pub fn from_durations(durations: &[u64]) -> Option<Self> {
        if durations.is_empty() {
            return None;
        }
        let mut sorted = durations.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&d| d as u128).sum();
        let mean = sum as f64 / count as f64;
        let var = sorted
            .iter()
            .map(|&d| {
                let diff = d as f64 - mean;
                diff * diff
            })
            .sum::<f64>()
            / count as f64;
        let nearest_rank = |p: f64| -> u64 {
            let rank = ((p * count as f64).ceil() as usize).clamp(1, count);
            sorted[rank - 1]
        };
        Some(Self {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            std_dev: var.sqrt(),
            median: nearest_rank(0.5),
            p99: nearest_rank(0.99),
        })
    }

    /// Coefficient of variation (σ/μ): the paper's notion of workload
    /// variance between threads/warps, normalized.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Max-to-mean ratio: how much longer the longest warp runs than the
    /// average — a direct proxy for the end-of-kernel tail.
    pub fn max_over_mean(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_has_no_summary() {
        assert!(WarpStatsSummary::from_durations(&[]).is_none());
    }

    #[test]
    fn uniform_durations_have_zero_variance() {
        let s = WarpStatsSummary::from_durations(&[7, 7, 7, 7]).unwrap();
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 7);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.max_over_mean(), 1.0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = WarpStatsSummary::from_durations(&[1, 2, 3, 4]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        // population variance of 1..4 = 1.25
        assert!((s.std_dev - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn p99_is_nearest_rank() {
        let durations: Vec<u64> = (1..=100).collect();
        let s = WarpStatsSummary::from_durations(&durations).unwrap();
        assert_eq!(s.p99, 99);
        assert_eq!(s.median, 50);
    }

    #[test]
    fn skew_increases_cv() {
        let balanced = WarpStatsSummary::from_durations(&[10, 10, 10, 10]).unwrap();
        let skewed = WarpStatsSummary::from_durations(&[1, 1, 1, 37]).unwrap();
        assert!(skewed.cv() > balanced.cv());
        assert!(skewed.max_over_mean() > 3.0);
    }
}
