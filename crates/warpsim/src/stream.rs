//! Multi-stream batch pipeline model.
//!
//! The batching scheme executes the self-join as a sequence of kernel
//! invocations, each filling a pinned result buffer that is transferred back
//! to the host. With `s` CUDA streams (the paper uses 3), a batch's
//! device-to-host transfer overlaps with the next batches' kernels, hiding
//! transfer time. This module reproduces that schedule analytically:
//!
//! - the device runs one kernel at a time (these kernels saturate the GPU);
//! - each stream owns one pinned buffer: a batch on stream `s` cannot start
//!   its kernel until the previous batch on `s` finished transferring;
//! - one copy engine performs device-to-host transfers serially.

/// Timing inputs of one batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchTiming {
    /// Kernel execution time in model seconds.
    pub kernel_s: f64,
    /// Device-to-host transfer time of the batch's results, model seconds.
    /// Injected transfer stalls (see [`crate::fault`]) are folded in here,
    /// so a stalled batch occupies the copy engine for longer and delays
    /// the stream's next kernel exactly as a slow real transfer would.
    pub transfer_s: f64,
}

/// The scheduled pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// End-to-end time of the batch sequence.
    pub total_s: f64,
    /// Sum of kernel times.
    pub kernel_busy_s: f64,
    /// Sum of transfer times.
    pub transfer_busy_s: f64,
    /// Per-batch kernel start times.
    pub kernel_starts: Vec<f64>,
    /// Per-batch transfer completion times.
    pub transfer_ends: Vec<f64>,
    /// Number of streams used.
    pub streams: usize,
}

impl PipelineReport {
    /// Fraction of total transfer time hidden under kernel execution,
    /// in `[0, 1]`. With enough streams this approaches 1.
    pub fn transfer_hidden_fraction(&self) -> f64 {
        if self.transfer_busy_s <= 0.0 {
            return 1.0;
        }
        let exposed = (self.total_s - self.kernel_busy_s).max(0.0);
        (1.0 - exposed / self.transfer_busy_s).clamp(0.0, 1.0)
    }
}

/// The multi-stream pipeline scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPipeline {
    /// Number of streams (and pinned buffers).
    pub num_streams: usize,
}

impl StreamPipeline {
    /// Creates a pipeline with `num_streams` streams.
    ///
    /// # Panics
    /// Panics if `num_streams == 0`.
    pub fn new(num_streams: usize) -> Self {
        assert!(num_streams > 0, "pipeline needs at least one stream");
        Self { num_streams }
    }

    /// Schedules the batches (assigned to streams round-robin, as the host
    /// loop does) and reports the end-to-end timing.
    pub fn schedule(&self, batches: &[BatchTiming]) -> PipelineReport {
        let mut stream_buffer_free = vec![0.0f64; self.num_streams];
        let mut device_free = 0.0f64;
        let mut copy_engine_free = 0.0f64;
        let mut kernel_starts = Vec::with_capacity(batches.len());
        let mut transfer_ends = Vec::with_capacity(batches.len());
        let mut total = 0.0f64;
        for (i, b) in batches.iter().enumerate() {
            assert!(
                b.kernel_s >= 0.0 && b.transfer_s >= 0.0,
                "batch timings must be non-negative"
            );
            let stream = i % self.num_streams;
            let kernel_start = device_free.max(stream_buffer_free[stream]);
            let kernel_end = kernel_start + b.kernel_s;
            device_free = kernel_end;
            let transfer_start = kernel_end.max(copy_engine_free);
            let transfer_end = transfer_start + b.transfer_s;
            copy_engine_free = transfer_end;
            stream_buffer_free[stream] = transfer_end;
            kernel_starts.push(kernel_start);
            transfer_ends.push(transfer_end);
            total = total.max(transfer_end);
        }
        PipelineReport {
            total_s: total,
            kernel_busy_s: batches.iter().map(|b| b.kernel_s).sum(),
            transfer_busy_s: batches.iter().map(|b| b.transfer_s).sum(),
            kernel_starts,
            transfer_ends,
            streams: self.num_streams,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(k: f64, t: f64) -> BatchTiming {
        BatchTiming {
            kernel_s: k,
            transfer_s: t,
        }
    }

    #[test]
    fn single_stream_serializes_kernel_and_transfer() {
        let p = StreamPipeline::new(1);
        let r = p.schedule(&[batch(1.0, 0.5), batch(1.0, 0.5)]);
        // k0 [0,1], t0 [1,1.5]; buffer busy until 1.5 → k1 [1.5,2.5], t1 [2.5,3]
        assert!((r.total_s - 3.0).abs() < 1e-12);
        assert!(r.transfer_hidden_fraction() < 1.0);
    }

    #[test]
    fn multiple_streams_hide_transfers() {
        let p = StreamPipeline::new(3);
        let batches: Vec<_> = (0..9).map(|_| batch(1.0, 0.5)).collect();
        let r = p.schedule(&batches);
        // Kernels run back-to-back: 9s; last transfer adds 0.5 at the end.
        assert!((r.total_s - 9.5).abs() < 1e-9);
        assert!(r.transfer_hidden_fraction() > 0.85);
    }

    #[test]
    fn kernels_never_overlap_on_device() {
        let p = StreamPipeline::new(3);
        let batches: Vec<_> = (0..5).map(|i| batch(1.0 + i as f64 * 0.1, 0.2)).collect();
        let r = p.schedule(&batches);
        for i in 1..batches.len() {
            let prev_end = r.kernel_starts[i - 1] + batches[i - 1].kernel_s;
            assert!(r.kernel_starts[i] >= prev_end - 1e-12);
        }
    }

    #[test]
    fn empty_pipeline() {
        let p = StreamPipeline::new(3);
        let r = p.schedule(&[]);
        assert_eq!(r.total_s, 0.0);
        assert_eq!(r.transfer_hidden_fraction(), 1.0);
    }

    #[test]
    fn transfer_bound_pipeline_exposes_transfers() {
        // Tiny kernels, huge transfers: copy engine is the bottleneck and the
        // hidden fraction collapses.
        let p = StreamPipeline::new(3);
        let batches: Vec<_> = (0..6).map(|_| batch(0.01, 1.0)).collect();
        let r = p.schedule(&batches);
        assert!(r.total_s >= 6.0);
        assert!(r.transfer_hidden_fraction() < 0.2);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let _ = StreamPipeline::new(0);
    }
}
