//! Simulated device-global atomics.
//!
//! The WORKQUEUE optimization replaces static thread→point assignment with a
//! global counter incremented atomically: each thread (or each cooperative
//! group's leader, when `k > 1`) obtains the index of the next query point
//! from the head of the workload-sorted array. [`DeviceCounter`] is that
//! counter: functionally an `AtomicU64`, with the cycle cost of the atomic
//! accounted by the lane programs through
//! [`crate::config::CostModel::atomic_op`].

use std::sync::atomic::{AtomicU64, Ordering};

/// A device-global monotonically increasing counter (the work-queue head).
#[derive(Debug, Default)]
pub struct DeviceCounter {
    value: AtomicU64,
}

impl DeviceCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a counter starting at `start` (used when a kernel resumes the
    /// queue from a previous batch's position).
    pub fn starting_at(start: u64) -> Self {
        Self {
            value: AtomicU64::new(start),
        }
    }

    /// Atomically reserves `n` consecutive values, returning the first
    /// (`atomicAdd(head, n)` in CUDA terms).
    pub fn fetch_add(&self, n: u64) -> u64 {
        self.value.fetch_add(n, Ordering::Relaxed)
    }

    /// The current counter value.
    pub fn load(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrites the counter (`cudaMemcpy` of a fresh head value in CUDA
    /// terms) — the host-side repair used after a detected counter fault.
    pub fn store(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_are_consecutive_and_disjoint() {
        let c = DeviceCounter::new();
        let a = c.fetch_add(4);
        let b = c.fetch_add(2);
        let d = c.fetch_add(1);
        assert_eq!(a, 0);
        assert_eq!(b, 4);
        assert_eq!(d, 6);
        assert_eq!(c.load(), 7);
    }

    #[test]
    fn starting_offset_respected() {
        let c = DeviceCounter::starting_at(100);
        assert_eq!(c.fetch_add(5), 100);
        assert_eq!(c.load(), 105);
    }

    #[test]
    fn concurrent_reservations_never_overlap() {
        let c = DeviceCounter::new();
        let ranges = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|_| {
                        let mut got = Vec::new();
                        for _ in 0..1000 {
                            got.push(c.fetch_add(3));
                        }
                        got
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<u64>>()
        })
        .unwrap();
        let mut sorted = ranges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            ranges.len(),
            "every reservation start is unique"
        );
        assert_eq!(c.load(), 8 * 1000 * 3);
    }
}
