//! Lockstep warp execution with divergence serialization.

use std::collections::BTreeMap;

use crate::lane::{LaneProgram, LaneSink};
use crate::op::{Op, NUM_OP_KINDS};

/// How the executor advances a warp through its lockstep rounds.
///
/// Purely a host-side knob: both modes produce bit-identical simulated
/// results (cycles, issued, WEE, lane-op histograms, divergent rounds, pair
/// emission order) — the differential test suite asserts it. The run-length
/// mode only changes how fast the *simulation* runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// The original round-by-round interpreter: every lockstep round steps
    /// every live lane once. Kept as the oracle for differential testing.
    Stepped,
    /// The converged-execution fast path: when every live lane claims a run
    /// of identical ops (see [`LaneProgram::peek_run`]), the executor
    /// advances `min(len)` rounds with one O(1) accounting update, falling
    /// back to allocation-free stepped rounds whenever lanes diverge.
    #[default]
    RunLength,
}

impl StepMode {
    /// Parses a CLI-style name (`"stepped"` / `"runlength"`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "stepped" => Some(StepMode::Stepped),
            "runlength" | "run-length" => Some(StepMode::RunLength),
            _ => None,
        }
    }

    /// Short machine-readable name (CLI / telemetry field value).
    pub fn name(&self) -> &'static str {
        match self {
            StepMode::Stepped => "stepped",
            StepMode::RunLength => "runlength",
        }
    }
}

/// The outcome of micro-executing one warp: its serialized duration and the
/// statistics from which warp execution efficiency is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarpExecution {
    /// Serialized duration of the warp's instruction stream, in model cycles.
    pub cycles: u64,
    /// Number of warp instructions issued (divergence groups issue separately).
    pub issued: u64,
    /// Sum over issues of the number of active lanes.
    pub active_lane_slots: u64,
    /// Lanes the warp was created with (may be < warp size for tail warps).
    pub lanes: u32,
    /// The warp width used for efficiency accounting.
    pub warp_size: u32,
    /// Per-kind count of lane-ops executed (e.g. total distance calculations).
    pub lane_ops_by_kind: [u64; NUM_OP_KINDS],
    /// Number of lockstep rounds in which >1 divergence group was present.
    pub divergent_rounds: u64,
}

impl WarpExecution {
    /// Warp execution efficiency: average fraction of active lanes per
    /// issued warp instruction, in `[0, 1]`. Lanes disabled because a tail
    /// warp is only partially populated count as inactive, as on hardware.
    pub fn efficiency(&self) -> f64 {
        if self.issued == 0 {
            1.0
        } else {
            self.active_lane_slots as f64 / (self.issued * self.warp_size as u64) as f64
        }
    }

    /// Total lane-ops across all kinds.
    pub fn total_lane_ops(&self) -> u64 {
        self.lane_ops_by_kind.iter().sum()
    }

    /// Accumulates another warp's counters into this one (for kernel totals).
    pub fn accumulate(&mut self, other: &WarpExecution) {
        self.cycles += other.cycles;
        self.issued += other.issued;
        self.active_lane_slots += other.active_lane_slots;
        self.divergent_rounds += other.divergent_rounds;
        for k in 0..NUM_OP_KINDS {
            self.lane_ops_by_kind[k] += other.lane_ops_by_kind[k];
        }
    }
}

/// Divergence groups of one lockstep round, bucketed into a fixed array
/// indexed by [`crate::op::OpKind`] — no per-round allocation once the tiny
/// per-kind vectors have warmed up. Within a kind the groups are kept sorted
/// by cycle cost, so iterating kinds in index order and costs ascending
/// reproduces `BTreeMap<Op, u32>`'s `(kind, cycles)` iteration order exactly
/// (`OpKind::index` order matches `OpKind`'s derived `Ord`).
#[derive(Default)]
struct GroupTable {
    /// Per kind: `(op cycles, lane count)`, sorted ascending by cycles.
    by_kind: [Vec<(u32, u32)>; NUM_OP_KINDS],
    /// Number of distinct `(kind, cycles)` groups this round.
    groups: u32,
}

impl GroupTable {
    fn clear(&mut self) {
        if self.groups > 0 {
            for slot in &mut self.by_kind {
                slot.clear();
            }
            self.groups = 0;
        }
    }

    fn insert(&mut self, op: Op) {
        let slot = &mut self.by_kind[op.kind.index()];
        match slot.binary_search_by_key(&op.cycles, |&(c, _)| c) {
            Ok(i) => slot[i].1 += 1,
            Err(i) => {
                slot.insert(i, (op.cycles, 1));
                self.groups += 1;
            }
        }
    }
}

/// Micro-executes one warp's lanes in lockstep.
///
/// Each round, every unfinished lane produces its next [`Op`]. Lanes whose
/// ops are identical execute together as one warp instruction; distinct ops
/// within a round are divergence groups and execute serially, with the other
/// lanes masked (idle) — the SIMT branch-serialization rule. A lane that has
/// retired stays masked for the remainder of the warp's execution, which is
/// precisely how intra-warp load imbalance wastes execution slots.
///
/// Uses the default [`StepMode::RunLength`] fast path; see
/// [`execute_warp_with`] for the explicit-mode variant.
pub fn execute_warp<L: LaneProgram>(
    lanes: &mut [L],
    warp_size: u32,
    sink: &mut LaneSink,
) -> WarpExecution {
    execute_warp_with(lanes, warp_size, sink, StepMode::default())
}

/// [`execute_warp`] with an explicit [`StepMode`]. Both modes are
/// bit-identical in every simulated result; `Stepped` is the slow oracle
/// kept alive for differential testing.
pub fn execute_warp_with<L: LaneProgram>(
    lanes: &mut [L],
    warp_size: u32,
    sink: &mut LaneSink,
    mode: StepMode,
) -> WarpExecution {
    assert!(
        lanes.len() <= warp_size as usize,
        "warp created with {} lanes but warp size is {}",
        lanes.len(),
        warp_size
    );
    match mode {
        StepMode::Stepped => execute_stepped(lanes, warp_size, sink),
        StepMode::RunLength => execute_run_length(lanes, warp_size, sink),
    }
}

/// The original round-by-round interpreter (the differential oracle).
fn execute_stepped<L: LaneProgram>(
    lanes: &mut [L],
    warp_size: u32,
    sink: &mut LaneSink,
) -> WarpExecution {
    let mut exec = WarpExecution {
        lanes: lanes.len() as u32,
        warp_size,
        ..WarpExecution::default()
    };
    let mut retired: Vec<bool> = vec![false; lanes.len()];
    let mut live = lanes.len();

    while live > 0 {
        // Gather one op from every live lane.
        let mut groups: BTreeMap<Op, u32> = BTreeMap::new();
        for (i, lane) in lanes.iter_mut().enumerate() {
            if retired[i] {
                continue;
            }
            match lane.step(sink) {
                Some(op) => {
                    *groups.entry(op).or_insert(0) += 1;
                }
                None => {
                    retired[i] = true;
                    live -= 1;
                }
            }
        }
        if groups.is_empty() {
            break;
        }
        if groups.len() > 1 {
            exec.divergent_rounds += 1;
        }
        for (op, lane_count) in groups {
            exec.issued += 1;
            exec.cycles += op.cycles as u64;
            exec.active_lane_slots += lane_count as u64;
            exec.lane_ops_by_kind[op.kind.index()] += lane_count as u64;
        }
    }
    exec
}

/// The run-length fast path: skips fully-converged stretches in O(1) and
/// handles divergent rounds with the allocation-free [`GroupTable`].
fn execute_run_length<L: LaneProgram>(
    lanes: &mut [L],
    warp_size: u32,
    sink: &mut LaneSink,
) -> WarpExecution {
    let mut exec = WarpExecution {
        lanes: lanes.len() as u32,
        warp_size,
        ..WarpExecution::default()
    };
    let mut retired: Vec<bool> = vec![false; lanes.len()];
    let mut live = lanes.len();
    let mut table = GroupTable::default();

    while live > 0 {
        // Fast path: every live lane claims a run of the same op — advance
        // min(len) converged rounds with one accounting update. Zero-length
        // claims carry no information and force the slow path.
        let mut converged: Option<(Op, u32)> = None;
        for (i, lane) in lanes.iter_mut().enumerate() {
            if retired[i] {
                continue;
            }
            match lane.peek_run() {
                Some(claim) if claim.len > 0 => match &mut converged {
                    None => converged = Some((claim.op, claim.len)),
                    Some((op, len)) if *op == claim.op => *len = (*len).min(claim.len),
                    Some(_) => {
                        converged = None;
                        break;
                    }
                },
                _ => {
                    converged = None;
                    break;
                }
            }
        }
        if let Some((op, run)) = converged {
            // Commit in lane order: the run-length contract confines sink
            // effects to a claimed run's final step, so this reproduces the
            // stepped round-by-round emission order exactly.
            for (i, lane) in lanes.iter_mut().enumerate() {
                if !retired[i] {
                    lane.commit_run(run, sink);
                }
            }
            // `run` fully-converged rounds: one issue of `op` per round with
            // every live lane active, and no divergence.
            let run = run as u64;
            exec.issued += run;
            exec.cycles += op.cycles as u64 * run;
            exec.active_lane_slots += live as u64 * run;
            exec.lane_ops_by_kind[op.kind.index()] += live as u64 * run;
            continue;
        }

        // Slow path: one stepped round, grouped without allocating.
        table.clear();
        for (i, lane) in lanes.iter_mut().enumerate() {
            if retired[i] {
                continue;
            }
            match lane.step(sink) {
                Some(op) => table.insert(op),
                None => {
                    retired[i] = true;
                    live -= 1;
                }
            }
        }
        if table.groups == 0 {
            break;
        }
        if table.groups > 1 {
            exec.divergent_rounds += 1;
        }
        for (kind_index, slot) in table.by_kind.iter().enumerate() {
            for &(cycles, lane_count) in slot {
                exec.issued += 1;
                exec.cycles += cycles as u64;
                exec.active_lane_slots += lane_count as u64;
                exec.lane_ops_by_kind[kind_index] += lane_count as u64;
            }
        }
    }
    exec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::FixedWorkLane;
    use crate::op::{Op, OpKind};

    fn dist_op() -> Op {
        Op::new(OpKind::Distance, 10)
    }

    #[test]
    fn uniform_work_is_fully_efficient() {
        let mut lanes: Vec<_> = (0..4).map(|_| FixedWorkLane::new(5, dist_op())).collect();
        let mut sink = LaneSink::new();
        let exec = execute_warp(&mut lanes, 4, &mut sink);
        assert_eq!(exec.issued, 5);
        assert_eq!(exec.cycles, 50);
        assert!((exec.efficiency() - 1.0).abs() < 1e-12);
        assert_eq!(exec.lane_ops_by_kind[OpKind::Distance.index()], 20);
        assert_eq!(exec.divergent_rounds, 0);
    }

    #[test]
    fn skewed_work_lowers_efficiency() {
        // One lane does 10 ops, three lanes do 1 op: the three sit idle for
        // nine rounds → efficiency = (4 + 9*1) / (10*4).
        let mut lanes = vec![
            FixedWorkLane::new(10, dist_op()),
            FixedWorkLane::new(1, dist_op()),
            FixedWorkLane::new(1, dist_op()),
            FixedWorkLane::new(1, dist_op()),
        ];
        let mut sink = LaneSink::new();
        let exec = execute_warp(&mut lanes, 4, &mut sink);
        assert_eq!(exec.issued, 10);
        assert_eq!(exec.cycles, 100);
        let expected = (4 + 9) as f64 / 40.0;
        assert!((exec.efficiency() - expected).abs() < 1e-12);
    }

    #[test]
    fn partial_warp_counts_missing_lanes_as_inactive() {
        let mut lanes = vec![FixedWorkLane::new(2, dist_op()); 2];
        let mut sink = LaneSink::new();
        let exec = execute_warp(&mut lanes, 4, &mut sink);
        assert_eq!(exec.lanes, 2);
        assert!((exec.efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn divergent_ops_serialize() {
        // Two lanes issue Distance, two issue Emit each round → 2 warp
        // instructions per round, each with half the lanes active.
        struct Alternating(u32, Op);
        impl LaneProgram for Alternating {
            fn step(&mut self, _s: &mut LaneSink) -> Option<Op> {
                if self.0 == 0 {
                    None
                } else {
                    self.0 -= 1;
                    Some(self.1)
                }
            }
        }
        let mut lanes = vec![
            Alternating(3, Op::new(OpKind::Distance, 10)),
            Alternating(3, Op::new(OpKind::Distance, 10)),
            Alternating(3, Op::new(OpKind::Emit, 8)),
            Alternating(3, Op::new(OpKind::Emit, 8)),
        ];
        let mut sink = LaneSink::new();
        let exec = execute_warp(&mut lanes, 4, &mut sink);
        assert_eq!(exec.issued, 6);
        assert_eq!(exec.cycles, 3 * (10 + 8));
        assert_eq!(exec.divergent_rounds, 3);
        assert!((exec.efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_warp_is_trivially_done() {
        let mut lanes: Vec<FixedWorkLane> = vec![];
        let mut sink = LaneSink::new();
        let exec = execute_warp(&mut lanes, 4, &mut sink);
        assert_eq!(exec.cycles, 0);
        assert_eq!(exec.issued, 0);
        assert_eq!(exec.efficiency(), 1.0);
    }

    #[test]
    #[should_panic(expected = "warp size")]
    fn oversized_warp_panics() {
        let mut lanes = vec![FixedWorkLane::new(1, dist_op()); 5];
        let mut sink = LaneSink::new();
        let _ = execute_warp(&mut lanes, 4, &mut sink);
    }

    #[test]
    fn modes_agree_on_skewed_work_with_claims() {
        let work = [10u32, 1, 7, 3];
        let make = || -> Vec<FixedWorkLane> {
            work.iter()
                .map(|&w| FixedWorkLane::new(w, dist_op()))
                .collect()
        };
        let (mut a, mut b) = (make(), make());
        let stepped = execute_warp_with(&mut a, 4, &mut LaneSink::new(), StepMode::Stepped);
        let fast = execute_warp_with(&mut b, 4, &mut LaneSink::new(), StepMode::RunLength);
        assert_eq!(stepped, fast);
        assert_eq!(fast.issued, 10);
        assert_eq!(fast.cycles, 100);
    }

    #[test]
    fn zero_length_claims_fall_back_to_stepped_rounds() {
        // A lane that claims R = 0 every round: the executor must treat it
        // as no-claim (degenerate run) and still execute correctly.
        struct ZeroClaim(u32);
        impl LaneProgram for ZeroClaim {
            fn step(&mut self, _s: &mut LaneSink) -> Option<Op> {
                (self.0 > 0).then(|| {
                    self.0 -= 1;
                    Op::new(OpKind::Distance, 10)
                })
            }
            fn peek_run(&mut self) -> Option<crate::lane::RunClaim> {
                Some(crate::lane::RunClaim {
                    op: Op::new(OpKind::Distance, 10),
                    len: 0,
                })
            }
        }
        let mut lanes = vec![ZeroClaim(5), ZeroClaim(5)];
        let exec = execute_warp_with(&mut lanes, 4, &mut LaneSink::new(), StepMode::RunLength);
        assert_eq!(exec.issued, 5);
        assert_eq!(exec.cycles, 50);
        assert_eq!(exec.divergent_rounds, 0);
    }

    #[test]
    fn same_kind_different_cost_ops_diverge_identically_in_both_modes() {
        // Two Distance groups with different cycle costs plus an Emit group:
        // three divergence groups per round, grouped by the fixed-array
        // table in RunLength mode and the BTreeMap in Stepped mode.
        #[derive(Clone)]
        struct Fixed(u32, Op);
        impl LaneProgram for Fixed {
            fn step(&mut self, _s: &mut LaneSink) -> Option<Op> {
                (self.0 > 0).then(|| {
                    self.0 -= 1;
                    self.1
                })
            }
        }
        let make = || {
            vec![
                Fixed(4, Op::new(OpKind::Distance, 10)),
                Fixed(4, Op::new(OpKind::Distance, 25)),
                Fixed(4, Op::new(OpKind::Emit, 8)),
                Fixed(2, Op::new(OpKind::Distance, 10)),
            ]
        };
        let (mut a, mut b) = (make(), make());
        let stepped = execute_warp_with(&mut a, 4, &mut LaneSink::new(), StepMode::Stepped);
        let fast = execute_warp_with(&mut b, 4, &mut LaneSink::new(), StepMode::RunLength);
        assert_eq!(stepped, fast);
        assert_eq!(fast.divergent_rounds, 4);
        assert_eq!(fast.lane_ops_by_kind[OpKind::Distance.index()], 10);
        assert_eq!(fast.lane_ops_by_kind[OpKind::Emit.index()], 4);
    }

    #[test]
    fn accumulate_sums_counters() {
        let mut lanes = vec![FixedWorkLane::new(2, dist_op()); 4];
        let mut sink = LaneSink::new();
        let a = execute_warp(&mut lanes, 4, &mut sink);
        let mut total = WarpExecution::default();
        total.accumulate(&a);
        total.accumulate(&a);
        assert_eq!(total.cycles, 2 * a.cycles);
        assert_eq!(total.issued, 2 * a.issued);
        assert_eq!(
            total.lane_ops_by_kind[OpKind::Distance.index()],
            2 * a.lane_ops_by_kind[OpKind::Distance.index()]
        );
    }
}
