//! Lockstep warp execution with divergence serialization.

use std::collections::BTreeMap;

use crate::lane::{LaneProgram, LaneSink};
use crate::op::{Op, NUM_OP_KINDS};

/// The outcome of micro-executing one warp: its serialized duration and the
/// statistics from which warp execution efficiency is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarpExecution {
    /// Serialized duration of the warp's instruction stream, in model cycles.
    pub cycles: u64,
    /// Number of warp instructions issued (divergence groups issue separately).
    pub issued: u64,
    /// Sum over issues of the number of active lanes.
    pub active_lane_slots: u64,
    /// Lanes the warp was created with (may be < warp size for tail warps).
    pub lanes: u32,
    /// The warp width used for efficiency accounting.
    pub warp_size: u32,
    /// Per-kind count of lane-ops executed (e.g. total distance calculations).
    pub lane_ops_by_kind: [u64; NUM_OP_KINDS],
    /// Number of lockstep rounds in which >1 divergence group was present.
    pub divergent_rounds: u64,
}

impl WarpExecution {
    /// Warp execution efficiency: average fraction of active lanes per
    /// issued warp instruction, in `[0, 1]`. Lanes disabled because a tail
    /// warp is only partially populated count as inactive, as on hardware.
    pub fn efficiency(&self) -> f64 {
        if self.issued == 0 {
            1.0
        } else {
            self.active_lane_slots as f64 / (self.issued * self.warp_size as u64) as f64
        }
    }

    /// Total lane-ops across all kinds.
    pub fn total_lane_ops(&self) -> u64 {
        self.lane_ops_by_kind.iter().sum()
    }

    /// Accumulates another warp's counters into this one (for kernel totals).
    pub fn accumulate(&mut self, other: &WarpExecution) {
        self.cycles += other.cycles;
        self.issued += other.issued;
        self.active_lane_slots += other.active_lane_slots;
        self.divergent_rounds += other.divergent_rounds;
        for k in 0..NUM_OP_KINDS {
            self.lane_ops_by_kind[k] += other.lane_ops_by_kind[k];
        }
    }
}

/// Micro-executes one warp's lanes in lockstep.
///
/// Each round, every unfinished lane produces its next [`Op`]. Lanes whose
/// ops are identical execute together as one warp instruction; distinct ops
/// within a round are divergence groups and execute serially, with the other
/// lanes masked (idle) — the SIMT branch-serialization rule. A lane that has
/// retired stays masked for the remainder of the warp's execution, which is
/// precisely how intra-warp load imbalance wastes execution slots.
pub fn execute_warp<L: LaneProgram>(
    lanes: &mut [L],
    warp_size: u32,
    sink: &mut LaneSink,
) -> WarpExecution {
    assert!(
        lanes.len() <= warp_size as usize,
        "warp created with {} lanes but warp size is {}",
        lanes.len(),
        warp_size
    );
    let mut exec = WarpExecution {
        lanes: lanes.len() as u32,
        warp_size,
        ..WarpExecution::default()
    };
    let mut pending: Vec<Option<Op>> = vec![None; lanes.len()];
    let mut retired: Vec<bool> = vec![false; lanes.len()];
    let mut live = lanes.len();

    while live > 0 {
        // Gather one op from every live lane.
        let mut groups: BTreeMap<Op, u32> = BTreeMap::new();
        for (i, lane) in lanes.iter_mut().enumerate() {
            if retired[i] {
                continue;
            }
            match lane.step(sink) {
                Some(op) => {
                    pending[i] = Some(op);
                    *groups.entry(op).or_insert(0) += 1;
                }
                None => {
                    retired[i] = true;
                    pending[i] = None;
                    live -= 1;
                }
            }
        }
        if groups.is_empty() {
            break;
        }
        if groups.len() > 1 {
            exec.divergent_rounds += 1;
        }
        for (op, lane_count) in groups {
            exec.issued += 1;
            exec.cycles += op.cycles as u64;
            exec.active_lane_slots += lane_count as u64;
            exec.lane_ops_by_kind[op.kind.index()] += lane_count as u64;
        }
    }
    exec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::FixedWorkLane;
    use crate::op::{Op, OpKind};

    fn dist_op() -> Op {
        Op::new(OpKind::Distance, 10)
    }

    #[test]
    fn uniform_work_is_fully_efficient() {
        let mut lanes: Vec<_> = (0..4).map(|_| FixedWorkLane::new(5, dist_op())).collect();
        let mut sink = LaneSink::new();
        let exec = execute_warp(&mut lanes, 4, &mut sink);
        assert_eq!(exec.issued, 5);
        assert_eq!(exec.cycles, 50);
        assert!((exec.efficiency() - 1.0).abs() < 1e-12);
        assert_eq!(exec.lane_ops_by_kind[OpKind::Distance.index()], 20);
        assert_eq!(exec.divergent_rounds, 0);
    }

    #[test]
    fn skewed_work_lowers_efficiency() {
        // One lane does 10 ops, three lanes do 1 op: the three sit idle for
        // nine rounds → efficiency = (4 + 9*1) / (10*4).
        let mut lanes = vec![
            FixedWorkLane::new(10, dist_op()),
            FixedWorkLane::new(1, dist_op()),
            FixedWorkLane::new(1, dist_op()),
            FixedWorkLane::new(1, dist_op()),
        ];
        let mut sink = LaneSink::new();
        let exec = execute_warp(&mut lanes, 4, &mut sink);
        assert_eq!(exec.issued, 10);
        assert_eq!(exec.cycles, 100);
        let expected = (4 + 9) as f64 / 40.0;
        assert!((exec.efficiency() - expected).abs() < 1e-12);
    }

    #[test]
    fn partial_warp_counts_missing_lanes_as_inactive() {
        let mut lanes = vec![FixedWorkLane::new(2, dist_op()); 2];
        let mut sink = LaneSink::new();
        let exec = execute_warp(&mut lanes, 4, &mut sink);
        assert_eq!(exec.lanes, 2);
        assert!((exec.efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn divergent_ops_serialize() {
        // Two lanes issue Distance, two issue Emit each round → 2 warp
        // instructions per round, each with half the lanes active.
        struct Alternating(u32, Op);
        impl LaneProgram for Alternating {
            fn step(&mut self, _s: &mut LaneSink) -> Option<Op> {
                if self.0 == 0 {
                    None
                } else {
                    self.0 -= 1;
                    Some(self.1)
                }
            }
        }
        let mut lanes = vec![
            Alternating(3, Op::new(OpKind::Distance, 10)),
            Alternating(3, Op::new(OpKind::Distance, 10)),
            Alternating(3, Op::new(OpKind::Emit, 8)),
            Alternating(3, Op::new(OpKind::Emit, 8)),
        ];
        let mut sink = LaneSink::new();
        let exec = execute_warp(&mut lanes, 4, &mut sink);
        assert_eq!(exec.issued, 6);
        assert_eq!(exec.cycles, 3 * (10 + 8));
        assert_eq!(exec.divergent_rounds, 3);
        assert!((exec.efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_warp_is_trivially_done() {
        let mut lanes: Vec<FixedWorkLane> = vec![];
        let mut sink = LaneSink::new();
        let exec = execute_warp(&mut lanes, 4, &mut sink);
        assert_eq!(exec.cycles, 0);
        assert_eq!(exec.issued, 0);
        assert_eq!(exec.efficiency(), 1.0);
    }

    #[test]
    #[should_panic(expected = "warp size")]
    fn oversized_warp_panics() {
        let mut lanes = vec![FixedWorkLane::new(1, dist_op()); 5];
        let mut sink = LaneSink::new();
        let _ = execute_warp(&mut lanes, 4, &mut sink);
    }

    #[test]
    fn accumulate_sums_counters() {
        let mut lanes = vec![FixedWorkLane::new(2, dist_op()); 4];
        let mut sink = LaneSink::new();
        let a = execute_warp(&mut lanes, 4, &mut sink);
        let mut total = WarpExecution::default();
        total.accumulate(&a);
        total.accumulate(&a);
        assert_eq!(total.cycles, 2 * a.cycles);
        assert_eq!(total.issued, 2 * a.issued);
        assert_eq!(
            total.lane_ops_by_kind[OpKind::Distance.index()],
            2 * a.lane_ops_by_kind[OpKind::Distance.index()]
        );
    }
}
