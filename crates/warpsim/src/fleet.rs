//! A fleet of independent simulated devices.
//!
//! The single-GPU model in this crate is one [`GpuConfig`] plus the
//! device-side primitives a kernel touches: the queue-head atomic
//! ([`DeviceCounter`]), the result buffer, and (optionally) a fault plane.
//! A [`DeviceFleet`] instantiates *N* of those devices side by side, each
//! with its **own** counter, occupancy/clock configuration, and
//! fault-injection plane — nothing is shared between devices, exactly like
//! N boards on one host. The multi-device executor in the `core` crate
//! assigns each device a contiguous shard of the batch plan and drives its
//! launches against that device's counter and plane; a fault on one device
//! (including a sticky device-lost condition) is invisible to the others.
//!
//! Streams are a host-side concept in this model (an analytic
//! kernel/transfer overlap schedule, [`crate::stream::StreamPipeline`]);
//! the executor builds one pipeline per device, so each device also has its
//! own streams.

use crate::atomics::DeviceCounter;
use crate::config::GpuConfig;
use crate::fault::{FaultPlane, FaultProfile, FaultSchedule};

/// One simulated GPU in a [`DeviceFleet`].
///
/// Owns the per-device state the executor must not share across shards: the
/// device configuration (SM count, warp width, clock — the occupancy
/// model), the work-queue head atomic, and an optional fault plane whose
/// launch indices count only this device's launches.
#[derive(Debug)]
pub struct SimDevice {
    id: usize,
    gpu: GpuConfig,
    counter: DeviceCounter,
    fault: Option<FaultPlane>,
}

impl SimDevice {
    /// Creates a device with the given id and configuration, a fresh
    /// counter, and no fault plane.
    pub fn new(id: usize, gpu: GpuConfig) -> Self {
        Self {
            id,
            gpu,
            counter: DeviceCounter::new(),
            fault: None,
        }
    }

    /// The device's index within its fleet.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The device's configuration.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// The device's work-queue head.
    pub fn counter(&self) -> &DeviceCounter {
        &self.counter
    }

    /// The device's fault plane, if one is attached.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.fault.as_ref()
    }

    /// Whether this device has latched a device-lost fault.
    pub fn is_lost(&self) -> bool {
        self.fault.as_ref().is_some_and(FaultPlane::device_lost)
    }
}

/// N independent simulated GPUs.
///
/// Construction is homogeneous (the common case and the one under which the
/// sharded executor's merged report is bit-identical to a single-device
/// run); per-device fault schedules are attached afterwards with
/// [`DeviceFleet::with_fault_schedule`] or
/// [`DeviceFleet::with_seeded_faults`].
#[derive(Debug)]
pub struct DeviceFleet {
    devices: Vec<SimDevice>,
}

impl DeviceFleet {
    /// Builds a fleet of `n` identically configured devices (ids `0..n`).
    pub fn homogeneous(n: usize, gpu: GpuConfig) -> Self {
        Self {
            devices: (0..n).map(|id| SimDevice::new(id, gpu)).collect(),
        }
    }

    /// Attaches an explicit fault schedule to device `device`.
    ///
    /// # Panics
    /// If `device` is out of range.
    pub fn with_fault_schedule(mut self, device: usize, schedule: FaultSchedule) -> Self {
        self.devices[device].fault = Some(FaultPlane::new(schedule));
        self
    }

    /// Attaches a seeded fault plane rolled from `profile` to device
    /// `device`.
    ///
    /// # Panics
    /// If `device` is out of range.
    pub fn with_seeded_faults(mut self, device: usize, seed: u64, profile: &FaultProfile) -> Self {
        self.devices[device].fault = Some(FaultPlane::seeded(seed, profile));
        self
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device at index `i`.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn device(&self, i: usize) -> &SimDevice {
        &self.devices[i]
    }

    /// Iterates over the devices in id order.
    pub fn iter(&self) -> impl Iterator<Item = &SimDevice> {
        self.devices.iter()
    }

    /// How many devices have latched a device-lost fault.
    pub fn lost_devices(&self) -> usize {
        self.devices.iter().filter(|d| d.is_lost()).count()
    }

    /// Ids of the devices that have **not** latched a device-lost fault, in
    /// id order — the candidate set a failover re-shard may cut across.
    pub fn surviving_devices(&self) -> Vec<usize> {
        self.devices
            .iter()
            .filter(|d| !d.is_lost())
            .map(SimDevice::id)
            .collect()
    }

    /// Total faults injected across all devices' planes.
    pub fn injected_faults(&self) -> u64 {
        self.devices
            .iter()
            .filter_map(|d| d.fault_plane())
            .map(FaultPlane::injected_faults)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_fleet_has_independent_counters() {
        let fleet = DeviceFleet::homogeneous(3, GpuConfig::default());
        assert_eq!(fleet.len(), 3);
        fleet.device(0).counter().store(10);
        fleet.device(1).counter().fetch_add(5);
        assert_eq!(fleet.device(0).counter().load(), 10);
        assert_eq!(fleet.device(1).counter().load(), 5);
        assert_eq!(fleet.device(2).counter().load(), 0);
    }

    #[test]
    fn device_ids_and_configs() {
        let gpu = GpuConfig {
            num_sms: 4,
            ..GpuConfig::default()
        };
        let fleet = DeviceFleet::homogeneous(2, gpu);
        for (i, dev) in fleet.iter().enumerate() {
            assert_eq!(dev.id(), i);
            assert_eq!(dev.gpu().num_sms, 4);
            assert!(dev.fault_plane().is_none());
            assert!(!dev.is_lost());
        }
    }

    #[test]
    fn fault_planes_are_per_device() {
        let fleet = DeviceFleet::homogeneous(3, GpuConfig::default())
            .with_fault_schedule(1, FaultSchedule::new().device_lost_at(0));
        assert!(fleet.device(0).fault_plane().is_none());
        assert!(fleet.device(2).fault_plane().is_none());
        let plane = fleet.device(1).fault_plane().unwrap();
        // Latch the device-lost fault by admitting a launch.
        assert!(plane.admit_launch().is_err());
        assert!(fleet.device(1).is_lost());
        assert!(!fleet.device(0).is_lost());
        assert_eq!(fleet.lost_devices(), 1);
        assert_eq!(fleet.surviving_devices(), vec![0, 2]);
        assert_eq!(fleet.injected_faults(), 1);
    }

    #[test]
    fn seeded_faults_attach_a_plane() {
        let fleet = DeviceFleet::homogeneous(2, GpuConfig::default()).with_seeded_faults(
            0,
            42,
            &FaultProfile::transient(),
        );
        assert!(fleet.device(0).fault_plane().is_some());
        assert!(fleet.device(1).fault_plane().is_none());
    }

    #[test]
    fn empty_fleet() {
        let fleet = DeviceFleet::homogeneous(0, GpuConfig::default());
        assert!(fleet.is_empty());
        assert_eq!(fleet.lost_devices(), 0);
        assert_eq!(fleet.injected_faults(), 0);
    }
}
