//! SM occupancy: how many warps an SM can host concurrently.
//!
//! The paper (§III) notes that "due to hardware limitations (e.g., the
//! number of available registers), only a limited number of warps can be
//! executed concurrently on the GPU". This module computes that limit the
//! way the CUDA occupancy calculator does: the binding constraint among
//! the SM's architectural warp cap, block cap, register file and shared
//! memory, given a kernel's per-thread/per-block resource usage.

/// Per-SM architectural limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmLimits {
    /// Maximum resident warps.
    pub max_warps: u32,
    /// Maximum resident blocks.
    pub max_blocks: u32,
    /// Register file size (32-bit registers).
    pub registers: u32,
    /// Shared memory in bytes.
    pub shared_mem: u32,
    /// Lanes per warp.
    pub warp_size: u32,
}

impl SmLimits {
    /// Pascal GP100 (the paper's Quadro GP100): 64 warps, 32 blocks,
    /// 64 K registers, 64 KiB shared memory per SM.
    pub fn gp100() -> Self {
        Self {
            max_warps: 64,
            max_blocks: 32,
            registers: 65_536,
            shared_mem: 64 * 1024,
            warp_size: 32,
        }
    }
}

/// A kernel's resource appetite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelResources {
    /// Registers per thread.
    pub registers_per_thread: u32,
    /// Static + dynamic shared memory per block, bytes.
    pub shared_mem_per_block: u32,
    /// Threads per block.
    pub block_size: u32,
}

impl KernelResources {
    /// A register-light kernel (the self-join kernels use no shared memory
    /// and modest register counts).
    pub fn light(block_size: u32) -> Self {
        Self {
            registers_per_thread: 32,
            shared_mem_per_block: 0,
            block_size,
        }
    }
}

/// Resident warps per SM for a kernel: the minimum over the warp cap, the
/// block cap, the register budget and the shared-memory budget, rounded
/// down to whole blocks (blocks are scheduled atomically).
///
/// Returns 0 if even a single block does not fit.
pub fn resident_warps_per_sm(limits: &SmLimits, kernel: &KernelResources) -> u32 {
    let warps_per_block = kernel.block_size.div_ceil(limits.warp_size).max(1);
    let by_warps = limits.max_warps / warps_per_block;
    let by_blocks = limits.max_blocks;
    let regs_per_block = kernel.registers_per_thread * kernel.block_size;
    let by_registers = limits
        .registers
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    let by_shared = limits
        .shared_mem
        .checked_div(kernel.shared_mem_per_block)
        .unwrap_or(u32::MAX);
    let blocks = by_warps.min(by_blocks).min(by_registers).min(by_shared);
    blocks * warps_per_block
}

/// Occupancy as a fraction of the SM's warp cap.
pub fn occupancy(limits: &SmLimits, kernel: &KernelResources) -> f64 {
    resident_warps_per_sm(limits, kernel) as f64 / limits.max_warps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_kernel_reaches_full_occupancy() {
        let limits = SmLimits::gp100();
        let kernel = KernelResources::light(256);
        // 32 regs × 256 threads = 8192 regs/block → 8 blocks by registers,
        // warp cap allows 64/8 = 8 blocks: full occupancy.
        assert_eq!(resident_warps_per_sm(&limits, &kernel), 64);
        assert_eq!(occupancy(&limits, &kernel), 1.0);
    }

    #[test]
    fn register_pressure_cuts_occupancy() {
        let limits = SmLimits::gp100();
        let kernel = KernelResources {
            registers_per_thread: 96,
            shared_mem_per_block: 0,
            block_size: 256,
        };
        // 96 × 256 = 24576 regs/block → 2 blocks → 16 warps.
        assert_eq!(resident_warps_per_sm(&limits, &kernel), 16);
        assert!(occupancy(&limits, &kernel) < 0.3);
    }

    #[test]
    fn shared_memory_can_be_the_binding_constraint() {
        let limits = SmLimits::gp100();
        let kernel = KernelResources {
            registers_per_thread: 16,
            shared_mem_per_block: 48 * 1024,
            block_size: 128,
        };
        // Only one 48 KiB block fits in 64 KiB → 4 warps.
        assert_eq!(resident_warps_per_sm(&limits, &kernel), 4);
    }

    #[test]
    fn block_cap_limits_small_blocks() {
        let limits = SmLimits::gp100();
        let kernel = KernelResources::light(32);
        // 1 warp per block, max 32 blocks → 32 warps despite the 64-warp cap.
        assert_eq!(resident_warps_per_sm(&limits, &kernel), 32);
    }

    #[test]
    fn oversized_block_does_not_fit() {
        let limits = SmLimits::gp100();
        let kernel = KernelResources {
            registers_per_thread: 255,
            shared_mem_per_block: 0,
            block_size: 1024,
        };
        // 255 × 1024 > 65536: zero blocks fit.
        assert_eq!(resident_warps_per_sm(&limits, &kernel), 0);
    }

    #[test]
    fn monotone_in_register_usage() {
        let limits = SmLimits::gp100();
        let mut prev = u32::MAX;
        for regs in [16u32, 32, 48, 64, 96, 128, 192, 255] {
            let kernel = KernelResources {
                registers_per_thread: regs,
                shared_mem_per_block: 0,
                block_size: 256,
            };
            let warps = resident_warps_per_sm(&limits, &kernel);
            assert!(
                warps <= prev,
                "occupancy must not increase with register usage"
            );
            prev = warps;
        }
    }
}
