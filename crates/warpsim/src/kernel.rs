//! Kernel launch: warps → lockstep micro-execution → machine makespan.
//!
//! A kernel is described by a [`WarpSource`], which constructs the lane
//! programs of each warp. Construction happens **sequentially in issue
//! order** — this is what gives the WORKQUEUE its semantics: a source that
//! pops a [`crate::atomics::DeviceCounter`] in `make_warp` hands out work in
//! exactly the order warps start on the device. Micro-execution of the warp
//! bodies (the expensive part) is then parallelized across host threads,
//! which is purely an implementation detail: every warp's execution is
//! self-contained, so the simulation stays deterministic.

use sj_telemetry::{Event, Stopwatch, Telemetry};

use crate::config::GpuConfig;
use crate::fault::{CounterFault, DeviceLostFault, FaultPlane, TransientFault};
use crate::lane::{LaneProgram, LaneSink};
use crate::machine::{MachineModel, MakespanReport};
use crate::memory::{BufferOverflow, DeviceBuffer};
use crate::metrics::WarpStatsSummary;
use crate::scheduler::IssueOrder;
use crate::warp::{execute_warp_with, StepMode, WarpExecution};

/// Describes the warps of one kernel launch.
pub trait WarpSource: Sync {
    /// The lane program type of this kernel.
    type Lane: LaneProgram + Send;

    /// Number of warps in the launch grid.
    fn num_warps(&self) -> usize;

    /// Constructs the lane programs of warp `warp_id`.
    ///
    /// Called exactly once per warp, sequentially, in **issue order**.
    /// May return fewer lanes than the warp size (tail warps).
    fn make_warp(&self, warp_id: u32) -> Vec<Self::Lane>;
}

/// Errors from [`launch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchError {
    /// The kernel emitted more result pairs than the device buffer holds.
    /// On real hardware this is the buffer overflow the batching scheme must
    /// prevent; the simulator turns it into a hard error.
    ResultOverflow(BufferOverflow),
    /// The launch failed transiently; re-submitting it may succeed.
    Transient(TransientFault),
    /// The device is gone; this launch and every later one fails.
    DeviceLost(DeviceLostFault),
    /// A device counter does not hold the value the host requires (detected
    /// by the executor's queue-drain invariant, never raised by the
    /// simulator itself).
    CounterFault(CounterFault),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::ResultOverflow(e) => write!(f, "kernel result overflow: {e}"),
            LaunchError::Transient(e) => write!(f, "transient launch failure: {e}"),
            LaunchError::DeviceLost(e) => write!(f, "device lost: {e}"),
            LaunchError::CounterFault(e) => write!(f, "device counter fault: {e}"),
        }
    }
}

impl std::error::Error for LaunchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LaunchError::ResultOverflow(e) => Some(e),
            LaunchError::Transient(e) => Some(e),
            LaunchError::DeviceLost(e) => Some(e),
            LaunchError::CounterFault(e) => Some(e),
        }
    }
}

impl LaunchError {
    /// Short machine-readable class name (telemetry field value).
    pub fn class(&self) -> &'static str {
        match self {
            LaunchError::ResultOverflow(_) => "overflow",
            LaunchError::Transient(_) => "transient",
            LaunchError::DeviceLost(_) => "device_lost",
            LaunchError::CounterFault(_) => "counter",
        }
    }
}

/// The outcome of one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchReport {
    /// Number of warps launched.
    pub warps: usize,
    /// Accumulated per-warp counters (cycles here is the *sum* of warp
    /// durations, not elapsed time — see `makespan`).
    pub totals: WarpExecution,
    /// Machine-level schedule of the warps.
    pub makespan: MakespanReport,
    /// Per-warp serialized durations, indexed by warp id.
    pub warp_cycles: Vec<u64>,
    /// Result pairs emitted by this launch.
    pub pairs_emitted: usize,
    /// Effective model clock (derated) used for second conversions.
    pub clock_hz: f64,
}

impl LaunchReport {
    /// Warp execution efficiency over the whole launch, in `[0, 1]`.
    pub fn wee(&self) -> f64 {
        self.totals.efficiency()
    }

    /// Elapsed model cycles (machine makespan).
    pub fn elapsed_cycles(&self) -> u64 {
        self.makespan.makespan
    }

    /// Elapsed model seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_cycles() as f64 / self.clock_hz
    }

    /// Summary of per-warp durations (inter-warp imbalance).
    pub fn warp_stats(&self) -> Option<WarpStatsSummary> {
        WarpStatsSummary::from_durations(&self.warp_cycles)
    }

    /// Total distance calculations performed (refine-step work).
    pub fn distance_calcs(&self) -> u64 {
        self.totals.lane_ops_by_kind[crate::op::OpKind::Distance.index()]
    }
}

/// Host-side options for [`launch_with`].
///
/// Every knob is purely host-side: they may change how fast the simulation
/// itself runs and what gets observed, but never the simulated results
/// (pair sets, cycle counts, WEE). [`launch`] uses the defaults.
pub struct LaunchOptions<'t> {
    /// Sink receiving the per-launch telemetry span (warp serialization,
    /// list scheduling, WEE, lane-occupancy histogram). Defaults to the
    /// zero-cost null sink.
    pub telemetry: &'t dyn Telemetry,
    /// Forces the number of host worker threads used for warp
    /// micro-execution; `None` uses `std::thread::available_parallelism()`.
    pub workers: Option<usize>,
    /// Fault-injection plane gating this launch (see [`crate::fault`]).
    /// `None` — and a plane with an empty schedule — leave simulated
    /// behaviour unchanged.
    pub fault_plane: Option<&'t FaultPlane>,
    /// How warps are advanced through their lockstep rounds: the default
    /// [`StepMode::RunLength`] fast path, or the [`StepMode::Stepped`]
    /// oracle. Bit-identical simulated results either way.
    pub step_mode: StepMode,
}

impl Default for LaunchOptions<'static> {
    fn default() -> Self {
        Self {
            telemetry: &sj_telemetry::NULL,
            workers: None,
            fault_plane: None,
            step_mode: StepMode::default(),
        }
    }
}

impl<'t> LaunchOptions<'t> {
    /// Options recording to `telemetry`, with default host parallelism.
    pub fn with_telemetry(telemetry: &'t dyn Telemetry) -> Self {
        Self {
            telemetry,
            workers: None,
            fault_plane: None,
            step_mode: StepMode::default(),
        }
    }

    /// Builder-style: attach a fault-injection plane.
    pub fn with_fault_plane(mut self, plane: &'t FaultPlane) -> Self {
        self.fault_plane = Some(plane);
        self
    }

    /// Builder-style: select the warp step mode.
    pub fn with_step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Builder-style: force the host worker thread count for warp
    /// micro-execution (`None`/unset uses the available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }
}

/// A Phase-2 work slot: one constructed warp, claimed exactly once by a
/// stealing worker.
type WarpWork<L> = std::sync::Mutex<Option<(u32, Vec<L>)>>;

/// A Phase-2 result slot, indexed like its work slot so Phase 3 aggregates
/// in an order independent of worker scheduling.
type WarpOut = std::sync::Mutex<Option<(u32, WarpExecution, LaneSink)>>;

/// Launches a kernel: constructs warps in issue order, micro-executes them,
/// appends their result pairs to `out` (in warp-id order, so output is
/// deterministic across issue policies), and schedules their durations onto
/// the occupancy-limited machine.
pub fn launch<S: WarpSource>(
    gpu: &GpuConfig,
    source: &S,
    order: IssueOrder,
    out: &mut DeviceBuffer<(u32, u32)>,
) -> Result<LaunchReport, LaunchError> {
    launch_with(gpu, source, order, out, &LaunchOptions::default())
}

/// [`launch`] with explicit host-side [`LaunchOptions`].
pub fn launch_with<S: WarpSource>(
    gpu: &GpuConfig,
    source: &S,
    order: IssueOrder,
    out: &mut DeviceBuffer<(u32, u32)>,
    opts: &LaunchOptions<'_>,
) -> Result<LaunchReport, LaunchError> {
    let sw_total = Stopwatch::start();
    let telemetry_on = opts.telemetry.is_enabled();

    // Fault-plane admission. Transient and device-lost faults abort here,
    // before any warp is constructed, so device state (queue counters) is
    // exactly that of a launch that never reached the device. A forced
    // overflow lets the launch run and surfaces at the gather step below,
    // like a real capacity overflow.
    let mut force_overflow = false;
    if let Some(plane) = opts.fault_plane {
        match plane.admit_launch() {
            Ok(admission) => {
                force_overflow = admission.force_overflow;
                if telemetry_on && force_overflow {
                    opts.telemetry.record(
                        Event::new("warpsim.fault", "injected")
                            .str("kind", "forced_overflow")
                            .u64("launch_index", admission.launch_index),
                    );
                }
            }
            Err(err) => {
                if telemetry_on {
                    opts.telemetry.record(
                        Event::new("warpsim.fault", "injected")
                            .str("kind", err.class())
                            .str("error", err.to_string()),
                    );
                }
                return Err(err);
            }
        }
    }

    let num_warps = source.num_warps();
    let issue_order = order.permutation(num_warps, gpu.warps_per_block() as usize);

    // Phase 1: construct lane programs sequentially in issue order (this is
    // where work-queue sources pop the device counter).
    let sw_construct = Stopwatch::start();
    let mut warps: Vec<(u32, Vec<S::Lane>)> = Vec::with_capacity(num_warps);
    for &warp_id in &issue_order {
        warps.push((warp_id, source.make_warp(warp_id)));
    }
    let construct_ns = sw_construct.elapsed_ns();

    // Phase 2: micro-execute warp bodies, in parallel on the host. Workers
    // steal fixed-size chunks of the warp list from an atomic cursor, so a
    // long warp only delays its own chunk while idle workers drain the
    // rest; each warp advances on exactly one thread (the run-length fast
    // path stays lock-free per warp) and its result lands in a per-index
    // slot, which keeps Phase 3 aggregation order independent of workers.
    let sw_exec = Stopwatch::start();
    let warp_size = gpu.warp_size;
    let workers = opts
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(num_warps.max(1));
    let step_mode = opts.step_mode;
    let mut slots: Vec<Option<(u32, WarpExecution, LaneSink)>>;
    if workers > 1 {
        let work: Vec<WarpWork<S::Lane>> = warps
            .into_iter()
            .map(|w| std::sync::Mutex::new(Some(w)))
            .collect();
        let out: Vec<WarpOut> = (0..num_warps)
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let chunk = num_warps.div_ceil(workers * 4).max(1);
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let start = cursor.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                    if start >= work.len() {
                        break;
                    }
                    for idx in start..(start + chunk).min(work.len()) {
                        let (warp_id, mut lanes) =
                            work[idx].lock().unwrap().take().expect("warp claimed once");
                        let mut sink = LaneSink::new();
                        let exec = execute_warp_with(&mut lanes, warp_size, &mut sink, step_mode);
                        *out[idx].lock().unwrap() = Some((warp_id, exec, sink));
                    }
                });
            }
        });
        slots = out.into_iter().map(|m| m.into_inner().unwrap()).collect();
    } else {
        slots = Vec::with_capacity(num_warps);
        for (warp_id, mut lanes) in warps {
            let mut sink = LaneSink::new();
            let exec = execute_warp_with(&mut lanes, warp_size, &mut sink, step_mode);
            slots.push(Some((warp_id, exec, sink)));
        }
    }
    let exec_ns = sw_exec.elapsed_ns();

    // Phase 3: aggregate. Durations stay in issue order for the machine
    // model; pairs are appended in warp-id order for determinism.
    let mut totals = WarpExecution {
        warp_size,
        ..WarpExecution::default()
    };
    let mut durations_issue_order = Vec::with_capacity(num_warps);
    let mut warp_cycles = vec![0u64; num_warps];
    // Lane-occupancy histogram (the per-warp view behind Fig. 3/7): bucket
    // each warp by its mean active lanes per issued instruction. Collected
    // only when a real sink is attached — observation only, never behaviour.
    let mut occupancy_hist = vec![0u64; warp_size as usize + 1];
    let mut by_warp_id: Vec<Option<LaneSink>> = Vec::with_capacity(num_warps);
    by_warp_id.resize_with(num_warps, || None);
    for slot in slots {
        let (warp_id, exec, sink) = slot.expect("every warp slot is filled");
        totals.accumulate(&exec);
        totals.lanes += exec.lanes;
        durations_issue_order.push(exec.cycles);
        warp_cycles[warp_id as usize] = exec.cycles;
        if telemetry_on && exec.issued > 0 {
            let mean_active = (exec.active_lane_slots as f64 / exec.issued as f64).round() as usize;
            occupancy_hist[mean_active.min(warp_size as usize)] += 1;
        }
        by_warp_id[warp_id as usize] = Some(sink);
    }
    let mut pairs_emitted = 0usize;
    for sink in by_warp_id.into_iter().flatten() {
        pairs_emitted += sink.len();
        out.extend_from_slice(sink.pairs())
            .map_err(LaunchError::ResultOverflow)?;
    }
    if force_overflow {
        // Synthesize the overflow the schedule demanded: report one more
        // pair than the buffer could still have held.
        return Err(LaunchError::ResultOverflow(BufferOverflow {
            capacity: out.capacity(),
            len: out.len(),
            attempted: out.remaining() + 1,
        }));
    }

    let machine = MachineModel::new(gpu.total_warp_slots());
    let makespan = machine.schedule(&durations_issue_order);

    let report = LaunchReport {
        warps: num_warps,
        totals,
        makespan,
        warp_cycles,
        pairs_emitted,
        clock_hz: gpu.effective_clock_hz(),
    };

    if telemetry_on {
        let hist = occupancy_hist
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(",");
        opts.telemetry.record(
            Event::new("warpsim.launch", "kernel")
                .u64("warps", report.warps as u64)
                .u64("pairs_emitted", report.pairs_emitted as u64)
                .u64("elapsed_cycles", report.elapsed_cycles())
                .f64("elapsed_model_s", report.elapsed_seconds())
                .u64("serialized_cycles", report.totals.cycles)
                .u64("issued", report.totals.issued)
                .u64("active_lane_slots", report.totals.active_lane_slots)
                .u64("divergent_rounds", report.totals.divergent_rounds)
                .u64("distance_calcs", report.distance_calcs())
                .f64("wee", report.wee())
                .u64("machine_slots", report.makespan.slots as u64)
                .f64("machine_idle_fraction", report.makespan.idle_fraction())
                .f64(
                    "machine_balance_overhead",
                    report.makespan.balance_overhead(),
                )
                .str("lane_occupancy_hist", hist)
                .u64("host_workers", workers as u64)
                .u64("host_construct_ns", construct_ns)
                .u64("host_exec_ns", exec_ns)
                .u64("host_total_ns", sw_total.elapsed_ns()),
        );
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::FixedWorkLane;
    use crate::op::{Op, OpKind};

    /// A kernel of `warps` warps where warp `w` has lanes doing `work[w]`
    /// identical distance ops each.
    struct UniformWarps {
        work: Vec<u32>,
        lanes_per_warp: u32,
    }

    impl WarpSource for UniformWarps {
        type Lane = FixedWorkLane;
        fn num_warps(&self) -> usize {
            self.work.len()
        }
        fn make_warp(&self, warp_id: u32) -> Vec<FixedWorkLane> {
            (0..self.lanes_per_warp)
                .map(|_| {
                    FixedWorkLane::new(self.work[warp_id as usize], Op::new(OpKind::Distance, 10))
                })
                .collect()
        }
    }

    /// A kernel whose lanes each emit one pair.
    struct Emitter {
        warps: usize,
        lanes: u32,
    }

    struct EmitLane {
        id: u32,
        done: bool,
    }

    impl LaneProgram for EmitLane {
        fn step(&mut self, sink: &mut LaneSink) -> Option<Op> {
            if self.done {
                return None;
            }
            self.done = true;
            sink.emit(self.id, self.id + 1);
            Some(Op::new(OpKind::Emit, 8))
        }
    }

    impl WarpSource for Emitter {
        type Lane = EmitLane;
        fn num_warps(&self) -> usize {
            self.warps
        }
        fn make_warp(&self, warp_id: u32) -> Vec<EmitLane> {
            (0..self.lanes)
                .map(|l| EmitLane {
                    id: warp_id * self.lanes + l,
                    done: false,
                })
                .collect()
        }
    }

    #[test]
    fn launch_reports_full_efficiency_for_uniform_work() {
        let gpu = GpuConfig::small_test();
        let src = UniformWarps {
            work: vec![5; 16],
            lanes_per_warp: 4,
        };
        let mut out = DeviceBuffer::with_capacity(0);
        let r = launch(&gpu, &src, IssueOrder::InOrder, &mut out).unwrap();
        assert_eq!(r.warps, 16);
        assert!((r.wee() - 1.0).abs() < 1e-12);
        // 16 warps of 50 cycles on 8 slots → two rounds of 50 cycles.
        assert_eq!(r.elapsed_cycles(), 100);
        assert_eq!(r.distance_calcs(), 16 * 4 * 5);
    }

    #[test]
    fn issue_order_changes_makespan_not_results() {
        let gpu = GpuConfig::small_test();
        // 8 slots; 15 short warps and 1 very long warp.
        let mut work = vec![10u32; 15];
        work.push(1000);
        let src = UniformWarps {
            work,
            lanes_per_warp: 4,
        };
        let mut out1 = DeviceBuffer::with_capacity(0);
        let mut out2 = DeviceBuffer::with_capacity(0);
        // In warp-id order the long warp (id 15) starts in the second wave →
        // long tail. Reversed order starts it first → tail hidden.
        let bad = launch(&gpu, &src, IssueOrder::InOrder, &mut out1).unwrap();
        let good = launch(&gpu, &src, IssueOrder::Reversed, &mut out2).unwrap();
        assert!(bad.elapsed_cycles() > good.elapsed_cycles());
        assert_eq!(bad.distance_calcs(), good.distance_calcs());
        assert!(
            (bad.wee() - good.wee()).abs() < 1e-12,
            "WEE is order-independent"
        );
    }

    #[test]
    fn pairs_are_gathered_in_warp_id_order_regardless_of_issue_order() {
        let gpu = GpuConfig::small_test();
        let src = Emitter { warps: 6, lanes: 4 };
        let mut out1 = DeviceBuffer::with_capacity(1000);
        let mut out2 = DeviceBuffer::with_capacity(1000);
        launch(&gpu, &src, IssueOrder::InOrder, &mut out1).unwrap();
        launch(&gpu, &src, IssueOrder::Arbitrary { seed: 99 }, &mut out2).unwrap();
        assert_eq!(out1.as_slice(), out2.as_slice());
        assert_eq!(out1.len(), 24);
        assert_eq!(out1.as_slice()[0], (0, 1));
    }

    #[test]
    fn overflow_is_reported() {
        let gpu = GpuConfig::small_test();
        let src = Emitter { warps: 4, lanes: 4 };
        let mut out = DeviceBuffer::with_capacity(3);
        let err = launch(&gpu, &src, IssueOrder::InOrder, &mut out).unwrap_err();
        assert!(matches!(err, LaunchError::ResultOverflow(_)));
    }

    #[test]
    fn empty_launch_is_ok() {
        let gpu = GpuConfig::small_test();
        let src = UniformWarps {
            work: vec![],
            lanes_per_warp: 4,
        };
        let mut out = DeviceBuffer::with_capacity(0);
        let r = launch(&gpu, &src, IssueOrder::InOrder, &mut out).unwrap();
        assert_eq!(r.warps, 0);
        assert_eq!(r.elapsed_cycles(), 0);
        assert_eq!(r.wee(), 1.0);
    }

    #[test]
    fn fault_plane_transient_fails_before_construction() {
        use crate::fault::{FaultPlane, FaultSchedule};
        let gpu = GpuConfig::small_test();
        let src = Emitter { warps: 4, lanes: 4 };
        let plane = FaultPlane::new(FaultSchedule::new().transient_at(0));
        let opts = LaunchOptions::default().with_fault_plane(&plane);
        let mut out = DeviceBuffer::with_capacity(100);
        let err = launch_with(&gpu, &src, IssueOrder::InOrder, &mut out, &opts).unwrap_err();
        assert!(matches!(err, LaunchError::Transient(_)));
        assert!(out.is_empty(), "failed launch must not write results");
        // The next launch (index 1, unscheduled) succeeds.
        let r = launch_with(&gpu, &src, IssueOrder::InOrder, &mut out, &opts).unwrap();
        assert_eq!(r.pairs_emitted, 16);
    }

    #[test]
    fn fault_plane_forced_overflow_surfaces_after_execution() {
        use crate::fault::{FaultPlane, FaultSchedule};
        let gpu = GpuConfig::small_test();
        let src = Emitter { warps: 4, lanes: 4 };
        let plane = FaultPlane::new(FaultSchedule::new().overflow_at(0));
        let opts = LaunchOptions::default().with_fault_plane(&plane);
        let mut out = DeviceBuffer::with_capacity(100);
        let err = launch_with(&gpu, &src, IssueOrder::InOrder, &mut out, &opts).unwrap_err();
        let LaunchError::ResultOverflow(overflow) = err else {
            panic!("expected overflow, got {err:?}");
        };
        assert_eq!(overflow.capacity, 100);
        assert!(overflow.len + overflow.attempted > overflow.capacity);
    }

    #[test]
    fn fault_plane_device_lost_is_sticky() {
        use crate::fault::{FaultPlane, FaultSchedule};
        let gpu = GpuConfig::small_test();
        let src = Emitter { warps: 2, lanes: 4 };
        let plane = FaultPlane::new(FaultSchedule::new().device_lost_at(1));
        let opts = LaunchOptions::default().with_fault_plane(&plane);
        let mut out = DeviceBuffer::with_capacity(100);
        launch_with(&gpu, &src, IssueOrder::InOrder, &mut out, &opts).unwrap();
        for _ in 0..3 {
            let err = launch_with(&gpu, &src, IssueOrder::InOrder, &mut out, &opts).unwrap_err();
            assert!(matches!(err, LaunchError::DeviceLost(_)));
        }
    }

    #[test]
    fn empty_fault_plane_changes_nothing() {
        use crate::fault::{FaultPlane, FaultSchedule};
        let gpu = GpuConfig::small_test();
        let work: Vec<u32> = (0..50).map(|i| (i * 7) % 23 + 1).collect();
        let src = UniformWarps {
            work,
            lanes_per_warp: 4,
        };
        let plane = FaultPlane::new(FaultSchedule::new());
        let opts = LaunchOptions::default().with_fault_plane(&plane);
        let mut out1 = DeviceBuffer::with_capacity(0);
        let mut out2 = DeviceBuffer::with_capacity(0);
        let plain = launch(&gpu, &src, IssueOrder::InOrder, &mut out1).unwrap();
        let gated = launch_with(&gpu, &src, IssueOrder::InOrder, &mut out2, &opts).unwrap();
        assert_eq!(plain.elapsed_cycles(), gated.elapsed_cycles());
        assert_eq!(plain.warp_cycles, gated.warp_cycles);
        assert_eq!(plain.totals, gated.totals);
        assert_eq!(out1.as_slice(), out2.as_slice());
    }

    #[test]
    fn launch_error_sources_chain() {
        use std::error::Error as _;
        let overflow = LaunchError::ResultOverflow(BufferOverflow {
            capacity: 1,
            len: 1,
            attempted: 2,
        });
        assert!(overflow.source().is_some());
        let transient = LaunchError::Transient(crate::fault::TransientFault { launch_index: 0 });
        assert!(transient.source().unwrap().to_string().contains("launch 0"));
        assert_eq!(transient.class(), "transient");
    }

    #[test]
    fn launch_is_deterministic() {
        let gpu = GpuConfig::small_test();
        let work: Vec<u32> = (0..50).map(|i| (i * 7) % 23 + 1).collect();
        let src = UniformWarps {
            work,
            lanes_per_warp: 4,
        };
        let mut out1 = DeviceBuffer::with_capacity(0);
        let mut out2 = DeviceBuffer::with_capacity(0);
        let a = launch(&gpu, &src, IssueOrder::Arbitrary { seed: 5 }, &mut out1).unwrap();
        let b = launch(&gpu, &src, IssueOrder::Arbitrary { seed: 5 }, &mut out2).unwrap();
        assert_eq!(a.elapsed_cycles(), b.elapsed_cycles());
        assert_eq!(a.warp_cycles, b.warp_cycles);
        assert_eq!(a.totals, b.totals);
    }
}
