//! Warp issue-order policies.
//!
//! The CUDA hardware scheduler gives no ordering guarantee across warps: the
//! paper's SORTBYWL section notes that even with workload-sorted data "the
//! hardware scheduler may not execute the warps from most workload to least
//! work". `IssueOrder::Arbitrary` models that uncertainty as a seeded
//! shuffle at *block* granularity (hardware distributes blocks to SMs out of
//! order, while warps inside a block start together). `IssueOrder::InOrder`
//! models the forced order obtained with the paper's WORKQUEUE: warps
//! acquire work through the queue head in exactly the sorted sequence.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A warp issue-order policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueOrder {
    /// Warps issue in ascending warp-id order (the WORKQUEUE's forced order).
    InOrder,
    /// Warps issue in descending warp-id order (adversarial; for ablations).
    Reversed,
    /// Blocks issue in a seeded pseudo-random order; warps within a block
    /// keep their relative order. Models the uncontrolled hardware scheduler.
    Arbitrary {
        /// Shuffle seed (fixed for reproducibility).
        seed: u64,
    },
}

impl IssueOrder {
    /// Produces the issue permutation for `num_warps` warps grouped into
    /// blocks of `warps_per_block`: element `i` is the warp id of the i-th
    /// warp to start.
    pub fn permutation(&self, num_warps: usize, warps_per_block: usize) -> Vec<u32> {
        assert!(warps_per_block > 0, "blocks must contain at least one warp");
        assert!(
            num_warps <= u32::MAX as usize,
            "warp count overflows u32 ids"
        );
        match self {
            IssueOrder::InOrder => (0..num_warps as u32).collect(),
            IssueOrder::Reversed => (0..num_warps as u32).rev().collect(),
            IssueOrder::Arbitrary { seed } => {
                let num_blocks = num_warps.div_ceil(warps_per_block);
                let mut blocks: Vec<usize> = (0..num_blocks).collect();
                let mut rng = StdRng::seed_from_u64(*seed);
                blocks.shuffle(&mut rng);
                let mut order = Vec::with_capacity(num_warps);
                for b in blocks {
                    let start = b * warps_per_block;
                    let end = ((b + 1) * warps_per_block).min(num_warps);
                    order.extend((start..end).map(|w| w as u32));
                }
                order
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(order: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        for &w in order {
            if (w as usize) >= n || seen[w as usize] {
                return false;
            }
            seen[w as usize] = true;
        }
        order.len() == n
    }

    #[test]
    fn in_order_is_identity() {
        let order = IssueOrder::InOrder.permutation(10, 4);
        assert_eq!(order, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn reversed_is_reverse() {
        let order = IssueOrder::Reversed.permutation(5, 2);
        assert_eq!(order, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn arbitrary_is_a_permutation() {
        for n in [1usize, 7, 32, 1000] {
            let order = IssueOrder::Arbitrary { seed: 42 }.permutation(n, 8);
            assert!(is_permutation(&order, n), "n = {n}");
        }
    }

    #[test]
    fn arbitrary_is_deterministic_per_seed() {
        let a = IssueOrder::Arbitrary { seed: 7 }.permutation(100, 8);
        let b = IssueOrder::Arbitrary { seed: 7 }.permutation(100, 8);
        let c = IssueOrder::Arbitrary { seed: 8 }.permutation(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn arbitrary_preserves_intra_block_order() {
        let order = IssueOrder::Arbitrary { seed: 3 }.permutation(64, 8);
        // Within each contiguous run belonging to a block, ids ascend.
        for chunk in order.chunks(8) {
            for pair in chunk.windows(2) {
                if pair[0] / 8 == pair[1] / 8 {
                    assert!(pair[0] < pair[1]);
                }
            }
        }
    }

    #[test]
    fn tail_block_is_partial() {
        let order = IssueOrder::Arbitrary { seed: 1 }.permutation(10, 4);
        assert!(is_permutation(&order, 10));
    }

    #[test]
    #[should_panic(expected = "at least one warp")]
    fn zero_warps_per_block_rejected() {
        let _ = IssueOrder::InOrder.permutation(4, 0);
    }
}
