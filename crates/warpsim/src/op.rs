//! SIMT instruction descriptors.
//!
//! Lane programs advance one *op* at a time. An op stands for a short basic
//! block of GPU instructions (a distance calculation, a binary-search probe,
//! a result-buffer write, …) with a fixed cycle cost from the
//! [`crate::config::CostModel`]. Grouping work at this granularity keeps the
//! simulator fast while still capturing where divergence and imbalance arise.

/// The category of a SIMT op. Lanes of a warp whose pending ops have
/// different kinds (or costs) diverge and are serialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Kernel prologue: thread-id computation, loading the query point,
    /// computing its cell and neighbor ranges.
    Setup,
    /// Binary-search probe of the non-empty cell list for one neighbor cell.
    CellLookup,
    /// One point-to-point distance calculation (the refine step).
    Distance,
    /// Writing one result pair to the output buffer.
    Emit,
    /// A global atomic operation (work-queue head increment).
    Atomic,
    /// An intra-warp shuffle/broadcast (cooperative groups).
    Shuffle,
    /// A synchronization point.
    Sync,
    /// Anything else.
    Other,
}

/// Number of distinct [`OpKind`] values (size of per-kind histograms).
pub const NUM_OP_KINDS: usize = 8;

impl OpKind {
    /// Dense index of the kind, for histogram arrays.
    pub fn index(self) -> usize {
        match self {
            OpKind::Setup => 0,
            OpKind::CellLookup => 1,
            OpKind::Distance => 2,
            OpKind::Emit => 3,
            OpKind::Atomic => 4,
            OpKind::Shuffle => 5,
            OpKind::Sync => 6,
            OpKind::Other => 7,
        }
    }

    /// All kinds, in index order.
    pub fn all() -> [OpKind; NUM_OP_KINDS] {
        [
            OpKind::Setup,
            OpKind::CellLookup,
            OpKind::Distance,
            OpKind::Emit,
            OpKind::Atomic,
            OpKind::Shuffle,
            OpKind::Sync,
            OpKind::Other,
        ]
    }
}

/// One SIMT op: a kind plus its cycle cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Op {
    /// The op's category.
    pub kind: OpKind,
    /// The op's cost in model cycles.
    pub cycles: u32,
}

impl Op {
    /// Convenience constructor.
    pub fn new(kind: OpKind, cycles: u32) -> Self {
        Self { kind, cycles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; NUM_OP_KINDS];
        for kind in OpKind::all() {
            let i = kind.index();
            assert!(i < NUM_OP_KINDS);
            assert!(!seen[i], "duplicate index for {kind:?}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn all_matches_index_order() {
        for (i, kind) in OpKind::all().iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }
}
