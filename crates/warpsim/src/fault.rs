//! Deterministic fault injection for the simulated device.
//!
//! Real GPUs fail in ways the batching scheme's host-side recovery must
//! survive: kernel launches error out transiently, devices drop off the bus
//! mid-join, the work-queue head gets corrupted, transfers stall behind
//! other PCIe traffic, and result buffers overflow when the 1 % sample
//! under-estimates. The [`FaultPlane`] injects exactly those failures into
//! simulated launches on a **reproducible schedule**: a [`FaultSchedule`]
//! maps launch indices (0-based, in the order launches are issued against
//! the plane) to faults, either spelled out explicitly or rolled from a
//! seeded [`FaultProfile`].
//!
//! Injection is split between the two sides that would observe it on real
//! hardware:
//!
//! - **Launch-level faults** (transient failure, device lost, forced result
//!   overflow) are applied inside [`crate::kernel::launch_with`] when a
//!   plane is attached via [`crate::kernel::LaunchOptions::fault_plane`].
//!   Transient and device-lost faults abort *before* warp construction, so
//!   a work-queue source's counter is untouched — exactly like a launch
//!   that never reached the device. A forced overflow surfaces *after* the
//!   warps ran, like a real capacity overflow.
//! - **Host-visible faults** (queue-counter corruption, transfer stalls)
//!   are consumed by the executor around each launch via
//!   [`FaultPlane::take_counter_bump`] / [`FaultPlane::take_transfer_stall`],
//!   because only the host owns the counter and the transfer schedule.
//!
//! A plane with an empty schedule is behaviourally inert: attaching it
//! changes no pair set, cycle count, or model second.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A transient (retryable) launch failure, e.g. a spurious
/// `cudaErrorLaunchFailure` that succeeds on re-submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientFault {
    /// Index of the failed launch in the plane's launch order.
    pub launch_index: u64,
}

impl std::fmt::Display for TransientFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transient launch failure at launch {}",
            self.launch_index
        )
    }
}

impl std::error::Error for TransientFault {}

/// The device dropped and every subsequent launch fails (sticky).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLostFault {
    /// Index of the launch at which the device was first lost.
    pub launch_index: u64,
}

impl std::fmt::Display for DeviceLostFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device lost at launch {}", self.launch_index)
    }
}

impl std::error::Error for DeviceLostFault {}

/// The work-queue head does not hold the value the batch plan requires
/// (a stuck or corrupted [`crate::atomics::DeviceCounter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterFault {
    /// The head position the plan requires.
    pub expected: u64,
    /// The head position actually observed.
    pub observed: u64,
}

impl std::fmt::Display for CounterFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device counter fault: queue head at {} but plan requires {}",
            self.observed, self.expected
        )
    }
}

impl std::error::Error for CounterFault {}

/// Launch-level fault kinds the plane can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaunchFault {
    Transient,
    DeviceLost,
    ForcedOverflow,
}

/// Everything scheduled against one launch index.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct LaunchFaults {
    launch: Option<LaunchFault>,
    counter_bump: Option<u64>,
    transfer_stall_s: Option<f64>,
}

/// Per-launch fault rates used by [`FaultSchedule::seeded`].
///
/// Rates are independent per launch index; the launch-level kinds are
/// mutually exclusive per index (rolled in the order transient →
/// device-lost → overflow, first hit wins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Launch indices to pre-roll faults for.
    pub horizon: u64,
    /// Probability of a transient launch failure per launch.
    pub transient_rate: f64,
    /// Probability the device is lost at a given launch (sticky).
    pub device_lost_rate: f64,
    /// Probability a launch's result buffer is forced to overflow.
    pub overflow_rate: f64,
    /// Probability the queue head is corrupted before a launch.
    pub counter_bump_rate: f64,
    /// Maximum spurious head advance of a corruption (≥ 1).
    pub counter_bump_max: u64,
    /// Probability a batch's device-to-host transfer stalls.
    pub transfer_stall_rate: f64,
    /// Added transfer latency per stall, model seconds.
    pub transfer_stall_s: f64,
}

impl FaultProfile {
    fn quiet() -> Self {
        Self {
            horizon: 256,
            transient_rate: 0.0,
            device_lost_rate: 0.0,
            overflow_rate: 0.0,
            counter_bump_rate: 0.0,
            counter_bump_max: 4,
            transfer_stall_rate: 0.0,
            transfer_stall_s: 5e-3,
        }
    }

    /// Occasional retryable launch failures.
    pub fn transient() -> Self {
        Self {
            transient_rate: 0.3,
            ..Self::quiet()
        }
    }

    /// The device eventually drops mid-join.
    pub fn device_lost() -> Self {
        Self {
            device_lost_rate: 0.25,
            ..Self::quiet()
        }
    }

    /// Result buffers overflow regardless of the estimate.
    pub fn overflow() -> Self {
        Self {
            overflow_rate: 0.3,
            ..Self::quiet()
        }
    }

    /// The work-queue head gets corrupted between launches.
    pub fn counter() -> Self {
        Self {
            counter_bump_rate: 0.35,
            ..Self::quiet()
        }
    }

    /// Device-to-host transfers stall behind other traffic.
    pub fn stall() -> Self {
        Self {
            transfer_stall_rate: 0.4,
            ..Self::quiet()
        }
    }

    /// A bit of everything, at lower rates.
    pub fn mixed() -> Self {
        Self {
            transient_rate: 0.12,
            device_lost_rate: 0.04,
            overflow_rate: 0.1,
            counter_bump_rate: 0.1,
            transfer_stall_rate: 0.15,
            ..Self::quiet()
        }
    }

    /// The profile names accepted by [`FaultProfile::by_name`].
    pub fn names() -> &'static [&'static str] {
        &[
            "transient",
            "device-lost",
            "overflow",
            "counter",
            "stall",
            "mixed",
        ]
    }

    /// Looks up a named profile (the `simjoin chaos --profile` values).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "transient" => Some(Self::transient()),
            "device-lost" => Some(Self::device_lost()),
            "overflow" => Some(Self::overflow()),
            "counter" => Some(Self::counter()),
            "stall" => Some(Self::stall()),
            "mixed" => Some(Self::mixed()),
            _ => None,
        }
    }
}

/// A reproducible mapping from launch indices to injected faults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    entries: BTreeMap<u64, LaunchFaults>,
}

impl FaultSchedule {
    /// An empty (inert) schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of launch indices with at least one scheduled fault.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Schedules a transient failure for launch `index`.
    pub fn transient_at(mut self, index: u64) -> Self {
        self.entries.entry(index).or_default().launch = Some(LaunchFault::Transient);
        self
    }

    /// Schedules the device-lost condition at launch `index`.
    pub fn device_lost_at(mut self, index: u64) -> Self {
        self.entries.entry(index).or_default().launch = Some(LaunchFault::DeviceLost);
        self
    }

    /// Forces launch `index`'s result buffer to overflow.
    pub fn overflow_at(mut self, index: u64) -> Self {
        self.entries.entry(index).or_default().launch = Some(LaunchFault::ForcedOverflow);
        self
    }

    /// Corrupts the queue head by `bump` spurious increments before launch
    /// `index` (consumed by the executor, queue plans only).
    pub fn counter_bump_at(mut self, index: u64, bump: u64) -> Self {
        self.entries.entry(index).or_default().counter_bump = Some(bump.max(1));
        self
    }

    /// Stalls the transfer of the batch completed by launch `index` for
    /// `stall_s` model seconds.
    pub fn transfer_stall_at(mut self, index: u64, stall_s: f64) -> Self {
        self.entries.entry(index).or_default().transfer_stall_s = Some(stall_s.max(0.0));
        self
    }

    /// Rolls a schedule from `seed` under `profile` — the same `(seed,
    /// profile)` always yields the same schedule.
    pub fn seeded(seed: u64, profile: &FaultProfile) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut schedule = Self::new();
        for index in 0..profile.horizon {
            let launch = if unit(&mut state) < profile.transient_rate {
                Some(LaunchFault::Transient)
            } else if unit(&mut state) < profile.device_lost_rate {
                Some(LaunchFault::DeviceLost)
            } else if unit(&mut state) < profile.overflow_rate {
                Some(LaunchFault::ForcedOverflow)
            } else {
                None
            };
            let counter_bump = (unit(&mut state) < profile.counter_bump_rate)
                .then(|| 1 + splitmix64(&mut state) % profile.counter_bump_max.max(1));
            let transfer_stall_s = (unit(&mut state) < profile.transfer_stall_rate)
                .then_some(profile.transfer_stall_s);
            if launch.is_some() || counter_bump.is_some() || transfer_stall_s.is_some() {
                schedule.entries.insert(
                    index,
                    LaunchFaults {
                        launch,
                        counter_bump,
                        transfer_stall_s,
                    },
                );
            }
        }
        schedule
    }
}

/// What [`FaultPlane::admit_launch`] grants a launch that is allowed to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaunchAdmission {
    /// Index of this launch in the plane's launch order.
    pub launch_index: u64,
    /// The launch must report a result-buffer overflow after executing.
    pub force_overflow: bool,
}

/// The attachable fault-injection plane.
///
/// One plane observes every launch issued against it (through
/// [`crate::kernel::LaunchOptions::fault_plane`]) and injects the faults its
/// [`FaultSchedule`] assigns to each launch index. The device-lost condition
/// latches: once injected, every later admission fails too, like a real
/// device that fell off the bus.
#[derive(Debug)]
pub struct FaultPlane {
    schedule: Mutex<BTreeMap<u64, LaunchFaults>>,
    next_launch: AtomicU64,
    lost: AtomicBool,
    injected: AtomicU64,
}

impl FaultPlane {
    /// A plane injecting `schedule`.
    pub fn new(schedule: FaultSchedule) -> Self {
        Self {
            schedule: Mutex::new(schedule.entries),
            next_launch: AtomicU64::new(0),
            lost: AtomicBool::new(false),
            injected: AtomicU64::new(0),
        }
    }

    /// A plane rolled from `seed` under a named or constructed profile.
    pub fn seeded(seed: u64, profile: &FaultProfile) -> Self {
        Self::new(FaultSchedule::seeded(seed, profile))
    }

    /// Index the next admitted launch will receive.
    pub fn next_launch_index(&self) -> u64 {
        self.next_launch.load(Ordering::Relaxed)
    }

    /// Whether the device-lost condition has latched.
    pub fn device_lost(&self) -> bool {
        self.lost.load(Ordering::Relaxed)
    }

    /// Total faults injected so far (all kinds).
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Admits or fails the next launch. Called by
    /// [`crate::kernel::launch_with`] before any warp is constructed, so a
    /// failed admission leaves device state (queue counters) untouched.
    pub fn admit_launch(&self) -> Result<LaunchAdmission, crate::kernel::LaunchError> {
        use crate::kernel::LaunchError;
        let launch_index = self.next_launch.fetch_add(1, Ordering::Relaxed);
        if self.lost.load(Ordering::Relaxed) {
            return Err(LaunchError::DeviceLost(DeviceLostFault { launch_index }));
        }
        let fault = {
            let mut schedule = self.schedule.lock().expect("fault schedule poisoned");
            schedule
                .get_mut(&launch_index)
                .and_then(|entry| entry.launch.take())
        };
        match fault {
            None => Ok(LaunchAdmission {
                launch_index,
                force_overflow: false,
            }),
            Some(LaunchFault::ForcedOverflow) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Ok(LaunchAdmission {
                    launch_index,
                    force_overflow: true,
                })
            }
            Some(LaunchFault::Transient) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(LaunchError::Transient(TransientFault { launch_index }))
            }
            Some(LaunchFault::DeviceLost) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                self.lost.store(true, Ordering::Relaxed);
                Err(LaunchError::DeviceLost(DeviceLostFault { launch_index }))
            }
        }
    }

    /// Takes the queue-head corruption scheduled for the **next** launch, if
    /// any. The executor calls this immediately before a queue-chunk launch
    /// and applies the bump to its [`crate::atomics::DeviceCounter`],
    /// simulating device-side corruption of the work-queue head.
    pub fn take_counter_bump(&self) -> Option<u64> {
        let index = self.next_launch.load(Ordering::Relaxed);
        let bump = {
            let mut schedule = self.schedule.lock().expect("fault schedule poisoned");
            schedule
                .get_mut(&index)
                .and_then(|entry| entry.counter_bump.take())
        };
        if bump.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        bump
    }

    /// Takes the transfer stall scheduled for the launch that **just
    /// completed**, if any — extra model seconds the executor adds to that
    /// batch's device-to-host transfer.
    pub fn take_transfer_stall(&self) -> Option<f64> {
        let completed = self.next_launch.load(Ordering::Relaxed).checked_sub(1)?;
        let stall = {
            let mut schedule = self.schedule.lock().expect("fault schedule poisoned");
            schedule
                .get_mut(&completed)
                .and_then(|entry| entry.transfer_stall_s.take())
        };
        if stall.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        stall
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LaunchError;

    #[test]
    fn empty_schedule_admits_everything() {
        let plane = FaultPlane::new(FaultSchedule::new());
        for i in 0..10 {
            let adm = plane.admit_launch().unwrap();
            assert_eq!(adm.launch_index, i);
            assert!(!adm.force_overflow);
        }
        assert_eq!(plane.injected_faults(), 0);
        assert!(plane.take_counter_bump().is_none());
        assert!(plane.take_transfer_stall().is_none());
    }

    #[test]
    fn scheduled_faults_fire_at_their_launch_index() {
        let schedule = FaultSchedule::new()
            .transient_at(1)
            .overflow_at(2)
            .counter_bump_at(3, 5)
            .transfer_stall_at(0, 0.25);
        let plane = FaultPlane::new(schedule);
        assert!(plane.admit_launch().is_ok());
        assert_eq!(plane.take_transfer_stall(), Some(0.25));
        assert!(matches!(
            plane.admit_launch(),
            Err(LaunchError::Transient(TransientFault { launch_index: 1 }))
        ));
        let adm = plane.admit_launch().unwrap();
        assert!(adm.force_overflow);
        assert_eq!(plane.take_counter_bump(), Some(5));
        assert!(!plane.admit_launch().unwrap().force_overflow);
        assert_eq!(plane.injected_faults(), 4);
    }

    #[test]
    fn device_lost_latches() {
        let plane = FaultPlane::new(FaultSchedule::new().device_lost_at(0));
        assert!(matches!(
            plane.admit_launch(),
            Err(LaunchError::DeviceLost(_))
        ));
        assert!(plane.device_lost());
        // Every later launch fails too.
        for _ in 0..3 {
            assert!(matches!(
                plane.admit_launch(),
                Err(LaunchError::DeviceLost(_))
            ));
        }
    }

    #[test]
    fn faults_are_consumed_once() {
        let plane = FaultPlane::new(FaultSchedule::new().counter_bump_at(0, 2));
        assert_eq!(plane.take_counter_bump(), Some(2));
        assert_eq!(plane.take_counter_bump(), None);
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let profile = FaultProfile::mixed();
        let a = FaultSchedule::seeded(42, &profile);
        let b = FaultSchedule::seeded(42, &profile);
        assert_eq!(a, b);
        let c = FaultSchedule::seeded(43, &profile);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn seeded_rates_roughly_hold() {
        let profile = FaultProfile {
            horizon: 2000,
            transient_rate: 0.5,
            ..FaultProfile::transient()
        };
        let schedule = FaultSchedule::seeded(7, &profile);
        let hits = schedule.len();
        assert!(
            (800..1200).contains(&hits),
            "~50% of 2000 indices should carry a fault, got {hits}"
        );
    }

    #[test]
    fn named_profiles_resolve() {
        for name in FaultProfile::names() {
            assert!(FaultProfile::by_name(name).is_some(), "{name}");
        }
        assert!(FaultProfile::by_name("nope").is_none());
    }

    #[test]
    fn fault_payloads_display_and_chain() {
        let t = TransientFault { launch_index: 3 };
        assert!(t.to_string().contains("launch 3"));
        let d = DeviceLostFault { launch_index: 1 };
        assert!(d.to_string().contains("device lost"));
        let c = CounterFault {
            expected: 10,
            observed: 12,
        };
        assert!(c.to_string().contains("12"));
    }
}
