//! Lane programs: the per-thread instruction streams the simulator executes.

use crate::op::Op;

/// A resumable per-lane instruction stream.
///
/// Each call to [`LaneProgram::step`] performs the side effects of one SIMT
/// op (e.g. one distance calculation, possibly recording a result pair into
/// the [`LaneSink`]) and returns the op's descriptor, or `None` once the lane
/// has retired. The warp executor drives all lanes of a warp in lockstep and
/// serializes divergent steps.
pub trait LaneProgram {
    /// Advance the lane by one op. Returns `None` when the lane has retired.
    fn step(&mut self, sink: &mut LaneSink) -> Option<Op>;
}

/// Collects the outputs of a warp's lanes.
///
/// Result pairs are buffered per warp and appended to the device result
/// buffer in warp order by the kernel driver, mimicking the buffered global
/// writes of the real kernels.
#[derive(Debug, Default)]
pub struct LaneSink {
    pairs: Vec<(u32, u32)>,
}

impl LaneSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a result pair `(query, neighbor)`.
    pub fn emit(&mut self, query: u32, neighbor: u32) {
        self.pairs.push((query, neighbor));
    }

    /// Records both orientations of a symmetric pair, as the unidirectional
    /// access patterns do after a single distance calculation.
    pub fn emit_symmetric(&mut self, a: u32, b: u32) {
        self.pairs.push((a, b));
        self.pairs.push((b, a));
    }

    /// Number of pairs recorded so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The recorded pairs.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Consumes the sink, returning the recorded pairs.
    pub fn into_pairs(self) -> Vec<(u32, u32)> {
        self.pairs
    }
}

/// A trivial lane program executing a fixed number of identical ops.
/// Used by tests and by the machine-model calibration benches.
#[derive(Debug, Clone)]
pub struct FixedWorkLane {
    remaining: u32,
    op: Op,
}

impl FixedWorkLane {
    /// A lane that performs `count` copies of `op` and then retires.
    pub fn new(count: u32, op: Op) -> Self {
        Self {
            remaining: count,
            op,
        }
    }
}

impl LaneProgram for FixedWorkLane {
    fn step(&mut self, _sink: &mut LaneSink) -> Option<Op> {
        if self.remaining == 0 {
            None
        } else {
            self.remaining -= 1;
            Some(self.op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn sink_records_pairs() {
        let mut sink = LaneSink::new();
        assert!(sink.is_empty());
        sink.emit(1, 2);
        sink.emit_symmetric(3, 4);
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.pairs(), &[(1, 2), (3, 4), (4, 3)]);
        assert_eq!(sink.into_pairs().len(), 3);
    }

    #[test]
    fn fixed_work_lane_retires_after_count() {
        let mut lane = FixedWorkLane::new(3, Op::new(OpKind::Distance, 10));
        let mut sink = LaneSink::new();
        let mut steps = 0;
        while lane.step(&mut sink).is_some() {
            steps += 1;
        }
        assert_eq!(steps, 3);
        assert!(lane.step(&mut sink).is_none(), "retired lanes stay retired");
    }
}
