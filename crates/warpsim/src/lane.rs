//! Lane programs: the per-thread instruction streams the simulator executes.

use crate::op::Op;

/// A claim that a lane's next `len` steps all issue the same op.
///
/// Returned by [`LaneProgram::peek_run`], consumed by the warp executor's
/// run-length fast path: when every live lane of a warp claims the same op,
/// the executor advances `min(len)` lockstep rounds with one accounting
/// update instead of stepping each round individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunClaim {
    /// The op every one of the next `len` steps will issue.
    pub op: Op,
    /// How many consecutive steps are covered. A claim of `0` carries no
    /// information and is ignored by the executor (equivalent to `None`).
    pub len: u32,
}

/// A resumable per-lane instruction stream.
///
/// Each call to [`LaneProgram::step`] performs the side effects of one SIMT
/// op (e.g. one distance calculation, possibly recording a result pair into
/// the [`LaneSink`]) and returns the op's descriptor, or `None` once the lane
/// has retired. The warp executor drives all lanes of a warp in lockstep and
/// serializes divergent steps.
///
/// # Run-length contract
///
/// A lane may optionally implement [`LaneProgram::peek_run`] to tell the
/// executor that its next `R` steps all issue the same op, letting fully
/// converged warps advance `min(Rᵢ)` rounds in O(1). The defaults
/// (`peek_run` → `None`, `commit_run` → `n` repeated `step`s) keep every
/// existing lane program valid and bit-identical. Implementations must
/// uphold:
///
/// - the next `len` calls to `step` return `Some(op)` with exactly the
///   claimed op (so a claimed lane cannot retire or diverge mid-run);
/// - side effects on the [`LaneSink`] within a claimed run occur only at the
///   run's **final** step, so committing lanes one after another in lane
///   order reproduces the stepped round-by-round emission order exactly;
/// - `commit_run(n)` for any `n ≤ len` leaves the lane in the same state as
///   `n` calls to `step` (partial commits happen when another lane's claim
///   is shorter).
pub trait LaneProgram {
    /// Advance the lane by one op. Returns `None` when the lane has retired.
    fn step(&mut self, sink: &mut LaneSink) -> Option<Op>;

    /// Claims a run of identical upcoming ops (see the trait-level
    /// run-length contract). `None` — the default — claims nothing beyond
    /// the trivial single next step.
    fn peek_run(&mut self) -> Option<RunClaim> {
        None
    }

    /// Advances the lane by `n` steps of a previously claimed run. The
    /// default replays `n` individual [`LaneProgram::step`] calls;
    /// implementations may override it with an O(1) state update.
    fn commit_run(&mut self, n: u32, sink: &mut LaneSink) {
        for _ in 0..n {
            let op = self.step(sink);
            debug_assert!(op.is_some(), "lane retired inside a claimed run");
        }
    }
}

/// Collects the outputs of a warp's lanes.
///
/// Result pairs are buffered per warp and appended to the device result
/// buffer in warp order by the kernel driver, mimicking the buffered global
/// writes of the real kernels.
#[derive(Debug, Default)]
pub struct LaneSink {
    pairs: Vec<(u32, u32)>,
}

impl LaneSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a result pair `(query, neighbor)`.
    pub fn emit(&mut self, query: u32, neighbor: u32) {
        self.pairs.push((query, neighbor));
    }

    /// Records both orientations of a symmetric pair, as the unidirectional
    /// access patterns do after a single distance calculation.
    pub fn emit_symmetric(&mut self, a: u32, b: u32) {
        self.pairs.push((a, b));
        self.pairs.push((b, a));
    }

    /// Number of pairs recorded so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs have been recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The recorded pairs.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Consumes the sink, returning the recorded pairs.
    pub fn into_pairs(self) -> Vec<(u32, u32)> {
        self.pairs
    }
}

/// A trivial lane program executing a fixed number of identical ops.
/// Used by tests and by the machine-model calibration benches.
#[derive(Debug, Clone)]
pub struct FixedWorkLane {
    remaining: u32,
    op: Op,
}

impl FixedWorkLane {
    /// A lane that performs `count` copies of `op` and then retires.
    pub fn new(count: u32, op: Op) -> Self {
        Self {
            remaining: count,
            op,
        }
    }
}

impl LaneProgram for FixedWorkLane {
    fn step(&mut self, _sink: &mut LaneSink) -> Option<Op> {
        if self.remaining == 0 {
            None
        } else {
            self.remaining -= 1;
            Some(self.op)
        }
    }

    fn peek_run(&mut self) -> Option<RunClaim> {
        (self.remaining > 0).then_some(RunClaim {
            op: self.op,
            len: self.remaining,
        })
    }

    fn commit_run(&mut self, n: u32, _sink: &mut LaneSink) {
        debug_assert!(n <= self.remaining, "commit past the claimed run");
        self.remaining -= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn sink_records_pairs() {
        let mut sink = LaneSink::new();
        assert!(sink.is_empty());
        sink.emit(1, 2);
        sink.emit_symmetric(3, 4);
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.pairs(), &[(1, 2), (3, 4), (4, 3)]);
        assert_eq!(sink.into_pairs().len(), 3);
    }

    #[test]
    fn fixed_work_lane_retires_after_count() {
        let mut lane = FixedWorkLane::new(3, Op::new(OpKind::Distance, 10));
        let mut sink = LaneSink::new();
        let mut steps = 0;
        while lane.step(&mut sink).is_some() {
            steps += 1;
        }
        assert_eq!(steps, 3);
        assert!(lane.step(&mut sink).is_none(), "retired lanes stay retired");
    }

    #[test]
    fn fixed_work_lane_claims_its_remaining_run() {
        let op = Op::new(OpKind::Distance, 10);
        let mut lane = FixedWorkLane::new(5, op);
        assert_eq!(lane.peek_run(), Some(RunClaim { op, len: 5 }));
        let mut sink = LaneSink::new();
        lane.commit_run(3, &mut sink);
        assert_eq!(lane.peek_run().map(|c| c.len), Some(2));
        lane.commit_run(2, &mut sink);
        assert!(lane.peek_run().is_none());
        assert!(lane.step(&mut sink).is_none());
    }

    #[test]
    fn default_commit_run_replays_steps() {
        // A lane relying on the trait's default commit_run: stepping and
        // committing must be interchangeable.
        struct Plain(u32);
        impl LaneProgram for Plain {
            fn step(&mut self, _s: &mut LaneSink) -> Option<Op> {
                (self.0 > 0).then(|| {
                    self.0 -= 1;
                    Op::new(OpKind::Emit, 8)
                })
            }
        }
        let mut lane = Plain(4);
        let mut sink = LaneSink::new();
        lane.commit_run(3, &mut sink);
        assert_eq!(lane.0, 1);
        assert!(lane.peek_run().is_none(), "default claims nothing");
    }
}
