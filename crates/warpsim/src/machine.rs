//! The occupancy-limited machine model: warp durations → kernel makespan.
//!
//! The device is modeled as `S` concurrent warp slots (`num_sms ×
//! warp_slots_per_sm`). Warps are taken from the pending list **in issue
//! order** and each occupies the earliest-free slot for its serialized
//! duration. The kernel's elapsed time is the time the last slot drains.
//!
//! This is a classic list-scheduling machine model: feeding it warps in
//! non-increasing workload order is LPT scheduling, which is exactly the
//! effect the paper's WORKQUEUE forces on the hardware scheduler, while an
//! arbitrary order reproduces the end-of-kernel tail imbalance of the
//! baseline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The slot machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineModel {
    /// Number of concurrent warp slots.
    pub slots: usize,
}

/// The outcome of scheduling a kernel's warps onto the machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MakespanReport {
    /// Elapsed cycles until the last warp finished.
    pub makespan: u64,
    /// Sum of all warp durations (machine-busy cycles).
    pub total_busy: u64,
    /// Number of slots used.
    pub slots: usize,
    /// Busy cycles per slot.
    pub slot_busy: Vec<u64>,
    /// Number of warps scheduled.
    pub warps: usize,
}

impl MakespanReport {
    /// Fraction of slot-cycles spent idle, in `[0, 1)`.
    ///
    /// This is the *tail* (end-of-kernel) imbalance the WORKQUEUE targets:
    /// idle slot time accrued while other slots still had work.
    pub fn idle_fraction(&self) -> f64 {
        if self.makespan == 0 || self.slots == 0 {
            return 0.0;
        }
        let capacity = self.makespan as f64 * self.slots as f64;
        1.0 - self.total_busy as f64 / capacity
    }

    /// Ratio of makespan to the ideal (perfectly balanced) makespan.
    /// 1.0 means no scheduling loss.
    pub fn balance_overhead(&self) -> f64 {
        if self.total_busy == 0 {
            return 1.0;
        }
        let ideal = self.total_busy as f64 / self.slots as f64;
        self.makespan as f64 / ideal.max(1.0)
    }
}

impl MachineModel {
    /// Creates a machine with the given number of concurrent warp slots.
    ///
    /// # Panics
    /// Panics if `slots == 0`.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "machine must have at least one warp slot");
        Self { slots }
    }

    /// Schedules warps with the given durations, **in the order given**,
    /// onto the earliest-free slot, and reports the makespan.
    pub fn schedule(&self, durations_in_issue_order: &[u64]) -> MakespanReport {
        let slots = self.slots.min(durations_in_issue_order.len()).max(1);
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..slots).map(|s| Reverse((0u64, s))).collect();
        let mut slot_busy = vec![0u64; slots];
        let mut makespan = 0u64;
        let mut total_busy = 0u64;
        for &d in durations_in_issue_order {
            let Reverse((free_at, slot)) = heap.pop().expect("heap is never empty");
            let finish = free_at + d;
            slot_busy[slot] += d;
            total_busy += d;
            makespan = makespan.max(finish);
            heap.push(Reverse((finish, slot)));
        }
        MakespanReport {
            makespan,
            total_busy,
            slots,
            slot_busy,
            warps: durations_in_issue_order.len(),
        }
    }

    /// Schedules warps following a permutation: `order[i]` is the index into
    /// `durations` of the i-th warp to issue.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..durations.len()`.
    pub fn schedule_permuted(&self, durations: &[u64], order: &[u32]) -> MakespanReport {
        assert_eq!(order.len(), durations.len(), "order must cover every warp");
        let permuted: Vec<u64> = order.iter().map(|&i| durations[i as usize]).collect();
        self.schedule(&permuted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_serializes() {
        let m = MachineModel::new(1);
        let r = m.schedule(&[5, 3, 7]);
        assert_eq!(r.makespan, 15);
        assert_eq!(r.total_busy, 15);
        assert_eq!(r.idle_fraction(), 0.0);
    }

    #[test]
    fn parallel_slots_overlap() {
        let m = MachineModel::new(2);
        let r = m.schedule(&[4, 4, 4, 4]);
        assert_eq!(r.makespan, 8);
        assert!((r.balance_overhead() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_order_creates_tail() {
        // Short warps first, one long warp last → tail of 10 cycles where one
        // slot works alone. LPT order (long first) avoids it.
        let m = MachineModel::new(2);
        let worst = m.schedule(&[1, 1, 1, 1, 10]);
        let lpt = m.schedule(&[10, 1, 1, 1, 1]);
        assert!(worst.makespan > lpt.makespan);
        assert_eq!(lpt.makespan, 10);
        assert_eq!(worst.makespan, 12);
        assert!(worst.idle_fraction() > lpt.idle_fraction());
    }

    #[test]
    fn schedule_permuted_matches_manual_permutation() {
        let m = MachineModel::new(3);
        let durations = [9, 2, 7, 1, 5];
        let order = [4u32, 0, 2, 1, 3];
        let a = m.schedule_permuted(&durations, &order);
        let manual: Vec<u64> = order.iter().map(|&i| durations[i as usize]).collect();
        let b = m.schedule(&manual);
        assert_eq!(a, b);
    }

    #[test]
    fn fewer_warps_than_slots() {
        let m = MachineModel::new(100);
        let r = m.schedule(&[3, 4]);
        assert_eq!(r.makespan, 4);
        assert_eq!(r.slots, 2, "unused slots are not counted against idleness");
    }

    #[test]
    fn empty_schedule() {
        let m = MachineModel::new(4);
        let r = m.schedule(&[]);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.idle_fraction(), 0.0);
        assert_eq!(r.warps, 0);
    }

    #[test]
    #[should_panic(expected = "at least one warp slot")]
    fn zero_slots_rejected() {
        let _ = MachineModel::new(0);
    }

    #[test]
    fn makespan_at_least_longest_warp_and_ideal() {
        let m = MachineModel::new(3);
        let d = [13, 2, 8, 8, 1, 1, 5];
        let r = m.schedule(&d);
        let longest = *d.iter().max().unwrap();
        let ideal = d.iter().sum::<u64>().div_ceil(3);
        assert!(r.makespan >= longest);
        assert!(r.makespan >= ideal);
    }
}
