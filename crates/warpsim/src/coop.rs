//! Cooperative thread groups (CUDA 9 `cooperative_groups` analogue).
//!
//! When the paper combines the WORKQUEUE with `k > 1` threads per query
//! point, it partitions each warp into groups of `k` lanes; only the group
//! leader (lane 0 of the group) increments the global counter, then shuffles
//! the acquired index to its peers. [`CoopGroups`] captures that lane↔group
//! arithmetic and validates `k`.

/// Partitioning of a warp into cooperative groups of `k` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoopGroups {
    warp_size: u32,
    k: u32,
}

/// Errors constructing a [`CoopGroups`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoopError {
    /// `k` must be ≥ 1.
    ZeroK,
    /// `k` must divide the warp size (CUDA tiled partitions require a
    /// power-of-two divisor of 32; we require the divisor part).
    NotADivisor {
        /// Requested group width.
        k: u32,
        /// The warp size it fails to divide.
        warp_size: u32,
    },
}

impl std::fmt::Display for CoopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoopError::ZeroK => write!(f, "cooperative group width k must be at least 1"),
            CoopError::NotADivisor { k, warp_size } => {
                write!(
                    f,
                    "cooperative group width {k} does not divide warp size {warp_size}"
                )
            }
        }
    }
}

impl std::error::Error for CoopError {}

impl CoopGroups {
    /// Partitions a warp of `warp_size` lanes into groups of `k`.
    pub fn new(warp_size: u32, k: u32) -> Result<Self, CoopError> {
        if k == 0 {
            return Err(CoopError::ZeroK);
        }
        if !warp_size.is_multiple_of(k) {
            return Err(CoopError::NotADivisor { k, warp_size });
        }
        Ok(Self { warp_size, k })
    }

    /// Group width `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of groups per warp.
    pub fn groups_per_warp(&self) -> u32 {
        self.warp_size / self.k
    }

    /// The group a lane belongs to.
    pub fn group_of(&self, lane: u32) -> u32 {
        debug_assert!(lane < self.warp_size);
        lane / self.k
    }

    /// The lane's rank within its group (`thread_rank()` in CUDA).
    pub fn rank_in_group(&self, lane: u32) -> u32 {
        debug_assert!(lane < self.warp_size);
        lane % self.k
    }

    /// Whether the lane is its group's leader.
    pub fn is_leader(&self, lane: u32) -> bool {
        self.rank_in_group(lane) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_partitions() {
        for k in [1u32, 2, 4, 8, 16, 32] {
            let g = CoopGroups::new(32, k).unwrap();
            assert_eq!(g.groups_per_warp() * k, 32);
        }
    }

    #[test]
    fn invalid_partitions_rejected() {
        assert_eq!(CoopGroups::new(32, 0), Err(CoopError::ZeroK));
        assert_eq!(
            CoopGroups::new(32, 5),
            Err(CoopError::NotADivisor {
                k: 5,
                warp_size: 32
            })
        );
    }

    #[test]
    fn lane_arithmetic() {
        let g = CoopGroups::new(32, 8).unwrap();
        assert_eq!(g.group_of(0), 0);
        assert_eq!(g.group_of(7), 0);
        assert_eq!(g.group_of(8), 1);
        assert_eq!(g.group_of(31), 3);
        assert_eq!(g.rank_in_group(13), 5);
        assert!(g.is_leader(0));
        assert!(g.is_leader(24));
        assert!(!g.is_leader(25));
    }

    #[test]
    fn every_group_has_exactly_one_leader() {
        let g = CoopGroups::new(32, 4).unwrap();
        for group in 0..g.groups_per_warp() {
            let leaders = (0..32)
                .filter(|&l| g.group_of(l) == group && g.is_leader(l))
                .count();
            assert_eq!(leaders, 1);
        }
    }

    #[test]
    fn k1_means_every_lane_leads() {
        let g = CoopGroups::new(32, 1).unwrap();
        assert!((0..32).all(|l| g.is_leader(l)));
        assert_eq!(g.groups_per_warp(), 32);
    }
}
