//! On-device parallel primitives: exclusive scan and LSD radix sort as
//! multi-dispatch warp-kernel chains.
//!
//! Real GPU sorts and scans are not single kernels but *chains* of launches
//! with device global memory carrying state between them: radix sort runs a
//! per-digit histogram **count** kernel, an exclusive **scan** of the
//! histogram, and a **scatter** kernel, iterated over digit passes; the scan
//! itself is a per-tile reduce, a recursive scan of the partial sums, and an
//! offset-add write-out. This module models exactly that structure on the
//! warp simulator: every dispatch is a [`launch_with`] over [`LaneProgram`]
//! warps (so it is costed in model cycles, divergence-aware, admitted
//! through the fault plane, and bit-identical across
//! [`StepMode`](crate::warp::StepMode)s), while the host plays the role of
//! device global memory between dispatches.
//!
//! Two fidelity notes, in the spirit of the simulator's envelope:
//!
//! - The **data plane of the scatter kernel is real**: destinations are
//!   emitted through the [`LaneSink`] as `(dst, element)` pairs, gathered in
//!   warp-id order by the kernel driver, and applied to the next-pass array —
//!   the permutation genuinely flows through the simulated kernel output
//!   path. The count and scan dispatches are costed op streams whose results
//!   (histograms, partial sums) the host mirrors with the same tile/warp
//!   decomposition the lanes execute, because lane programs have no shared
//!   memory to return `u64` sums through.
//! - All arithmetic is exact (wrapping `u64` adds, integer key digits), so
//!   the primitives are **bit-identical to their host oracles** regardless
//!   of device shape (`num_sms`, `warp_size`) or step mode — the property
//!   the differential suite in `tests/` pins.
//!
//! Converged passes hit the run-length fast path: the pure-compute segments
//! of every lane (tile reductions, digit extractions, histogram stores)
//! claim their full remaining run via [`RunClaim`], so a warp whose lanes
//! carry equal tiles advances each segment in O(1).

use std::ops::Range;

use crate::config::GpuConfig;
use crate::kernel::{launch_with, LaunchError, LaunchOptions, WarpSource};
use crate::lane::{LaneProgram, LaneSink, RunClaim};
use crate::memory::DeviceBuffer;
use crate::op::Op;
use crate::scheduler::IssueOrder;

/// Default radix-digit width in bits (256-way counting sort per pass — the
/// standard choice of GPU radix sorts).
pub const DEFAULT_DIGIT_BITS: u32 = 8;

/// Aggregated accounting of one primitive invocation's kernel-launch chain.
///
/// Dispatches within a chain are serial on the device, so elapsed cycles and
/// model seconds are sums over the chain's launches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrimitiveReport {
    /// Kernel launches in the chain (scan levels and, for the sort, the
    /// count/scan/scatter dispatches of every digit pass).
    pub launches: u64,
    /// Radix passes executed (0 for a standalone scan).
    pub passes: u32,
    /// Total elapsed model cycles (sum of per-launch makespans).
    pub elapsed_cycles: u64,
    /// Total elapsed model seconds.
    pub model_s: f64,
}

impl PrimitiveReport {
    fn absorb(&mut self, launch: &crate::kernel::LaunchReport) {
        self.launches += 1;
        self.elapsed_cycles += launch.elapsed_cycles();
        self.model_s += launch.elapsed_seconds();
    }

    /// Folds another chain's accounting into this one (serial composition).
    pub fn merge(&mut self, other: &PrimitiveReport) {
        self.launches += other.launches;
        self.passes += other.passes;
        self.elapsed_cycles += other.elapsed_cycles;
        self.model_s += other.model_s;
    }
}

/// Contiguous-tile assignment of `n` elements onto the device's concurrent
/// lane slots: the grid is sized to the device (every dispatch saturates it
/// once), each lane owning `ceil(n / lanes)` consecutive elements. The tail
/// lane may own fewer — the natural intra-warp divergence of tail tiles is
/// then modeled by the warp executor, not special-cased here.
#[derive(Debug, Clone, Copy)]
struct Tiling {
    n: usize,
    lanes: usize,
    tile: usize,
    warp_size: u32,
}

impl Tiling {
    fn new(gpu: &GpuConfig, n: usize) -> Self {
        let max_lanes = (gpu.total_warp_slots() * gpu.warp_size as usize).max(1);
        let tile = n.div_ceil(max_lanes).max(1);
        let lanes = n.div_ceil(tile).max(1);
        Self {
            n,
            lanes,
            tile,
            warp_size: gpu.warp_size,
        }
    }

    fn lane_range(&self, lane: usize) -> Range<usize> {
        let start = (lane * self.tile).min(self.n);
        start..((lane + 1) * self.tile).min(self.n)
    }

    fn num_warps(&self) -> usize {
        self.lanes.div_ceil(self.warp_size as usize)
    }

    fn warp_lanes(&self, warp: usize) -> Range<usize> {
        let start = warp * self.warp_size as usize;
        start..((warp + 1) * self.warp_size as usize).min(self.lanes)
    }
}

/// `ceil(log2(n))` — the tree depth of a warp-level upsweep or downsweep
/// over `n` lanes.
fn log2_ceil(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// A pure-compute lane: a sequence of segments, each `count` repeats of one
/// op, with no sink effects. Every segment claims its full remaining run
/// (the run-length contract is trivially upheld — there are no side effects
/// to defer), so converged dispatches ride the fast path.
#[derive(Debug, Clone)]
struct SegmentedLane {
    segments: Vec<(Op, u32)>,
    seg: usize,
    done: u32,
}

impl SegmentedLane {
    fn new(segments: Vec<(Op, u32)>) -> Self {
        let mut lane = Self {
            segments,
            seg: 0,
            done: 0,
        };
        lane.skip_empty();
        lane
    }

    fn skip_empty(&mut self) {
        while self.seg < self.segments.len() && self.done >= self.segments[self.seg].1 {
            self.seg += 1;
            self.done = 0;
        }
    }
}

impl LaneProgram for SegmentedLane {
    fn step(&mut self, _sink: &mut LaneSink) -> Option<Op> {
        let &(op, _) = self.segments.get(self.seg)?;
        self.done += 1;
        self.skip_empty();
        Some(op)
    }

    fn peek_run(&mut self) -> Option<RunClaim> {
        let &(op, count) = self.segments.get(self.seg)?;
        Some(RunClaim {
            op,
            len: count - self.done,
        })
    }

    fn commit_run(&mut self, n: u32, _sink: &mut LaneSink) {
        self.done += n;
        debug_assert!(
            self.seg < self.segments.len() && self.done <= self.segments[self.seg].1,
            "commit past the claimed run"
        );
        self.skip_empty();
    }
}

/// The scatter lane of a radix pass: for each owned element, one
/// rank-computation op (digit extraction + offset lookup) followed by one
/// emitting store of `(destination, element)` through the sink — the real
/// data path of the sort. Emitting steps are not run-claimed (the contract
/// allows sink effects only at a claimed run's final step), so scatter
/// dispatches execute stepped; they are a small fraction of a pass's ops.
#[derive(Debug, Clone)]
struct ScatterLane {
    writes: Vec<(u32, u32)>,
    pos: usize,
    pending_store: bool,
    compute_op: Op,
    store_op: Op,
}

impl LaneProgram for ScatterLane {
    fn step(&mut self, sink: &mut LaneSink) -> Option<Op> {
        if self.pos >= self.writes.len() {
            return None;
        }
        if self.pending_store {
            let (dst, val) = self.writes[self.pos];
            sink.emit(dst, val);
            self.pos += 1;
            self.pending_store = false;
            Some(self.store_op)
        } else {
            self.pending_store = true;
            Some(self.compute_op)
        }
    }
}

/// A launch grid of prebuilt warps (the host precomputes each dispatch's
/// lane parameters, as [`crate::kernel`] sources precompute index
/// structures).
struct PrebuiltGrid<L> {
    warps: Vec<Vec<L>>,
}

impl<L: LaneProgram + Send + Clone + Sync> WarpSource for PrebuiltGrid<L> {
    type Lane = L;

    fn num_warps(&self) -> usize {
        self.warps.len()
    }

    fn make_warp(&self, warp_id: u32) -> Vec<L> {
        self.warps[warp_id as usize].clone()
    }
}

/// Runs one dispatch of the chain and returns the pairs its lanes emitted.
fn run_dispatch<L: LaneProgram + Send + Clone + Sync>(
    gpu: &GpuConfig,
    warps: Vec<Vec<L>>,
    result_capacity: usize,
    opts: &LaunchOptions<'_>,
    report: &mut PrimitiveReport,
) -> Result<Vec<(u32, u32)>, LaunchError> {
    let grid = PrebuiltGrid { warps };
    let mut out = DeviceBuffer::with_capacity(result_capacity);
    let launch = launch_with(gpu, &grid, IssueOrder::InOrder, &mut out, opts)?;
    report.absorb(&launch);
    Ok(out.as_slice().to_vec())
}

/// Exclusive prefix sum of `values` (wrapping `u64` addition) computed as a
/// device kernel chain: per-lane tile reduce + warp upsweep/downsweep, a
/// recursive scan of the per-warp sums, and an offset-add write-out.
///
/// Returns `out` with `out[i] = values[0] + … + values[i-1]` (`out[0] = 0`),
/// bit-identical to a host `fold` for any device shape, plus the chain's
/// cost accounting. Empty input performs no launches.
pub fn device_exclusive_scan(
    gpu: &GpuConfig,
    values: &[u64],
    opts: &LaunchOptions<'_>,
) -> Result<(Vec<u64>, PrimitiveReport), LaunchError> {
    let mut report = PrimitiveReport::default();
    let out = scan_level(gpu, values, opts, &mut report)?;
    Ok((out, report))
}

fn scan_level(
    gpu: &GpuConfig,
    values: &[u64],
    opts: &LaunchOptions<'_>,
    report: &mut PrimitiveReport,
) -> Result<Vec<u64>, LaunchError> {
    let n = values.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let t = Tiling::new(gpu, n);
    let cost = &gpu.cost;
    let combine = cost.scan_combine_op();
    let shuffle = cost.shuffle_op();
    let sync = cost.sync_op();
    let store = cost.emit_op();

    // Dispatch 1 — reduce: each lane folds its tile into a partial sum, then
    // the warp runs an upsweep/downsweep shuffle tree over the lane partials.
    let mut warps = Vec::with_capacity(t.num_warps());
    for w in 0..t.num_warps() {
        let wl = t.warp_lanes(w);
        let tree = 2 * log2_ceil(wl.len());
        warps.push(
            wl.map(|l| {
                SegmentedLane::new(vec![
                    (combine, t.lane_range(l).len() as u32),
                    (shuffle, tree),
                    (sync, 1),
                ])
            })
            .collect::<Vec<_>>(),
        );
    }
    run_dispatch(gpu, warps, 0, opts, report)?;

    // Host mirror of the reduce kernel's outputs: per-lane partial sums,
    // intra-warp exclusive lane offsets, per-warp totals.
    let lane_sums: Vec<u64> = (0..t.lanes)
        .map(|l| {
            values[t.lane_range(l)]
                .iter()
                .fold(0u64, |a, &v| a.wrapping_add(v))
        })
        .collect();
    let mut warp_sums = vec![0u64; t.num_warps()];
    let mut lane_offsets = vec![0u64; t.lanes];
    for (w, warp_sum) in warp_sums.iter_mut().enumerate() {
        let mut acc = 0u64;
        for l in t.warp_lanes(w) {
            lane_offsets[l] = acc;
            acc = acc.wrapping_add(lane_sums[l]);
        }
        *warp_sum = acc;
    }

    // Dispatch 2 — recursive scan of the per-warp sums (a single warp's
    // sums need no further level: its offset is 0).
    let warp_offsets = if t.num_warps() > 1 {
        scan_level(gpu, &warp_sums, opts, report)?
    } else {
        vec![0u64]
    };

    // Dispatch 3 — write-out: each lane re-walks its tile, adding its warp
    // and lane offsets, and stores the exclusive prefixes.
    let mut warps = Vec::with_capacity(t.num_warps());
    for w in 0..t.num_warps() {
        warps.push(
            t.warp_lanes(w)
                .map(|l| {
                    let len = t.lane_range(l).len() as u32;
                    SegmentedLane::new(vec![(combine, len), (store, len)])
                })
                .collect::<Vec<_>>(),
        );
    }
    run_dispatch(gpu, warps, 0, opts, report)?;

    let mut out = vec![0u64; n];
    for (w, &warp_offset) in warp_offsets.iter().enumerate() {
        for l in t.warp_lanes(w) {
            let mut running = warp_offset.wrapping_add(lane_offsets[l]);
            for i in t.lane_range(l) {
                out[i] = running;
                running = running.wrapping_add(values[i]);
            }
        }
    }
    Ok(out)
}

/// Stable LSD radix argsort: returns the indices of `keys` in ascending key
/// order (equal keys keep input order), as a chain of per-digit-pass
/// count → scan → scatter kernel launches.
///
/// Each pass histograms the current digit per warp (count kernel), runs
/// [`device_exclusive_scan`] over the digit-major flattened histogram to turn
/// counts into global scatter offsets, and scatters `(destination, index)`
/// pairs through the lane sinks. The pass count is
/// `ceil(bits(max_key) / digit_bits)`, so cheap keys cost fewer passes;
/// all-equal keys (and inputs of length ≤ 1) sort in zero passes and zero
/// launches.
///
/// Stability makes composite orderings exact: ascending sort on
/// `((max_w - w) << 32) | id` reproduces "descending workload, ties by
/// ascending id" bit-for-bit — the SORTBYWL oracle.
pub fn device_radix_argsort(
    gpu: &GpuConfig,
    keys: &[u128],
    digit_bits: u32,
    opts: &LaunchOptions<'_>,
) -> Result<(Vec<u32>, PrimitiveReport), LaunchError> {
    assert!(
        (1..=16).contains(&digit_bits),
        "digit width must be in 1..=16 bits"
    );
    assert!(
        keys.len() <= u32::MAX as usize,
        "radix argsort indexes with u32"
    );
    let mut report = PrimitiveReport::default();
    let n = keys.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    if n <= 1 {
        return Ok((order, report));
    }
    let max_key = keys.iter().copied().max().unwrap_or(0);
    let key_bits = 128 - max_key.leading_zeros();
    let passes = key_bits.div_ceil(digit_bits);
    report.passes = passes;
    let radix = 1usize << digit_bits;
    let mask = (radix - 1) as u128;
    let t = Tiling::new(gpu, n);
    let num_warps = t.num_warps();
    let cost = &gpu.cost;
    let extract = cost.digit_extract_op();
    let store = cost.emit_op();
    let sync = cost.sync_op();

    for pass in 0..passes {
        let shift = pass * digit_bits;
        let digit = |idx: u32| ((keys[idx as usize] >> shift) & mask) as usize;

        // Count kernel: per-warp digit histograms (the work-group shared
        // histogram of a real radix sort). Each lane extracts its tile's
        // digits, then the warp cooperatively stores its histogram bins.
        let mut warps = Vec::with_capacity(num_warps);
        for w in 0..num_warps {
            let wl = t.warp_lanes(w);
            let bin_stores = radix.div_ceil(wl.len()) as u32;
            warps.push(
                wl.map(|l| {
                    SegmentedLane::new(vec![
                        (extract, t.lane_range(l).len() as u32),
                        (sync, 1),
                        (store, bin_stores),
                    ])
                })
                .collect::<Vec<_>>(),
            );
        }
        run_dispatch(gpu, warps, 0, opts, &mut report)?;

        // Host mirror of the histograms, flattened digit-major so the scan
        // below yields, for every (digit, warp), the first global output
        // slot of that warp's elements carrying that digit.
        let mut hist = vec![0u64; radix * num_warps];
        for w in 0..num_warps {
            for l in t.warp_lanes(w) {
                for i in t.lane_range(l) {
                    hist[digit(order[i]) * num_warps + w] += 1;
                }
            }
        }

        // Scan kernel(s): exclusive scan of the flattened histogram.
        let offsets = scan_level(gpu, &hist, opts, &mut report)?;

        // Scatter kernel: each warp walks its lanes' tiles in order, ranking
        // every element behind the elements with the same digit that precede
        // it (stability), and emits the actual (destination, index) moves.
        let mut warps = Vec::with_capacity(num_warps);
        for w in 0..num_warps {
            let mut cursor: Vec<u64> = (0..radix).map(|d| offsets[d * num_warps + w]).collect();
            warps.push(
                t.warp_lanes(w)
                    .map(|l| {
                        let writes: Vec<(u32, u32)> = t
                            .lane_range(l)
                            .map(|i| {
                                let d = digit(order[i]);
                                let dst = cursor[d];
                                cursor[d] += 1;
                                (dst as u32, order[i])
                            })
                            .collect();
                        ScatterLane {
                            writes,
                            pos: 0,
                            pending_store: false,
                            compute_op: extract,
                            store_op: store,
                        }
                    })
                    .collect::<Vec<_>>(),
            );
        }
        let moves = run_dispatch(gpu, warps, n, opts, &mut report)?;
        debug_assert_eq!(moves.len(), n, "a radix pass permutes every element");
        let mut next = vec![0u32; n];
        for (dst, idx) in moves {
            next[dst as usize] = idx;
        }
        order = next;
    }
    Ok((order, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlane, FaultSchedule};
    use crate::warp::StepMode;

    fn host_exclusive_scan(values: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(values.len());
        let mut acc = 0u64;
        for &v in values {
            out.push(acc);
            acc = acc.wrapping_add(v);
        }
        out
    }

    fn host_argsort(keys: &[u128]) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
        idx.sort_by_key(|&i| keys[i as usize]); // stable
        idx
    }

    #[test]
    fn scan_matches_host_fold() {
        let gpu = GpuConfig::small_test();
        for n in [0usize, 1, 2, 7, 31, 32, 33, 257, 1000] {
            let values: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 101).collect();
            let (out, report) =
                device_exclusive_scan(&gpu, &values, &LaunchOptions::default()).unwrap();
            assert_eq!(out, host_exclusive_scan(&values), "n = {n}");
            if n > 0 {
                assert!(report.launches >= 2);
                assert!(report.model_s > 0.0);
            } else {
                assert_eq!(report.launches, 0);
            }
        }
    }

    #[test]
    fn scan_is_exact_under_wrapping_sums() {
        let gpu = GpuConfig::small_test();
        let values = vec![u64::MAX, 3, u64::MAX - 1, 7, u64::MAX / 2];
        let (out, _) = device_exclusive_scan(&gpu, &values, &LaunchOptions::default()).unwrap();
        assert_eq!(out, host_exclusive_scan(&values));
    }

    #[test]
    fn scan_is_shape_invariant() {
        let values: Vec<u64> = (0..500u64).map(|i| (i * 13) % 29).collect();
        let small = GpuConfig::small_test();
        let big = GpuConfig::default();
        let (a, _) = device_exclusive_scan(&small, &values, &LaunchOptions::default()).unwrap();
        let (b, _) = device_exclusive_scan(&big, &values, &LaunchOptions::default()).unwrap();
        assert_eq!(a, b, "device shape must not change scan results");
    }

    #[test]
    fn argsort_matches_stable_host_sort() {
        let gpu = GpuConfig::small_test();
        let cases: Vec<Vec<u128>> = vec![
            vec![],
            vec![42],
            vec![5, 5, 5, 5],
            (0..300u128).rev().collect(),
            (0..300u128).collect(),
            (0..300u128).map(|i| (i * 7919) % 257).collect(),
            vec![u128::MAX, 0, u128::MAX / 2, 1, u128::MAX],
        ];
        for keys in cases {
            let (order, _) =
                device_radix_argsort(&gpu, &keys, DEFAULT_DIGIT_BITS, &LaunchOptions::default())
                    .unwrap();
            assert_eq!(order, host_argsort(&keys), "keys = {keys:?}");
        }
    }

    #[test]
    fn argsort_pass_count_tracks_key_width() {
        let gpu = GpuConfig::small_test();
        let opts = LaunchOptions::default();
        let (_, wide) = device_radix_argsort(&gpu, &[1u128 << 63, 5], 8, &opts).unwrap();
        assert_eq!(wide.passes, 8);
        let (_, narrow) = device_radix_argsort(&gpu, &[200u128, 5], 8, &opts).unwrap();
        assert_eq!(narrow.passes, 1);
        let (order, zero) = device_radix_argsort(&gpu, &[0u128, 0, 0], 8, &opts).unwrap();
        assert_eq!(zero.passes, 0, "all-zero keys need no passes");
        assert_eq!(zero.launches, 0);
        assert_eq!(order, vec![0, 1, 2], "zero passes keep input order");
    }

    #[test]
    fn step_modes_agree_bit_for_bit() {
        let gpu = GpuConfig::small_test();
        let keys: Vec<u128> = (0..200u128).map(|i| ((i * 31) % 17) << 32 | i).collect();
        let values: Vec<u64> = (0..200u64).map(|i| (i * 31) % 17).collect();
        let stepped = LaunchOptions::default().with_step_mode(StepMode::Stepped);
        let runlength = LaunchOptions::default().with_step_mode(StepMode::RunLength);
        let (o1, r1) = device_radix_argsort(&gpu, &keys, 8, &stepped).unwrap();
        let (o2, r2) = device_radix_argsort(&gpu, &keys, 8, &runlength).unwrap();
        assert_eq!(o1, o2);
        assert_eq!(r1, r2, "cost accounting must match across step modes");
        let (s1, c1) = device_exclusive_scan(&gpu, &values, &stepped).unwrap();
        let (s2, c2) = device_exclusive_scan(&gpu, &values, &runlength).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn digit_width_changes_cost_not_order() {
        let gpu = GpuConfig::small_test();
        let keys: Vec<u128> = (0..128u128).map(|i| (i * 2654435761) % 100_000).collect();
        let opts = LaunchOptions::default();
        let (o4, r4) = device_radix_argsort(&gpu, &keys, 4, &opts).unwrap();
        let (o8, r8) = device_radix_argsort(&gpu, &keys, 8, &opts).unwrap();
        assert_eq!(o4, o8);
        assert!(r4.passes > r8.passes);
    }

    #[test]
    fn fault_plane_gates_the_chain() {
        let gpu = GpuConfig::small_test();
        let keys: Vec<u128> = (0..64u128).rev().collect();
        // The first launch of the chain fails transiently: the whole
        // primitive aborts with the typed error and no partial state.
        let plane = FaultPlane::new(FaultSchedule::new().transient_at(0));
        let opts = LaunchOptions::default().with_fault_plane(&plane);
        let err = device_radix_argsort(&gpu, &keys, 8, &opts).unwrap_err();
        assert!(matches!(err, LaunchError::Transient(_)));
        // Re-running against the same plane (fault consumed) succeeds and is
        // bit-identical to an ungated run.
        let (order, _) = device_radix_argsort(&gpu, &keys, 8, &opts).unwrap();
        let (clean, _) = device_radix_argsort(&gpu, &keys, 8, &LaunchOptions::default()).unwrap();
        assert_eq!(order, clean);
    }

    #[test]
    fn segmented_lane_upholds_the_run_contract() {
        let op_a = Op::new(crate::op::OpKind::Other, 6);
        let op_b = Op::new(crate::op::OpKind::Emit, 8);
        let mut stepped = SegmentedLane::new(vec![(op_a, 3), (op_b, 0), (op_a, 2)]);
        let mut claimed = stepped.clone();
        let mut sink = LaneSink::new();
        // Claims never span segments and match the stepped op stream.
        let mut step_ops = Vec::new();
        while let Some(op) = stepped.step(&mut sink) {
            step_ops.push(op);
        }
        assert_eq!(step_ops.len(), 5);
        let claim = claimed.peek_run().unwrap();
        assert_eq!(claim, RunClaim { op: op_a, len: 3 });
        claimed.commit_run(2, &mut sink);
        assert_eq!(claimed.peek_run(), Some(RunClaim { op: op_a, len: 1 }));
        claimed.commit_run(1, &mut sink);
        assert_eq!(claimed.peek_run(), Some(RunClaim { op: op_a, len: 2 }));
        claimed.commit_run(2, &mut sink);
        assert_eq!(claimed.peek_run(), None);
        assert!(claimed.step(&mut sink).is_none());
    }

    #[test]
    fn tiling_covers_exactly_once() {
        let gpu = GpuConfig::small_test();
        for n in [1usize, 5, 31, 32, 33, 100, 1000] {
            let t = Tiling::new(&gpu, n);
            let mut covered = 0usize;
            for l in 0..t.lanes {
                covered += t.lane_range(l).len();
            }
            assert_eq!(covered, n, "n = {n}");
            let lanes_via_warps: usize = (0..t.num_warps()).map(|w| t.warp_lanes(w).len()).sum();
            assert_eq!(lanes_via_warps, t.lanes);
            assert!(t.lanes <= gpu.total_warp_slots() * gpu.warp_size as usize);
        }
    }
}
