//! Property-based tests for the SIMT simulator.

use proptest::prelude::*;
use warpsim::lane::FixedWorkLane;
use warpsim::{
    execute_warp, launch, trace_warp, BatchTiming, DeviceBuffer, GpuConfig, IssueOrder, LaneSink,
    MachineModel, Op, OpKind, StreamPipeline, WarpSource,
};

struct UniformWarps {
    work: Vec<u32>,
    lanes_per_warp: u32,
}

impl WarpSource for UniformWarps {
    type Lane = FixedWorkLane;
    fn num_warps(&self) -> usize {
        self.work.len()
    }
    fn make_warp(&self, warp_id: u32) -> Vec<FixedWorkLane> {
        (0..self.lanes_per_warp)
            .map(|_| FixedWorkLane::new(self.work[warp_id as usize], Op::new(OpKind::Distance, 10)))
            .collect()
    }
}

proptest! {
    /// WEE is always in [0, 1], and warp cycles equal max-lane-work when all
    /// lanes run identical op streams.
    #[test]
    fn warp_execution_invariants(work in prop::collection::vec(0u32..50, 1..=8)) {
        let mut lanes: Vec<_> = work
            .iter()
            .map(|&w| FixedWorkLane::new(w, Op::new(OpKind::Distance, 7)))
            .collect();
        let mut sink = LaneSink::new();
        let exec = execute_warp(&mut lanes, 8, &mut sink);
        let eff = exec.efficiency();
        prop_assert!((0.0..=1.0).contains(&eff));
        let max_work = *work.iter().max().unwrap() as u64;
        prop_assert_eq!(exec.cycles, max_work * 7);
        prop_assert_eq!(exec.issued, max_work);
        let total: u64 = work.iter().map(|&w| w as u64).sum();
        prop_assert_eq!(exec.total_lane_ops(), total);
        // WEE formula: total lane ops / (issued * warp_size)
        if exec.issued > 0 {
            let expected = total as f64 / (exec.issued * 8) as f64;
            prop_assert!((eff - expected).abs() < 1e-12);
        }
    }

    /// Machine makespan is sandwiched between the trivial lower bounds
    /// (longest warp, ideal split) and the serial upper bound.
    #[test]
    fn makespan_bounds(
        durations in prop::collection::vec(0u64..1000, 0..100),
        slots in 1usize..64,
    ) {
        let m = MachineModel::new(slots);
        let r = m.schedule(&durations);
        let total: u64 = durations.iter().sum();
        let longest = durations.iter().copied().max().unwrap_or(0);
        prop_assert!(r.makespan >= longest);
        prop_assert!(r.makespan as u128 * slots as u128 >= total as u128);
        prop_assert!(r.makespan <= total);
        prop_assert_eq!(r.total_busy, total);
        prop_assert_eq!(r.slot_busy.iter().sum::<u64>(), total);
    }

    /// Graham's list-scheduling bound holds for every issue order:
    /// `makespan * m ≤ total + (m - 1) * longest`. This is the guarantee that
    /// keeps even the arbitrary hardware order within 2× of optimal, and the
    /// reason WORKQUEUE's LPT-style order helps most when workloads are
    /// heavy-tailed (longest ≫ mean).
    #[test]
    fn graham_bound_holds_for_any_order(
        durations in prop::collection::vec(1u64..500, 1..80),
        seed in 0u64..1000,
        slots in 1usize..16,
    ) {
        let m = MachineModel::new(slots);
        let order = IssueOrder::Arbitrary { seed }.permutation(durations.len(), 4);
        let arb: Vec<u64> = order.iter().map(|&i| durations[i as usize]).collect();
        let span = m.schedule(&arb).makespan;
        let total: u64 = durations.iter().sum();
        let longest = *durations.iter().max().unwrap();
        let m_used = slots.min(durations.len()) as u64;
        prop_assert!(
            span * m_used <= total + (m_used - 1) * longest,
            "Graham bound violated: span {} on {} slots, total {}, longest {}",
            span, m_used, total, longest
        );
    }

    /// The stream pipeline respects the physical constraints: end-to-end
    /// time is at least the kernel-serial time and at least the copy-engine
    /// serial time, and at most their sum; kernel starts never overlap on
    /// the device.
    #[test]
    fn stream_pipeline_bounds(
        timings in prop::collection::vec((0.0f64..5.0, 0.0f64..5.0), 0..40),
        streams in 1usize..6,
    ) {
        let batches: Vec<BatchTiming> = timings
            .iter()
            .map(|&(k, t)| BatchTiming { kernel_s: k, transfer_s: t })
            .collect();
        let report = StreamPipeline::new(streams).schedule(&batches);
        let kernel_total: f64 = timings.iter().map(|t| t.0).sum();
        let transfer_total: f64 = timings.iter().map(|t| t.1).sum();
        prop_assert!(report.total_s >= kernel_total - 1e-9);
        prop_assert!(report.total_s >= transfer_total - 1e-9);
        prop_assert!(report.total_s <= kernel_total + transfer_total + 1e-9);
        for i in 1..batches.len() {
            let prev_end = report.kernel_starts[i - 1] + batches[i - 1].kernel_s;
            prop_assert!(report.kernel_starts[i] >= prev_end - 1e-9);
        }
        let hidden = report.transfer_hidden_fraction();
        prop_assert!((0.0..=1.0).contains(&hidden));
    }

    /// Tracing a warp agrees exactly with executing it.
    #[test]
    fn trace_agrees_with_execution(work in prop::collection::vec(0u32..40, 1..=8)) {
        let make = || -> Vec<FixedWorkLane> {
            work.iter()
                .map(|&w| FixedWorkLane::new(w, Op::new(OpKind::Distance, 9)))
                .collect()
        };
        let (mut a, mut b) = (make(), make());
        let exec = execute_warp(&mut a, 8, &mut LaneSink::new());
        let trace = trace_warp(&mut b, 8, &mut LaneSink::new());
        prop_assert_eq!(trace.cycles(), exec.cycles);
        // Idle fraction and WEE describe the same quantity at round
        // granularity (uniform op costs make them exactly complementary).
        if exec.issued > 0 {
            prop_assert!((1.0 - trace.idle_fraction() - exec.efficiency()).abs() < 1e-12);
        }
    }

    /// Every issue policy yields a valid permutation, and the launch outcome
    /// (results, WEE, total work) is identical across policies.
    #[test]
    fn issue_policies_affect_time_not_outcome(
        work in prop::collection::vec(0u32..30, 1..40),
        seed in 0u64..100,
    ) {
        let gpu = GpuConfig::small_test();
        let src = UniformWarps { work, lanes_per_warp: 4 };
        let mut reports = vec![];
        for order in [
            IssueOrder::InOrder,
            IssueOrder::Reversed,
            IssueOrder::Arbitrary { seed },
        ] {
            let mut out = DeviceBuffer::with_capacity(0);
            reports.push(launch(&gpu, &src, order, &mut out).unwrap());
        }
        let base = &reports[0];
        for r in &reports[1..] {
            prop_assert_eq!(r.distance_calcs(), base.distance_calcs());
            prop_assert!((r.wee() - base.wee()).abs() < 1e-12);
            prop_assert_eq!(&r.warp_cycles, &base.warp_cycles);
        }
    }
}
