//! Differential property tests: [`StepMode::RunLength`] must be
//! bit-identical to the [`StepMode::Stepped`] oracle — same
//! [`warpsim::WarpExecution`], same trace rounds, same pairs in the same
//! emission order — over adversarial lane programs that exercise every
//! corner of the run-length contract: zero-length claims, lanes that never
//! claim, claims shorter than the true run, tail warps, and lanes retiring
//! while neighbours are mid-run.

use proptest::prelude::*;
use warpsim::lane::FixedWorkLane;
use warpsim::{
    execute_warp_with, launch_with, trace_warp_with, DeviceBuffer, GpuConfig, IssueOrder, LaneSink,
    LaunchOptions, Op, OpKind, RunClaim, StepMode, WarpSource,
};

/// One homogeneous stretch of a scripted lane: `len` copies of `op`, with an
/// emission on the stretch's final step when `emit_at_end` is set.
/// `claim_cap` throttles what the lane claims: `0` claims nothing at all
/// (the executor must fall back to stepped rounds), otherwise the claim is
/// `min(claim_cap, steps left in the stretch)` — so claims routinely end
/// short of the true run.
#[derive(Debug, Clone)]
struct Segment {
    op: Op,
    len: u32,
    claim_cap: u32,
    emit_at_end: bool,
}

/// A lane program driven by a generated script of [`Segment`]s. Honors the
/// run-length contract: claims never span a segment boundary, so the only
/// sink effect (the end-of-segment emission) can only land on a claimed
/// run's final step.
#[derive(Debug, Clone)]
struct ScriptLane {
    id: u32,
    segments: Vec<Segment>,
    seg: usize,
    done_in_seg: u32,
}

impl ScriptLane {
    fn new(id: u32, segments: Vec<Segment>) -> Self {
        Self {
            id,
            segments,
            seg: 0,
            done_in_seg: 0,
        }
    }
}

impl warpsim::LaneProgram for ScriptLane {
    fn step(&mut self, sink: &mut LaneSink) -> Option<Op> {
        let segment = self.segments.get(self.seg)?;
        let op = segment.op;
        self.done_in_seg += 1;
        if self.done_in_seg == segment.len {
            if segment.emit_at_end {
                sink.emit(self.id, self.seg as u32);
            }
            self.seg += 1;
            self.done_in_seg = 0;
        }
        Some(op)
    }

    fn peek_run(&mut self) -> Option<RunClaim> {
        let segment = self.segments.get(self.seg)?;
        if segment.claim_cap == 0 {
            return None;
        }
        let remaining = segment.len - self.done_in_seg;
        Some(RunClaim {
            op: segment.op,
            len: remaining.min(segment.claim_cap),
        })
    }
    // Deliberately relies on the trait's default `commit_run` (step replay):
    // the O(1) overrides are covered by `FixedWorkLane` and the range-query
    // kernel lanes.
}

const OP_KINDS: [OpKind; 4] = [
    OpKind::Setup,
    OpKind::Distance,
    OpKind::Emit,
    OpKind::Atomic,
];

type RawSegment = ((usize, u32), (u32, u32), bool);

fn segments_from(raw: &[RawSegment]) -> Vec<Segment> {
    raw.iter()
        .map(|&((kind, cycles), (len, claim_cap), emit_at_end)| Segment {
            op: Op::new(OP_KINDS[kind % OP_KINDS.len()], cycles),
            len,
            claim_cap,
            emit_at_end,
        })
        .collect()
}

fn raw_warp() -> impl Strategy<Value = Vec<Vec<RawSegment>>> {
    // Up to 8 lanes against warp_size 8: tail warps (fewer lanes than the
    // warp width) and the empty warp are both generated. claim_cap spans 0
    // (never claims) through caps far above any segment length.
    prop::collection::vec(
        prop::collection::vec(
            ((0usize..4, 1u32..12), (1u32..10, 0u32..14), any::<bool>()),
            0..6,
        ),
        0..9,
    )
}

proptest! {
    /// The fast path reproduces the oracle bit for bit on scripted warps:
    /// execution counters, trace rounds, and pair emission order.
    #[test]
    fn step_modes_agree_on_adversarial_scripts(raw in raw_warp()) {
        let make = || -> Vec<ScriptLane> {
            raw.iter()
                .enumerate()
                .map(|(i, segs)| ScriptLane::new(i as u32, segments_from(segs)))
                .collect()
        };

        let (mut a, mut b) = (make(), make());
        let (mut sink_a, mut sink_b) = (LaneSink::new(), LaneSink::new());
        let stepped = execute_warp_with(&mut a, 8, &mut sink_a, StepMode::Stepped);
        let fast = execute_warp_with(&mut b, 8, &mut sink_b, StepMode::RunLength);
        prop_assert_eq!(stepped, fast);
        prop_assert_eq!(sink_a.pairs(), sink_b.pairs(), "pair emission order differs");

        let (mut c, mut d) = (make(), make());
        let tr_stepped = trace_warp_with(&mut c, 8, &mut LaneSink::new(), StepMode::Stepped);
        let tr_fast = trace_warp_with(&mut d, 8, &mut LaneSink::new(), StepMode::RunLength);
        prop_assert_eq!(tr_stepped.rounds, tr_fast.rounds, "trace rounds differ");
    }

    /// Whole launches agree across modes for O(1)-committing lanes with
    /// skewed per-warp work (mid-run retirement of short lanes while long
    /// lanes keep claiming).
    #[test]
    fn step_modes_agree_on_launches(work in prop::collection::vec(0u32..40, 1..30)) {
        struct Skewed {
            work: Vec<u32>,
        }
        impl WarpSource for Skewed {
            type Lane = FixedWorkLane;
            fn num_warps(&self) -> usize {
                self.work.len()
            }
            fn make_warp(&self, warp_id: u32) -> Vec<FixedWorkLane> {
                let w = self.work[warp_id as usize];
                // Lane i carries a decreasing share, so lanes retire at
                // different rounds within the warp.
                (0..4)
                    .map(|i| FixedWorkLane::new(w / (i + 1), Op::new(OpKind::Distance, 10)))
                    .collect()
            }
        }
        let gpu = GpuConfig::small_test();
        let src = Skewed { work };
        let run = |mode: StepMode| {
            let mut out = DeviceBuffer::with_capacity(0);
            let opts = LaunchOptions::default().with_step_mode(mode);
            launch_with(&gpu, &src, IssueOrder::InOrder, &mut out, &opts).unwrap()
        };
        let stepped = run(StepMode::Stepped);
        let fast = run(StepMode::RunLength);
        prop_assert_eq!(stepped.totals, fast.totals);
        prop_assert_eq!(stepped.warp_cycles, fast.warp_cycles);
        prop_assert_eq!(stepped.makespan.makespan, fast.makespan.makespan);
        prop_assert!((stepped.wee() - fast.wee()).abs() == 0.0);
    }
}
