//! Property-based tests: every kernel variant is an exact self-join.

use proptest::prelude::*;
use simjoin::{
    brute_force_join, AccessPattern, Balancing, BatchingConfig, SelfJoin, SelfJoinConfig,
};

fn arb_points_2d() -> impl Strategy<Value = Vec<[f32; 2]>> {
    prop::collection::vec(prop::array::uniform2(-20.0f32..20.0), 1..80)
}

fn arb_points_3d() -> impl Strategy<Value = Vec<[f32; 3]>> {
    prop::collection::vec(prop::array::uniform3(-8.0f32..8.0), 1..50)
}

fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    prop_oneof![
        Just(AccessPattern::FullWindow),
        Just(AccessPattern::Unicomp),
        Just(AccessPattern::LidUnicomp),
    ]
}

fn arb_balancing() -> impl Strategy<Value = Balancing> {
    prop_oneof![
        Just(Balancing::None),
        Just(Balancing::SortByWorkload),
        Just(Balancing::WorkQueue),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any (pattern, balancing, k) combination returns exactly the
    /// brute-force pair set — the headline correctness property.
    #[test]
    fn all_variants_are_exact_2d(
        pts in arb_points_2d(),
        eps in 0.05f32..30.0,
        pattern in arb_pattern(),
        balancing in arb_balancing(),
        k in prop::sample::select(vec![1u32, 2, 4, 8]),
    ) {
        let mut expected = brute_force_join(&pts, eps);
        expected.sort_unstable();
        let config = SelfJoinConfig::new(eps)
            .with_pattern(pattern)
            .with_balancing(balancing)
            .with_k(k);
        let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
        prop_assert_eq!(outcome.result.sorted_pairs(), expected);
        prop_assert!(outcome.result.validate().is_ok());
    }

    #[test]
    fn all_variants_are_exact_3d(
        pts in arb_points_3d(),
        eps in 0.1f32..10.0,
        pattern in arb_pattern(),
        balancing in arb_balancing(),
    ) {
        let mut expected = brute_force_join(&pts, eps);
        expected.sort_unstable();
        let config = SelfJoinConfig::new(eps)
            .with_pattern(pattern)
            .with_balancing(balancing);
        let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
        prop_assert_eq!(outcome.result.sorted_pairs(), expected);
    }

    /// Tight batching never overflows the result buffer and never changes
    /// the result.
    #[test]
    fn batching_preserves_results(
        pts in arb_points_2d(),
        eps in 0.5f32..30.0,
        balancing in arb_balancing(),
    ) {
        let mut expected = brute_force_join(&pts, eps);
        expected.sort_unstable();
        // Choose a capacity that forces several batches when there are
        // results but stays above the worst single warp's output.
        let capacity = (expected.len() / 2).max(64 * pts.len());
        let config = SelfJoinConfig::new(eps)
            .with_balancing(balancing)
            .with_batching(BatchingConfig {
                batch_result_capacity: capacity,
                safety_factor: 1.5,
                ..BatchingConfig::default()
            });
        let outcome = SelfJoin::new(&pts, config).unwrap().run().unwrap();
        prop_assert_eq!(outcome.result.sorted_pairs(), expected);
        for b in &outcome.report.batches {
            prop_assert!(b.pairs <= capacity);
        }
    }

    /// WEE is a valid efficiency and response time is positive whenever any
    /// work was done.
    #[test]
    fn report_sanity(pts in arb_points_2d(), eps in 0.05f32..5.0) {
        let outcome = SelfJoin::new(&pts, SelfJoinConfig::optimized(eps))
            .unwrap()
            .run()
            .unwrap();
        let wee = outcome.report.wee();
        prop_assert!((0.0..=1.0).contains(&wee));
        prop_assert!(outcome.report.response_time_s() >= 0.0);
        prop_assert_eq!(outcome.report.total_pairs, outcome.result.len());
    }
}
