//! The batched execution scheme (§II-C2, modified for WORKQUEUE in §III-D).
//!
//! The total result set can exceed the device's memory, so the join runs as
//! `nbBatches` kernel invocations, each bounded to at most `b_s` result
//! pairs. The batch count comes from an estimate of the total result size
//! obtained by sampling a fraction (the paper uses 1 %) of the dataset and
//! counting those points' neighbors exactly:
//!
//! - the **strided** scheme (baseline, SORTBYWL) samples every `1/f`-th
//!   point and assigns point `i` to batch `i mod nbBatches`, so batches have
//!   near-identical result sizes;
//! - the **prefix** scheme (WORKQUEUE) samples the first 1 % of the
//!   workload-sorted `D'`. Because those are the heaviest points, the
//!   estimate is deliberately pessimistic — the first (heaviest) consecutive
//!   chunk of `D'` must not overflow — and more batches are executed than in
//!   the strided scheme, exactly as the paper describes.

use epsgrid::{GridIndex, Point};

use crate::workload::WorkloadProfile;

/// Parameters of the batching scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchingConfig {
    /// Maximum result pairs per batch (`b_s`). The paper uses 10⁸ for
    /// datasets of 2–50 M points; scale it with your dataset.
    pub batch_result_capacity: usize,
    /// Number of streams/pinned buffers overlapping transfers with kernels.
    pub num_streams: usize,
    /// Fraction of the dataset sampled by the result-size estimator.
    pub sample_fraction: f64,
    /// Safety multiplier applied to the estimate before computing the batch
    /// count (guards against under-sampling; 1.0 reproduces the paper).
    pub safety_factor: f64,
    /// Bytes transferred per result pair (two `u32` ids).
    pub transfer_bytes_per_pair: u64,
    /// Device-to-host bandwidth in bytes per model second (PCIe-class).
    pub transfer_bandwidth: f64,
    /// WORKQUEUE only: cut queue chunks on cumulative workload instead of
    /// point count, equalizing per-batch result sizes (the paper's §V
    /// future-work extension; `false` reproduces the paper's scheme).
    pub balanced_queue: bool,
    /// Device-saturation floor: cap the planned batch count at this value
    /// and grow the per-batch buffer instead (`0` = uncapped, the paper's
    /// scheme). At the paper's dataset sizes every batch holds hundreds of
    /// thousands of threads, so the cap never binds there; at
    /// simulator-scale sizes, an uncapped pessimistic estimate can shrink
    /// batches below the device's concurrent-warp capacity, which would
    /// measure buffer bookkeeping instead of load balance.
    pub max_batches: usize,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        Self {
            batch_result_capacity: 10_000_000,
            num_streams: 3,
            sample_fraction: 0.01,
            safety_factor: 1.25,
            transfer_bytes_per_pair: 8,
            transfer_bandwidth: 12.0e9,
            balanced_queue: false,
            max_batches: 0,
        }
    }
}

impl BatchingConfig {
    /// Model seconds to transfer `pairs` result pairs to the host.
    pub fn transfer_seconds(&self, pairs: usize) -> f64 {
        (pairs as u64 * self.transfer_bytes_per_pair) as f64 / self.transfer_bandwidth
    }
}

/// The result-size estimate behind a batch plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultEstimate {
    /// Points whose neighborhoods were counted exactly.
    pub sampled_points: usize,
    /// Ordered pairs found among the sampled points' neighborhoods.
    pub sampled_pairs: u64,
    /// Extrapolated total ordered pairs for the whole dataset.
    pub estimated_total: u64,
}

/// Exactly counts the ε-neighbors (excluding self) of each given point via
/// the grid — the estimator's sampling kernel.
pub fn count_neighbors_of<const N: usize>(
    grid: &GridIndex<N>,
    points: &[Point<N>],
    epsilon: f32,
    sample: &[u32],
) -> u64 {
    let eps_sq = epsilon * epsilon;
    let mut total = 0u64;
    for &pid in sample {
        let p = &points[pid as usize];
        grid.for_each_candidate_of(pid as usize, |cand| {
            if cand != pid as usize && epsgrid::euclidean_dist_sq(p, &points[cand]) <= eps_sq {
                total += 1;
            }
        });
    }
    total
}

/// Strided-sample estimate: every `1/sample_fraction`-th point.
pub fn estimate_strided<const N: usize>(
    grid: &GridIndex<N>,
    points: &[Point<N>],
    epsilon: f32,
    sample_fraction: f64,
) -> ResultEstimate {
    let stride = (1.0 / sample_fraction.clamp(1e-6, 1.0)).round().max(1.0) as usize;
    let sample: Vec<u32> = (0..points.len())
        .step_by(stride)
        .map(|i| i as u32)
        .collect();
    finish_estimate(grid, points, epsilon, &sample, points.len())
}

/// Prefix-sample estimate over a workload-sorted order (WORKQUEUE variant):
/// the first `sample_fraction` of `order`, i.e. the heaviest points.
pub fn estimate_prefix<const N: usize>(
    grid: &GridIndex<N>,
    points: &[Point<N>],
    epsilon: f32,
    sample_fraction: f64,
    order: &[u32],
) -> ResultEstimate {
    if order.is_empty() {
        // `clamp(1, 0)` below would panic; an empty order has a trivially
        // exact zero estimate.
        return ResultEstimate {
            sampled_points: 0,
            sampled_pairs: 0,
            estimated_total: 0,
        };
    }
    let n = ((order.len() as f64 * sample_fraction).ceil() as usize).clamp(1, order.len());
    finish_estimate(grid, points, epsilon, &order[..n], points.len())
}

fn finish_estimate<const N: usize>(
    grid: &GridIndex<N>,
    points: &[Point<N>],
    epsilon: f32,
    sample: &[u32],
    total_points: usize,
) -> ResultEstimate {
    let sampled_pairs = count_neighbors_of(grid, points, epsilon, sample);
    let estimated_total = if sample.is_empty() {
        0
    } else {
        (sampled_pairs as f64 * total_points as f64 / sample.len() as f64).ceil() as u64
    };
    ResultEstimate {
        sampled_points: sample.len(),
        sampled_pairs,
        estimated_total,
    }
}

/// The query-point composition of every batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchPlan {
    /// Strided batches: `batches[l]` lists batch `l`'s query ids in thread
    /// order (already workload-sorted when SORTBYWL is active).
    Strided {
        /// Per-batch query ids.
        batches: Vec<Vec<u32>>,
    },
    /// Consecutive chunks of the workload-sorted order, consumed through
    /// the global queue head.
    Queue {
        /// The workload-sorted dataset `D'`.
        order: Vec<u32>,
        /// Per-batch half-open index ranges into `order`, in queue order.
        chunks: Vec<std::ops::Range<usize>>,
    },
}

impl BatchPlan {
    /// Number of batches in the plan.
    pub fn num_batches(&self) -> usize {
        match self {
            BatchPlan::Strided { batches } => batches.len(),
            BatchPlan::Queue { chunks, .. } => chunks.len(),
        }
    }

    /// Total query points covered by the plan.
    pub fn total_queries(&self) -> usize {
        match self {
            BatchPlan::Strided { batches } => batches.iter().map(|b| b.len()).sum(),
            BatchPlan::Queue { order, .. } => order.len(),
        }
    }
}

/// Computes the batch count from an estimate: `ceil(safety × estimate / b_s)`,
/// at least 1, capped at [`BatchingConfig::max_batches`] when that floor is
/// set.
pub fn num_batches_for(estimate: &ResultEstimate, config: &BatchingConfig) -> usize {
    num_batches_scaled(estimate, config, 1)
}

/// [`num_batches_for`] with the *uncapped* count scaled by `multiplier`
/// (an overflow-recovery planner asking for more total capacity). The
/// device-saturation cap applies to the **final** count: when it binds, the
/// extra capacity must come from growing the per-batch buffer
/// ([`buffer_capacity_scaled`]) rather than from violating the cap.
pub fn num_batches_scaled(
    estimate: &ResultEstimate,
    config: &BatchingConfig,
    multiplier: usize,
) -> usize {
    let padded = (estimate.estimated_total as f64 * config.safety_factor).ceil() as u64;
    let nb = (padded.div_ceil(config.batch_result_capacity.max(1) as u64) as usize)
        .max(1)
        .saturating_mul(multiplier.max(1));
    if config.max_batches > 0 {
        nb.min(config.max_batches)
    } else {
        nb
    }
}

/// The per-batch buffer capacity implied by an estimate and a batch count:
/// at least `b_s`, grown when the saturation cap forced fewer batches than
/// the estimate wanted (with slack for per-batch variance).
pub fn buffer_capacity_for(
    estimate: &ResultEstimate,
    num_batches: usize,
    config: &BatchingConfig,
) -> usize {
    buffer_capacity_scaled(estimate, num_batches, config, 1)
}

/// [`buffer_capacity_for`] under an overflow-recovery `multiplier`: the
/// estimate is scaled up by the same factor the planner asked for, so the
/// buffer absorbs the capacity the capped batch count cannot.
pub fn buffer_capacity_scaled(
    estimate: &ResultEstimate,
    num_batches: usize,
    config: &BatchingConfig,
    multiplier: usize,
) -> usize {
    let padded = (estimate.estimated_total as f64 * config.safety_factor * multiplier.max(1) as f64)
        .ceil() as u64;
    let per_batch = padded.div_ceil(num_batches.max(1) as u64);
    config
        .batch_result_capacity
        .max((per_batch as usize).saturating_mul(2))
}

/// Builds the strided plan: point `i` goes to batch `i mod nb` (the paper's
/// Figure 1 assignment). If `profile` is given (SORTBYWL), each batch is
/// sorted by non-increasing workload.
pub fn plan_strided(
    num_points: usize,
    num_batches: usize,
    profile: Option<&WorkloadProfile>,
) -> BatchPlan {
    let nb = num_batches.max(1);
    let mut batches: Vec<Vec<u32>> = vec![Vec::with_capacity(num_points / nb + 1); nb];
    for i in 0..num_points {
        batches[i % nb].push(i as u32);
    }
    if let Some(profile) = profile {
        for batch in &mut batches {
            profile.sort_by_workload(batch);
        }
    }
    BatchPlan::Strided { batches }
}

/// Builds the queue plan: `order` split into `num_batches` consecutive
/// chunks of `ceil(n / nb)` points (the paper's fixed-size chunking).
pub fn plan_queue(order: Vec<u32>, num_batches: usize) -> BatchPlan {
    let nb = num_batches.max(1);
    let chunk_len = order.len().div_ceil(nb).max(1);
    let chunks = (0..order.len())
        .step_by(chunk_len)
        .map(|start| start..(start + chunk_len).min(order.len()))
        .collect();
    BatchPlan::Queue { order, chunks }
}

/// Builds a queue plan whose chunks carry near-equal *workload* rather than
/// equal point counts — the paper's §V future-work direction ("dynamically
/// grouping batches of queries together … such that each batch yields
/// similar result set sizes"). Because `order` is sorted by non-increasing
/// workload, fixed-size chunks make the first batch far heavier than the
/// last; cutting on cumulative workload instead equalizes per-batch result
/// sizes and lets the planner use fewer, fuller batches.
pub fn plan_queue_balanced(
    order: Vec<u32>,
    per_point_workload: &[u64],
    num_batches: usize,
) -> BatchPlan {
    let prefix = inclusive_workload_prefix(&order, per_point_workload);
    plan_queue_balanced_from_prefix(order, &prefix, num_batches)
}

/// The in-order inclusive workload prefix of `order`:
/// `prefix[i] = Σ_{j ≤ i} workload(order[j])` — the host oracle of the
/// device exclusive-scan pre-pass (an exclusive scan plus the element at
/// `i`).
pub fn inclusive_workload_prefix(order: &[u32], per_point_workload: &[u64]) -> Vec<u128> {
    let mut acc: u128 = 0;
    order
        .iter()
        .map(|&pid| {
            acc += per_point_workload[pid as usize] as u128;
            acc
        })
        .collect()
}

/// [`plan_queue_balanced`] from a precomputed inclusive workload prefix.
/// Both sort backends cut through this single function, so the plans are
/// identical by construction whenever the prefixes are (which the
/// differential suite guarantees for the device scan).
pub fn plan_queue_balanced_from_prefix(
    order: Vec<u32>,
    inclusive_prefix: &[u128],
    num_batches: usize,
) -> BatchPlan {
    debug_assert_eq!(order.len(), inclusive_prefix.len());
    let nb = num_batches.max(1);
    let total: u128 = inclusive_prefix.last().copied().unwrap_or(0);
    if total == 0 || nb == 1 {
        return plan_queue(order, nb);
    }
    let target = total.div_ceil(nb as u128).max(1);
    let mut chunks = Vec::with_capacity(nb);
    let mut start = 0usize;
    // `base` is the workload consumed by all chunks already cut, so
    // `inclusive_prefix[i] - base` is the running accumulator of the
    // classic formulation (which resets at every cut).
    let mut base: u128 = 0;
    for (i, &prefix) in inclusive_prefix.iter().enumerate() {
        if prefix - base >= target && i + 1 < order.len() {
            chunks.push(start..i + 1);
            start = i + 1;
            base = prefix;
        }
    }
    if start < order.len() {
        chunks.push(start..order.len());
    }
    BatchPlan::Queue { order, chunks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_neighbor_counts;

    fn blob(n: usize) -> Vec<Point<2>> {
        (0..n)
            .map(|i| [0.01 * (i % 37) as f32, 0.013 * (i % 29) as f32])
            .collect()
    }

    #[test]
    fn exact_sampling_matches_brute_force() {
        let pts = blob(200);
        let eps = 0.05;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let est = estimate_strided(&grid, &pts, eps, 1.0);
        let expected: u64 = brute_force_neighbor_counts(&pts, eps).iter().sum();
        assert_eq!(est.sampled_points, 200);
        assert_eq!(est.sampled_pairs, expected);
        assert_eq!(est.estimated_total, expected);
    }

    #[test]
    fn strided_sampling_extrapolates() {
        let pts = blob(500);
        let eps = 0.05;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let est = estimate_strided(&grid, &pts, eps, 0.1);
        assert_eq!(est.sampled_points, 50);
        let exact: u64 = brute_force_neighbor_counts(&pts, eps).iter().sum();
        // Within a loose factor for this repetitive dataset.
        assert!(est.estimated_total > exact / 3);
        assert!(est.estimated_total < exact * 3);
    }

    #[test]
    fn prefix_sampling_over_sorted_order_overestimates() {
        // Heavy points first → prefix estimate ≥ strided/exact estimate.
        let mut pts = blob(300);
        pts.extend((0..50).map(|i| [10.0 + 0.3 * i as f32, 10.0]));
        let eps = 0.05;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let profile = WorkloadProfile::compute(&grid);
        let order = profile.sorted_dataset(&grid);
        let prefix = estimate_prefix(&grid, &pts, eps, 0.05, &order);
        let exact = estimate_strided(&grid, &pts, eps, 1.0);
        assert!(
            prefix.estimated_total >= exact.estimated_total,
            "prefix (heaviest-first) estimate {} should be pessimistic vs exact {}",
            prefix.estimated_total,
            exact.estimated_total
        );
    }

    #[test]
    fn prefix_estimate_of_empty_order_is_zero() {
        // The per-shard planner can hand an empty slice of the sorted
        // dataset to the estimator; that must be a zero estimate, not a
        // `clamp(1, 0)` panic.
        let pts = blob(50);
        let eps = 0.05;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let est = estimate_prefix(&grid, &pts, eps, 0.01, &[]);
        assert_eq!(
            est,
            ResultEstimate {
                sampled_points: 0,
                sampled_pairs: 0,
                estimated_total: 0,
            }
        );
    }

    #[test]
    fn estimators_handle_singleton_dataset() {
        let pts: Vec<Point<2>> = vec![[0.5, 0.5]];
        let eps = 0.1;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let strided = estimate_strided(&grid, &pts, eps, 0.01);
        assert_eq!(strided.sampled_points, 1);
        assert_eq!(strided.estimated_total, 0);
        let prefix = estimate_prefix(&grid, &pts, eps, 0.01, &[0]);
        assert_eq!(prefix.sampled_points, 1);
        assert_eq!(prefix.sampled_pairs, 0);
        assert_eq!(prefix.estimated_total, 0);
    }

    #[test]
    fn batch_count_scales_with_estimate() {
        let config = BatchingConfig {
            batch_result_capacity: 1000,
            safety_factor: 1.0,
            ..BatchingConfig::default()
        };
        let est = |total| ResultEstimate {
            sampled_points: 1,
            sampled_pairs: 1,
            estimated_total: total,
        };
        assert_eq!(num_batches_for(&est(0), &config), 1);
        assert_eq!(num_batches_for(&est(999), &config), 1);
        assert_eq!(num_batches_for(&est(1000), &config), 1);
        assert_eq!(num_batches_for(&est(1001), &config), 2);
        assert_eq!(num_batches_for(&est(10_000), &config), 10);
    }

    #[test]
    fn max_batches_caps_and_buffer_grows() {
        let config = BatchingConfig {
            batch_result_capacity: 1000,
            safety_factor: 1.0,
            max_batches: 4,
            ..BatchingConfig::default()
        };
        let est = ResultEstimate {
            sampled_points: 1,
            sampled_pairs: 1,
            estimated_total: 20_000,
        };
        let nb = num_batches_for(&est, &config);
        assert_eq!(nb, 4, "would be 20 uncapped");
        let cap = buffer_capacity_for(&est, nb, &config);
        assert!(
            cap >= 20_000 / 4,
            "buffer must hold a quarter of the estimate"
        );
        assert!(cap >= config.batch_result_capacity);
        // Without the floor, the cap stays at b_s.
        let uncapped = BatchingConfig {
            max_batches: 0,
            ..config
        };
        assert_eq!(num_batches_for(&est, &uncapped), 20);
    }

    #[test]
    fn multiplier_respects_the_saturation_cap() {
        // The overflow-recovery multiplier scales the *uncapped* count; the
        // cap applies last, and the buffer grows to absorb the difference.
        let config = BatchingConfig {
            batch_result_capacity: 1000,
            safety_factor: 1.0,
            max_batches: 4,
            ..BatchingConfig::default()
        };
        let est = ResultEstimate {
            sampled_points: 1,
            sampled_pairs: 1,
            estimated_total: 3_000,
        };
        assert_eq!(num_batches_scaled(&est, &config, 1), 3);
        assert_eq!(
            num_batches_scaled(&est, &config, 4),
            4,
            "12 uncapped batches must still clamp to the cap"
        );
        let cap = buffer_capacity_scaled(&est, 4, &config, 4);
        assert!(
            cap >= 3_000 * 4 / 4,
            "the buffer must absorb the capacity the cap refused: got {cap}"
        );
        // Uncapped config: the multiplier multiplies the batch count.
        let uncapped = BatchingConfig {
            max_batches: 0,
            ..config
        };
        assert_eq!(num_batches_scaled(&est, &uncapped, 4), 12);
        assert_eq!(
            buffer_capacity_scaled(&est, 12, &uncapped, 4),
            buffer_capacity_for(&est, 3, &uncapped),
            "when the batch count grows with the multiplier, per-batch \
             demand — and so the buffer — stays at the unscaled size"
        );
    }

    #[test]
    fn safety_factor_adds_batches() {
        let base = BatchingConfig {
            batch_result_capacity: 1000,
            safety_factor: 1.0,
            ..BatchingConfig::default()
        };
        let padded = BatchingConfig {
            safety_factor: 2.0,
            ..base
        };
        let est = ResultEstimate {
            sampled_points: 1,
            sampled_pairs: 1,
            estimated_total: 1500,
        };
        assert_eq!(num_batches_for(&est, &base), 2);
        assert_eq!(num_batches_for(&est, &padded), 3);
    }

    #[test]
    fn strided_plan_partitions_points() {
        let plan = plan_strided(10, 3, None);
        let BatchPlan::Strided { batches } = &plan else {
            panic!()
        };
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0], vec![0, 3, 6, 9]);
        assert_eq!(batches[1], vec![1, 4, 7]);
        assert_eq!(batches[2], vec![2, 5, 8]);
        assert_eq!(plan.total_queries(), 10);
    }

    #[test]
    fn queue_plan_chunks_cover_order() {
        let order: Vec<u32> = (0..10).collect();
        let plan = plan_queue(order, 4);
        let BatchPlan::Queue { chunks, order } = &plan else {
            panic!()
        };
        assert_eq!(order.len(), 10);
        // chunks: 3 + 3 + 3 + 1, contiguous and covering
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0], 0..3);
        assert_eq!(chunks[3], 9..10);
        let covered: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn queue_plan_drops_empty_trailing_chunks() {
        let order: Vec<u32> = (0..4).collect();
        let plan = plan_queue(order, 10);
        assert_eq!(plan.num_batches(), 4);
    }

    #[test]
    fn balanced_queue_equalizes_workload_per_chunk() {
        // Workloads 100, 50, 25, 25, 1×10 (sorted order): fixed chunking by
        // count puts 200 workload in the first of 4 chunks; balanced cuts at
        // ~52 workload each.
        let workload: Vec<u64> = vec![100, 50, 25, 25, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1];
        let order: Vec<u32> = (0..workload.len() as u32).collect();
        let plan = plan_queue_balanced(order, &workload, 4);
        let BatchPlan::Queue { chunks, order } = &plan else {
            panic!()
        };
        // Coverage: contiguous, disjoint, complete.
        let mut expected_start = 0;
        for c in chunks {
            assert_eq!(c.start, expected_start);
            expected_start = c.end;
        }
        assert_eq!(expected_start, order.len());
        // The heaviest point sits alone in the first chunk.
        assert_eq!(chunks[0], 0..1);
        // Per-chunk workload spread is far tighter than fixed chunking's.
        let chunk_load = |c: &std::ops::Range<usize>| -> u64 {
            order[c.clone()].iter().map(|&p| workload[p as usize]).sum()
        };
        let loads: Vec<u64> = chunks.iter().map(chunk_load).collect();
        let max = *loads.iter().max().unwrap();
        assert!(
            max <= 100,
            "no chunk should exceed the single heaviest point by much"
        );
        let fixed = plan_queue((0..workload.len() as u32).collect(), 4);
        let BatchPlan::Queue {
            chunks: fixed_chunks,
            order: fixed_order,
        } = &fixed
        else {
            panic!()
        };
        let fixed_loads: Vec<u64> = fixed_chunks
            .iter()
            .map(|c| {
                fixed_order[c.clone()]
                    .iter()
                    .map(|&p| workload[p as usize])
                    .sum()
            })
            .collect();
        assert!(fixed_loads[0] > 2 * max || fixed_loads[0] >= 175);
    }

    #[test]
    fn balanced_queue_handles_degenerate_inputs() {
        // Zero workload falls back to fixed chunking.
        let plan = plan_queue_balanced((0..6).collect(), &[0; 6], 3);
        assert_eq!(plan.num_batches(), 3);
        assert_eq!(plan.total_queries(), 6);
        // One batch keeps everything together.
        let plan = plan_queue_balanced((0..6).collect(), &[5; 6], 1);
        assert_eq!(plan.num_batches(), 1);
        // Empty order.
        let plan = plan_queue_balanced(Vec::new(), &[], 4);
        assert_eq!(plan.num_batches(), 0);
        assert_eq!(plan.total_queries(), 0);
    }

    #[test]
    fn transfer_seconds_uses_bandwidth() {
        let config = BatchingConfig {
            transfer_bytes_per_pair: 8,
            transfer_bandwidth: 8.0e9,
            ..BatchingConfig::default()
        };
        assert!((config.transfer_seconds(1_000_000_000) - 1.0).abs() < 1e-9);
    }
}
