//! Self-join configuration: which kernel variant, which mitigations.

use warpsim::{GpuConfig, IssueOrder, StepMode};

use crate::batching::BatchingConfig;
use crate::fallback::CpuFallbackModel;

/// Why an ε value was rejected at a request entry point.
///
/// Every front door — [`crate::SelfJoin::new`], the serve protocol, the CLI,
/// the bench drivers — funnels ε through [`validate_epsilon`] so a NaN,
/// infinite, or non-positive threshold surfaces as this one typed error
/// instead of panicking (or wrapping) deep inside the grid geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpsilonError {
    /// ε is NaN or infinite.
    NonFinite,
    /// ε is zero or negative (an empty query radius joins nothing and the
    /// grid would need infinitely many cells).
    NotPositive,
}

impl std::fmt::Display for EpsilonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // One canonical message: the CLI, the serve protocol and the bench
        // drivers all print this verbatim.
        match self {
            EpsilonError::NonFinite => {
                write!(
                    f,
                    "epsilon must be a finite, strictly positive number (got a non-finite value)"
                )
            }
            EpsilonError::NotPositive => {
                write!(
                    f,
                    "epsilon must be a finite, strictly positive number (got a non-positive value)"
                )
            }
        }
    }
}

impl std::error::Error for EpsilonError {}

/// Validates a request-supplied ε, returning it unchanged when acceptable.
pub fn validate_epsilon(epsilon: f32) -> Result<f32, EpsilonError> {
    if !epsilon.is_finite() {
        return Err(EpsilonError::NonFinite);
    }
    if epsilon <= 0.0 {
        return Err(EpsilonError::NotPositive);
    }
    Ok(epsilon)
}

/// Bounded recovery behaviour of the resilient executor.
///
/// Every backoff is counted in **model seconds** and accounted into the
/// join's response time (on real hardware the host waits before
/// re-submitting a failed launch; the device is idle meanwhile). Backoffs
/// grow geometrically with the attempt number via `backoff_multiplier`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-submissions of a transiently failed batch before the executor
    /// treats the device as unusable.
    pub max_transient_retries: u32,
    /// Batch splits the executor may perform **per plan unit** when result
    /// buffers overflow; past this ceiling the overflow error surfaces. The
    /// budget is per unit (a unit's split ancestry depth), never shared
    /// across units, so one unit's recovery can never be starved — or
    /// rescued — by another unit's splits. This is also what lets
    /// independent units execute on different host threads without their
    /// recovery state interacting.
    pub max_overflow_splits: u32,
    /// Static re-runs of a queue chunk after a detected counter fault
    /// before the fault surfaces as a typed error.
    pub max_counter_retries: u32,
    /// Base host backoff before re-submitting a transient failure, model
    /// seconds.
    pub transient_backoff_s: f64,
    /// Host re-plan cost per overflow split, model seconds.
    pub overflow_backoff_s: f64,
    /// Host cost of repairing the queue head after a counter fault, model
    /// seconds.
    pub counter_backoff_s: f64,
    /// Geometric growth factor of per-class backoff across attempts.
    pub backoff_multiplier: f64,
    /// Degrade remaining query points to the exact CPU fallback join after
    /// persistent device failure (`false` surfaces the error instead).
    pub cpu_fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_transient_retries: 3,
            max_overflow_splits: 32,
            max_counter_retries: 4,
            transient_backoff_s: 2e-3,
            overflow_backoff_s: 1e-3,
            counter_backoff_s: 5e-4,
            backoff_multiplier: 2.0,
            cpu_fallback: true,
        }
    }
}

impl RetryPolicy {
    /// The backoff for the `attempt`-th retry (1-based) of an error class
    /// with base backoff `base_s`, model seconds.
    pub fn backoff_for(&self, base_s: f64, attempt: u32) -> f64 {
        base_s
            * self
                .backoff_multiplier
                .powi(attempt.saturating_sub(1) as i32)
    }
}

/// Fleet-level failover behaviour of [`SelfJoin::run_on_fleet`]
/// (`crate::SelfJoin::run_on_fleet`).
///
/// When a shard's device latches `DeviceLost` (or exhausts the transient
/// budget of its [`RetryPolicy`]), the recovery layer checkpoints the
/// shard's completed units and re-cuts the *unexecuted* remainder
/// workload-aware across the surviving devices — the same
/// `partition_units` cut applied to a shrunken fleet. The CPU fallback
/// only fires when no device survives or the re-shard round budget is
/// exhausted. All recovery costs are accounted in **model seconds**; the
/// host-side re-cut itself is charged at zero model cost (it reuses the
/// already-computed per-unit workloads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Re-shard rounds the fleet may spend redistributing lost or
    /// straggling work before falling back. `0` disables fleet recovery
    /// entirely: a failed shard degrades its own remainder to the CPU
    /// fallback exactly as the pre-recovery executor did (`degrade` mode).
    pub max_reshard_rounds: u32,
    /// Straggler trigger: a shard whose response time (pipeline plus
    /// accrued backoff) exceeds `straggler_threshold ×` the fleet median
    /// has its unstarted tail units rebalanced onto under-loaded
    /// survivors. `<= 0` disables straggler mitigation (the default: the
    /// workload-aware cut already equalizes clean shards).
    pub straggler_threshold: f64,
    /// Degrade whatever work remains after the round budget (or the whole
    /// fleet) is exhausted to the exact CPU fallback; `false` surfaces the
    /// originating launch error instead.
    pub cpu_last_resort: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self::reshard()
    }
}

impl RecoveryPolicy {
    /// The default failover policy: up to four re-shard rounds, straggler
    /// mitigation off, CPU as the last resort.
    pub fn reshard() -> Self {
        Self {
            max_reshard_rounds: 4,
            straggler_threshold: 0.0,
            cpu_last_resort: true,
        }
    }

    /// The pre-recovery behaviour: no resharding; a failed shard degrades
    /// its own remainder straight to the CPU fallback (gated by
    /// [`RetryPolicy::cpu_fallback`]).
    pub fn degrade() -> Self {
        Self {
            max_reshard_rounds: 0,
            straggler_threshold: 0.0,
            cpu_last_resort: true,
        }
    }

    /// Builder-style: set the straggler trigger (multiple of the fleet
    /// median response time; `<= 0` disables).
    pub fn with_straggler_threshold(mut self, threshold: f64) -> Self {
        self.straggler_threshold = threshold;
        self
    }

    /// Builder-style: set the re-shard round budget.
    pub fn with_max_reshard_rounds(mut self, rounds: u32) -> Self {
        self.max_reshard_rounds = rounds;
        self
    }

    /// Builder-style: set whether exhausted recovery degrades to the CPU.
    pub fn with_cpu_last_resort(mut self, cpu: bool) -> Self {
        self.cpu_last_resort = cpu;
        self
    }

    /// Whether fleet failover (re-sharding) is enabled at all.
    pub fn reshard_enabled(&self) -> bool {
        self.max_reshard_rounds > 0
    }

    /// Short stable mode name (used by CLI flags and telemetry):
    /// `"reshard"` when failover is enabled, `"degrade"` otherwise.
    pub fn label(&self) -> &'static str {
        if self.reshard_enabled() {
            "reshard"
        } else {
            "degrade"
        }
    }

    /// Parses a [`RecoveryPolicy::label`] name into the corresponding
    /// canned policy.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "reshard" => Some(Self::reshard()),
            "degrade" => Some(Self::degrade()),
            _ => None,
        }
    }
}

/// The cell access pattern used by the range-query kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// The original `GPUCALCGLOBAL` pattern: every point compares against
    /// every candidate in all (up to `3^n`) adjacent cells. Each in-ε pair
    /// is therefore computed twice (once from each side).
    FullWindow,
    /// The `UNICOMP` pattern of Gowanlock & Karsin: cells with odd
    /// coordinates compare "forward" along per-dimension arrows, so each
    /// adjacent-cell pair is computed once and both orientations of a found
    /// pair are emitted after a single distance calculation. Workload per
    /// cell varies from 0 to `3^n - 1` neighbor cells.
    Unicomp,
    /// The paper's `LID-UNICOMP` pattern (§III-B): compare only to neighbor
    /// cells with a **larger linear id** than the origin cell. Same halving
    /// of distance calculations as `UNICOMP`, but every interior cell
    /// compares to exactly `(3^n - 1) / 2` neighbors — balanced work.
    LidUnicomp,
}

impl AccessPattern {
    /// Whether the pattern computes each pair once and emits both
    /// orientations (the unidirectional patterns) rather than computing each
    /// direction independently.
    pub fn is_unidirectional(&self) -> bool {
        !matches!(self, AccessPattern::FullWindow)
    }

    /// Short display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            AccessPattern::FullWindow => "GPUCALCGLOBAL",
            AccessPattern::Unicomp => "UNICOMP",
            AccessPattern::LidUnicomp => "LID-UNICOMP",
        }
    }
}

/// The load-balancing strategy applied across threads and warps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Balancing {
    /// Static strided assignment, hardware-arbitrary warp order (baseline).
    None,
    /// `SORTBYWL` (§III-C): each batch's points are sorted by quantified
    /// workload so warps are packed with similar-workload threads. The warp
    /// *execution* order remains up to the hardware scheduler.
    SortByWorkload,
    /// `WORKQUEUE` (§III-D): the whole dataset is sorted by workload and
    /// threads acquire points through a global atomic counter, forcing
    /// warps to execute in non-increasing workload order.
    WorkQueue,
}

impl Balancing {
    /// Short display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            Balancing::None => "STATIC",
            Balancing::SortByWorkload => "SORTBYWL",
            Balancing::WorkQueue => "WORKQUEUE",
        }
    }
}

/// Where the planner's sort and prefix-sum pre-passes execute.
///
/// The paper runs SORTBYWL's sort and the batch planner's prefix sums on the
/// device; this reproduction historically ran them as host-side
/// `sort_unstable_by`/folds, invisible to the cost model. `Device` routes
/// them through the warp-kernel primitive chains in `warpsim::primitives`,
/// whose model-seconds surface as `sort`/`scan` phase telemetry. The
/// **result** of planning is bit-identical across backends (the device
/// primitives are differentially tested against the host oracles), so the
/// canonical pair set and every recorded table are invariant; only telemetry
/// and the [`PrePassReport`](crate::PrePassReport) differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SortBackend {
    /// Host-side sorts and folds (default; keeps recorded tables invariant).
    #[default]
    Host,
    /// Warp-kernel radix sort / exclusive scan chains, costed in model
    /// cycles and admitted through the fault plane.
    Device,
}

impl SortBackend {
    /// Short display name (`"host"` / `"device"`).
    pub fn label(&self) -> &'static str {
        match self {
            SortBackend::Host => "host",
            SortBackend::Device => "device",
        }
    }

    /// Parses a display name back into a backend.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "host" => Some(SortBackend::Host),
            "device" => Some(SortBackend::Device),
            _ => None,
        }
    }
}

/// Which execution substrate runs the join's work units.
///
/// `Gpu` is the paper's configuration: every unit of the batch plan
/// executes as simulated device kernels. `Cpu` runs every unit on the
/// modeled host backend (the exact [`crate::fallback`] path promoted from
/// degradation target to peer). `Hybrid` cuts the workload-sorted unit
/// list between the two with the throughput-aware chooser of
/// [`crate::hybrid`], co-processing both sides and merging by plan-unit
/// order. The canonical pair set is identical across all three modes; the
/// modes differ only in the co-processed makespan and the
/// [`HybridReport`](crate::HybridReport) accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Every plan unit executes on the simulated GPU (default).
    #[default]
    Gpu,
    /// Every plan unit executes on the modeled CPU backend.
    Cpu,
    /// Units are cut between the GPU and the CPU backend by the
    /// throughput-aware chooser (or a forced split fraction).
    Hybrid,
}

impl ExecMode {
    /// Short display name (`"gpu"` / `"cpu"` / `"hybrid"`).
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Gpu => "gpu",
            ExecMode::Cpu => "cpu",
            ExecMode::Hybrid => "hybrid",
        }
    }

    /// Parses a display name back into a mode.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "gpu" => Some(ExecMode::Gpu),
            "cpu" => Some(ExecMode::Cpu),
            "hybrid" => Some(ExecMode::Hybrid),
            _ => None,
        }
    }
}

/// Full configuration of one self-join execution.
#[derive(Debug, Clone)]
pub struct SelfJoinConfig {
    /// The distance threshold ε.
    pub epsilon: f32,
    /// Threads per query point (§III-A). Must divide the warp size.
    pub k: u32,
    /// Cell access pattern.
    pub pattern: AccessPattern,
    /// Load-balancing strategy.
    pub balancing: Balancing,
    /// Batching scheme parameters.
    pub batching: BatchingConfig,
    /// The simulated GPU.
    pub gpu: GpuConfig,
    /// Seed for the arbitrary hardware scheduler model.
    pub scheduler_seed: u64,
    /// Overrides the warp issue order implied by `balancing` (ablations
    /// only: e.g. SORTBYWL with a forced in-order scheduler isolates the
    /// WORKQUEUE's ordering contribution).
    pub issue_override: Option<IssueOrder>,
    /// Bounded recovery behaviour under faults and overflows.
    pub retry: RetryPolicy,
    /// Fleet-level failover behaviour (re-sharding lost or straggling work
    /// across surviving devices; only consulted by `run_on_fleet`).
    pub recovery: RecoveryPolicy,
    /// The host CPU model used when the join degrades to the exact CPU
    /// fallback after persistent device failure.
    pub cpu_fallback: CpuFallbackModel,
    /// How the warp simulator advances lockstep rounds (host-side only;
    /// simulated results are bit-identical across modes).
    pub step_mode: StepMode,
    /// Where the planner's sort/scan pre-passes execute (see
    /// [`SortBackend`]).
    pub sort_backend: SortBackend,
    /// Which substrate executes the join's work units (see [`ExecMode`]).
    /// Consulted by the front-ends (CLI, bench, soak) to pick between
    /// [`SelfJoin::run`](crate::SelfJoin::run) and
    /// [`SelfJoin::run_hybrid`](crate::SelfJoin::run_hybrid).
    pub exec_mode: ExecMode,
    /// Host worker threads for intra-join parallelism: fleet shards,
    /// within-device batches, and warp micro-execution all run on up to
    /// this many OS threads. `0` means "auto" (available hardware
    /// parallelism). Purely host-side — canonical results, reports, model
    /// seconds, and telemetry artifacts are bit-identical for every value;
    /// only wall-clock time changes. Defaults to the `HOST_JOBS`
    /// environment variable when set, else auto.
    pub host_jobs: usize,
}

impl SelfJoinConfig {
    /// A baseline configuration (GPUCALCGLOBAL, `k = 1`, no balancing) with
    /// the given ε.
    pub fn new(epsilon: f32) -> Self {
        Self {
            epsilon,
            k: 1,
            pattern: AccessPattern::FullWindow,
            balancing: Balancing::None,
            batching: BatchingConfig::default(),
            gpu: GpuConfig::default(),
            scheduler_seed: 0xC0FFEE,
            issue_override: None,
            retry: RetryPolicy::default(),
            recovery: RecoveryPolicy::default(),
            cpu_fallback: CpuFallbackModel::default(),
            step_mode: StepMode::default(),
            sort_backend: SortBackend::default(),
            exec_mode: ExecMode::default(),
            host_jobs: std::env::var("HOST_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        }
    }

    /// The paper's best combination: WORKQUEUE + LID-UNICOMP + `k = 8`.
    pub fn optimized(epsilon: f32) -> Self {
        Self {
            k: 8,
            pattern: AccessPattern::LidUnicomp,
            balancing: Balancing::WorkQueue,
            ..Self::new(epsilon)
        }
    }

    /// Builder-style: set `k`.
    pub fn with_k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Builder-style: set the access pattern.
    pub fn with_pattern(mut self, pattern: AccessPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Builder-style: set the balancing strategy.
    pub fn with_balancing(mut self, balancing: Balancing) -> Self {
        self.balancing = balancing;
        self
    }

    /// Builder-style: set the batching configuration.
    pub fn with_batching(mut self, batching: BatchingConfig) -> Self {
        self.batching = batching;
        self
    }

    /// Builder-style: set the GPU model.
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Builder-style: set the retry/recovery policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style: set the fleet failover policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Builder-style: set the warp simulator step mode.
    pub fn with_step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Builder-style: set the sort/scan pre-pass backend.
    pub fn with_sort_backend(mut self, backend: SortBackend) -> Self {
        self.sort_backend = backend;
        self
    }

    /// Builder-style: set the execution substrate.
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Builder-style: set the host worker thread count (`0` = auto).
    pub fn with_host_jobs(mut self, jobs: usize) -> Self {
        self.host_jobs = jobs;
        self
    }

    /// The concrete host worker count: `host_jobs`, with `0` resolved to
    /// the available hardware parallelism.
    pub fn resolved_host_jobs(&self) -> usize {
        crate::pool::resolve(self.host_jobs)
    }

    /// The warp issue order implied by the balancing strategy: the
    /// WORKQUEUE forces in-order execution, everything else is at the
    /// mercy of the (modeled) hardware scheduler. An explicit
    /// `issue_override` wins over both.
    pub fn issue_order(&self) -> IssueOrder {
        if let Some(order) = self.issue_override {
            return order;
        }
        match self.balancing {
            Balancing::WorkQueue => IssueOrder::InOrder,
            _ => IssueOrder::Arbitrary {
                seed: self.scheduler_seed,
            },
        }
    }

    /// Builder-style: force a warp issue order (ablations).
    pub fn with_issue_override(mut self, order: IssueOrder) -> Self {
        self.issue_override = Some(order);
        self
    }

    /// A human-readable variant label, e.g. `"WORKQUEUE+LID-UNICOMP, k=8"`.
    pub fn label(&self) -> String {
        format!(
            "{}+{}, k={}",
            self.balancing.name(),
            self.pattern.name(),
            self.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_defaults() {
        let c = SelfJoinConfig::new(0.5);
        assert_eq!(c.epsilon, 0.5);
        assert_eq!(c.k, 1);
        assert_eq!(c.pattern, AccessPattern::FullWindow);
        assert_eq!(c.balancing, Balancing::None);
        assert!(matches!(c.issue_order(), IssueOrder::Arbitrary { .. }));
    }

    #[test]
    fn optimized_matches_paper_combination() {
        let c = SelfJoinConfig::optimized(0.5);
        assert_eq!(c.k, 8);
        assert_eq!(c.pattern, AccessPattern::LidUnicomp);
        assert_eq!(c.balancing, Balancing::WorkQueue);
        assert_eq!(c.issue_order(), IssueOrder::InOrder);
    }

    #[test]
    fn builders_compose() {
        let c = SelfJoinConfig::new(1.0)
            .with_k(4)
            .with_pattern(AccessPattern::Unicomp)
            .with_balancing(Balancing::SortByWorkload);
        assert_eq!(c.k, 4);
        assert_eq!(c.pattern, AccessPattern::Unicomp);
        assert_eq!(c.balancing, Balancing::SortByWorkload);
    }

    #[test]
    fn sort_backend_round_trips() {
        assert_eq!(SortBackend::default(), SortBackend::Host);
        for b in [SortBackend::Host, SortBackend::Device] {
            assert_eq!(SortBackend::by_name(b.label()), Some(b));
        }
        assert_eq!(SortBackend::by_name("gpu"), None);
        let c = SelfJoinConfig::new(0.5).with_sort_backend(SortBackend::Device);
        assert_eq!(c.sort_backend, SortBackend::Device);
    }

    #[test]
    fn exec_mode_round_trips() {
        assert_eq!(ExecMode::default(), ExecMode::Gpu);
        for m in [ExecMode::Gpu, ExecMode::Cpu, ExecMode::Hybrid] {
            assert_eq!(ExecMode::by_name(m.label()), Some(m));
        }
        assert_eq!(ExecMode::by_name("host"), None);
        let c = SelfJoinConfig::new(0.5).with_exec_mode(ExecMode::Hybrid);
        assert_eq!(c.exec_mode, ExecMode::Hybrid);
        assert_eq!(SelfJoinConfig::new(0.5).exec_mode, ExecMode::Gpu);
    }

    #[test]
    fn recovery_policy_round_trips() {
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::reshard());
        assert!(RecoveryPolicy::reshard().reshard_enabled());
        assert!(!RecoveryPolicy::degrade().reshard_enabled());
        for p in [RecoveryPolicy::reshard(), RecoveryPolicy::degrade()] {
            assert_eq!(RecoveryPolicy::by_name(p.label()), Some(p));
        }
        assert_eq!(RecoveryPolicy::by_name("retry"), None);
        let tuned = RecoveryPolicy::reshard()
            .with_straggler_threshold(1.5)
            .with_max_reshard_rounds(2)
            .with_cpu_last_resort(false);
        assert_eq!(tuned.straggler_threshold, 1.5);
        assert_eq!(tuned.max_reshard_rounds, 2);
        assert!(!tuned.cpu_last_resort);
        let c = SelfJoinConfig::new(0.5).with_recovery(RecoveryPolicy::degrade());
        assert_eq!(c.recovery, RecoveryPolicy::degrade());
    }

    #[test]
    fn epsilon_validation_is_typed() {
        assert_eq!(validate_epsilon(0.5), Ok(0.5));
        assert_eq!(validate_epsilon(f32::NAN), Err(EpsilonError::NonFinite));
        assert_eq!(
            validate_epsilon(f32::INFINITY),
            Err(EpsilonError::NonFinite)
        );
        assert_eq!(
            validate_epsilon(f32::NEG_INFINITY),
            Err(EpsilonError::NonFinite)
        );
        assert_eq!(validate_epsilon(0.0), Err(EpsilonError::NotPositive));
        assert_eq!(validate_epsilon(-1.0), Err(EpsilonError::NotPositive));
        // Both variants render the one unified message prefix.
        for e in [EpsilonError::NonFinite, EpsilonError::NotPositive] {
            assert!(e
                .to_string()
                .starts_with("epsilon must be a finite, strictly positive number"));
        }
    }

    #[test]
    fn pattern_properties() {
        assert!(!AccessPattern::FullWindow.is_unidirectional());
        assert!(AccessPattern::Unicomp.is_unidirectional());
        assert!(AccessPattern::LidUnicomp.is_unidirectional());
        assert_eq!(AccessPattern::LidUnicomp.name(), "LID-UNICOMP");
        assert_eq!(Balancing::WorkQueue.name(), "WORKQUEUE");
    }
}
