//! Hybrid CPU/GPU co-execution: throughput-aware splitting of the planned
//! unit list between the simulated GPU and the host CPU workers.
//!
//! The paper's balancing optimizations stop at the device boundary; this
//! module promotes the exact CPU path of [`crate::fallback`] from a
//! degradation target to a peer backend, following the CPU/GPU workload-split
//! designs of *Hybrid KNN-Join* and HySet's co-process partitioning scheme.
//!
//! The split is a single **cut point** in the workload-sorted unit list: units
//! `[0, cut)` run on the GPU, units `[cut, n)` run on the CPU pool. The cut is
//! chosen by [`choose_cut`], which minimizes the predicted makespan
//! `max(gpu_prefix / gpu_rate, cpu_suffix / cpu_rate + dispatch)` under the
//! two backends' model-seconds cost models ([`warpsim::GpuConfig`] for the
//! GPU side, [`crate::fallback::CpuBackendModel`] for the CPU side).
//!
//! Execution itself lives in [`crate::executor::SelfJoin::run_hybrid`]. To
//! preserve the exact-result invariant *and* the canonical-report invariant
//! (the hybrid [`crate::JoinReport`] is bit-identical to the single-device
//! GPU run, just as fleet runs are for any device count), the co-executor is
//! **differential**: the GPU still executes the full plan through the shared
//! `execute_units` path, the CPU pool independently recomputes its share, and
//! every CPU segment is checked pair-for-pair against the GPU segment it
//! replaces before the merge. A mismatch is a typed error, never a silent
//! result difference — this is the co-processing test harness the hybrid
//! suites build on. CPU-side cost lands only in the [`HybridReport`] and
//! telemetry (`hybrid.cut`, `hybrid.backend_done`), mirroring how the device
//! pre-pass keeps tables backend-invariant.

use crate::executor::JoinReport;
use crate::fallback::{CpuBackendModel, CpuFallbackStats};
use crate::fleet::inclusive_weight_prefix;
use crate::result::ResultSet;
use warpsim::{BatchTiming, GpuConfig, StreamPipeline};

/// Modeled GPU weight throughput (workload units per model second).
///
/// Workload weights count candidate distance calculations (see
/// [`crate::workload`]), so the GPU's peak rate is its total concurrent lane
/// count times the derated clock, divided by the cycles one distance
/// calculation costs. This is a *peak* (fully occupied, fully converged)
/// rate: real kernels fall short of it through warp divergence and scheduling
/// gaps, which makes the cut chooser GPU-optimistic — it under-assigns work
/// to the CPU side, the conservative direction for the hybrid makespan bound.
pub fn gpu_weight_throughput(gpu: &GpuConfig, dims: u32) -> f64 {
    let lanes = gpu.total_warp_slots() as f64 * gpu.warp_size as f64;
    let cycles_per_weight = gpu.cost.distance_op(dims).cycles as f64;
    lanes * gpu.effective_clock_hz() / cycles_per_weight
}

/// The cut point picked for a hybrid run, with the model's predictions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutChoice {
    /// Units `[0, cut)` go to the GPU, `[cut, n)` to the CPU pool.
    pub cut: usize,
    /// Predicted GPU-side model seconds for the prefix at this cut.
    pub predicted_gpu_s: f64,
    /// Predicted CPU-side model seconds for the suffix at this cut.
    pub predicted_cpu_s: f64,
    /// Whether the cut was forced by a fixed fraction rather than chosen.
    pub forced: bool,
}

fn predicted_sides(
    prefix: &[u128],
    cut: usize,
    gpu_rate: f64,
    cpu_rate: f64,
    dispatch_s: f64,
) -> (f64, f64) {
    let total = prefix.last().copied().unwrap_or(0) as f64;
    let gpu_work = if cut == 0 {
        0.0
    } else {
        prefix[cut - 1] as f64
    };
    let cpu_units = prefix.len() - cut;
    let gpu_s = if gpu_work == 0.0 {
        0.0
    } else {
        gpu_work / gpu_rate
    };
    let cpu_s = if cpu_units == 0 {
        0.0
    } else {
        (total - gpu_work) / cpu_rate + cpu_units as f64 * dispatch_s
    };
    (gpu_s, cpu_s)
}

/// Picks the cut that minimizes the predicted hybrid makespan.
///
/// Scans every cut `0..=n` over the inclusive workload prefix and returns the
/// one minimizing `max(gpu_side, cpu_side)`, where the GPU side is the prefix
/// workload over `gpu_rate` and the CPU side is the suffix workload over
/// `cpu_rate` plus a per-unit `dispatch_s` overhead. Ties prefer the larger
/// cut (more GPU work): the GPU rate is a peak estimate, so leaning on the
/// GPU is the conservative choice.
///
/// Never panics. Degenerate inputs pick valid boundary cuts: a non-positive
/// or non-finite `cpu_rate` keeps everything on the GPU (`cut = n`), a
/// non-positive or non-finite `gpu_rate` pushes everything to the CPU
/// (`cut = 0`) unless the CPU rate is also invalid (then `cut = n`), and an
/// empty unit list yields `cut = 0`.
pub fn choose_cut(weights: &[u64], gpu_rate: f64, cpu_rate: f64, dispatch_s: f64) -> CutChoice {
    let n = weights.len();
    let cpu_ok = cpu_rate.is_finite() && cpu_rate > 0.0;
    let gpu_ok = gpu_rate.is_finite() && gpu_rate > 0.0;
    let prefix = inclusive_weight_prefix(weights);
    let dispatch_s = if dispatch_s.is_finite() && dispatch_s > 0.0 {
        dispatch_s
    } else {
        0.0
    };
    if n == 0 || !cpu_ok {
        // All-GPU (also the both-invalid fallback: the GPU path is the
        // primary executor and handles its own degradation).
        let cut = n;
        let (g, c) = if gpu_ok {
            predicted_sides(&prefix, cut, gpu_rate, 1.0, 0.0)
        } else {
            (0.0, 0.0)
        };
        return CutChoice {
            cut,
            predicted_gpu_s: g,
            predicted_cpu_s: c,
            forced: false,
        };
    }
    if !gpu_ok {
        let (g, c) = predicted_sides(&prefix, 0, 1.0, cpu_rate, dispatch_s);
        return CutChoice {
            cut: 0,
            predicted_gpu_s: g,
            predicted_cpu_s: c,
            forced: false,
        };
    }
    let mut best = CutChoice {
        cut: n,
        predicted_gpu_s: 0.0,
        predicted_cpu_s: 0.0,
        forced: false,
    };
    let mut best_makespan = f64::INFINITY;
    for cut in 0..=n {
        let (g, c) = predicted_sides(&prefix, cut, gpu_rate, cpu_rate, dispatch_s);
        let makespan = g.max(c);
        // `>=` so ties move toward the larger (more-GPU) cut.
        if best_makespan >= makespan {
            best_makespan = makespan;
            best = CutChoice {
                cut,
                predicted_gpu_s: g,
                predicted_cpu_s: c,
                forced: false,
            };
        }
    }
    best
}

/// Picks the cut that minimizes the **measured** hybrid makespan.
///
/// The throughput-based [`choose_cut`] predicts from peak rates, which is
/// blind to fixed per-batch costs (launch, transfer) that dominate small
/// workloads. The co-executor can do better: the GPU shadow execution has
/// already produced every unit's actual batch timings in model seconds, and
/// the CPU backend's cost model is additive per unit — so the exact makespan
/// of *every* candidate cut can be evaluated and the argmin taken.
///
/// `unit_timings[u]` holds unit `u`'s executed batch timings (empty for
/// units that produced no batches), `gpu_fixed_s` is recovery time charged
/// to the GPU side at any cut, and `cpu_unit_s[u]` is unit `u`'s exact CPU
/// cost under the backend model (including its dispatch overhead). The score
/// of a cut is `max(pipeline(units < cut) + gpu_fixed_s, Σ cpu_unit_s[cut..])`
/// with the GPU prefix rescheduled as its own stream pipeline; ties prefer
/// the larger (more-GPU) cut. Because both sides are exact and additive,
/// the chosen cut's measured makespan is ≤ the measured makespan of every
/// forced cut — including the all-GPU and all-CPU endpoints.
///
/// Never panics; an empty unit list yields `cut = 0`.
pub fn choose_cut_measured(
    unit_timings: &[Vec<BatchTiming>],
    gpu_fixed_s: f64,
    cpu_unit_s: &[f64],
    num_streams: usize,
) -> CutChoice {
    let n = unit_timings.len().min(cpu_unit_s.len());
    let gpu_fixed_s = if gpu_fixed_s.is_finite() && gpu_fixed_s > 0.0 {
        gpu_fixed_s
    } else {
        0.0
    };
    // Suffix CPU cost per cut.
    let mut cpu_suffix = vec![0.0f64; n + 1];
    for u in (0..n).rev() {
        let s = if cpu_unit_s[u].is_finite() && cpu_unit_s[u] > 0.0 {
            cpu_unit_s[u]
        } else {
            0.0
        };
        cpu_suffix[u] = cpu_suffix[u + 1] + s;
    }
    let mut best = CutChoice {
        cut: 0,
        predicted_gpu_s: gpu_fixed_s,
        predicted_cpu_s: cpu_suffix[0],
        forced: false,
    };
    let mut best_makespan = f64::INFINITY;
    let mut timings: Vec<BatchTiming> = Vec::new();
    for cut in 0..=n {
        if cut > 0 {
            timings.extend(unit_timings[cut - 1].iter().copied());
        }
        let gpu_s = if timings.is_empty() {
            gpu_fixed_s
        } else {
            StreamPipeline::new(num_streams).schedule(&timings).total_s + gpu_fixed_s
        };
        let cpu_s = cpu_suffix[cut];
        let makespan = gpu_s.max(cpu_s);
        // `>=` so ties move toward the larger (more-GPU) cut.
        if best_makespan >= makespan {
            best_makespan = makespan;
            best = CutChoice {
                cut,
                predicted_gpu_s: gpu_s,
                predicted_cpu_s: cpu_s,
                forced: false,
            };
        }
    }
    best
}

/// Builds the cut for a forced CPU fraction instead of choosing one.
///
/// `fraction` is the share of *units* (not workload) handed to the CPU side,
/// counted from the light tail of the workload-sorted list:
/// `cpu_units = round(fraction · n)`, `cut = n − cpu_units`. The fraction is
/// clamped to `[0, 1]`; a NaN fraction behaves as `0.0` (all-GPU). The
/// returned predictions use the same cost model as [`choose_cut`].
pub fn forced_cut(
    weights: &[u64],
    fraction: f64,
    gpu_rate: f64,
    cpu_rate: f64,
    dispatch_s: f64,
) -> CutChoice {
    let n = weights.len();
    let fraction = if fraction.is_nan() {
        0.0
    } else {
        fraction.clamp(0.0, 1.0)
    };
    let cpu_units = ((fraction * n as f64).round() as usize).min(n);
    let cut = n - cpu_units;
    let prefix = inclusive_weight_prefix(weights);
    let gpu_rate = if gpu_rate.is_finite() && gpu_rate > 0.0 {
        gpu_rate
    } else {
        1.0
    };
    let cpu_rate = if cpu_rate.is_finite() && cpu_rate > 0.0 {
        cpu_rate
    } else {
        1.0
    };
    let dispatch_s = if dispatch_s.is_finite() && dispatch_s > 0.0 {
        dispatch_s
    } else {
        0.0
    };
    let (g, c) = predicted_sides(&prefix, cut, gpu_rate, cpu_rate, dispatch_s);
    CutChoice {
        cut,
        predicted_gpu_s: g,
        predicted_cpu_s: c,
        forced: true,
    }
}

/// How a hybrid run splits and staffs its two backends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridPolicy {
    /// Cost model for the CPU backend (calibrated over the fallback model).
    pub cpu: CpuBackendModel,
    /// Worker threads for the CPU pool (clamped to at least 1).
    pub jobs: usize,
    /// When set, force this CPU unit fraction instead of choosing the cut.
    /// `Some(0.0)` is all-GPU, `Some(1.0)` is all-CPU.
    pub forced_cpu_fraction: Option<f64>,
}

impl Default for HybridPolicy {
    fn default() -> Self {
        Self {
            cpu: CpuBackendModel::default(),
            jobs: 1,
            forced_cpu_fraction: None,
        }
    }
}

impl HybridPolicy {
    /// A policy that forces every unit onto the CPU backend
    /// ([`crate::config::ExecMode::Cpu`] routes through this).
    pub fn cpu_only() -> Self {
        Self {
            forced_cpu_fraction: Some(1.0),
            ..Self::default()
        }
    }

    /// Sets the CPU worker count (builder style).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Forces a fixed CPU unit fraction (builder style).
    pub fn with_forced_cpu_fraction(mut self, fraction: f64) -> Self {
        self.forced_cpu_fraction = Some(fraction);
        self
    }
}

/// Accounting for one hybrid run's split and both backends' costs.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridReport {
    /// Total planned work units.
    pub units: usize,
    /// The cut point: units `[0, cut)` ran on the GPU.
    pub cut: usize,
    /// Units assigned to (and kept from) the GPU side.
    pub gpu_units: usize,
    /// Units the CPU side computed (planned suffix plus any spills).
    pub cpu_units: usize,
    /// GPU-remnant units respilled onto the CPU backend after a device loss
    /// (reshard recovery); zero on clean runs and under degrade recovery.
    pub spilled_units: usize,
    /// Whether the cut was forced by a fixed fraction.
    pub forced: bool,
    /// The chooser's predicted GPU-side model seconds.
    pub predicted_gpu_s: f64,
    /// The chooser's predicted CPU-side model seconds.
    pub predicted_cpu_s: f64,
    /// Observed GPU-side response: rescheduled prefix pipeline plus recovery.
    pub gpu_response_s: f64,
    /// Observed CPU-side model seconds under the backend cost model.
    pub cpu_model_s: f64,
    /// Work the CPU side actually performed.
    pub cpu_stats: CpuFallbackStats,
    /// `max(gpu_response_s, cpu_model_s)`: the overlapped completion time.
    pub makespan_s: f64,
    /// CPU worker threads used.
    pub jobs: usize,
}

/// A hybrid join's outcome: the merged pair set, the canonical
/// (backend-invariant) join report, and the hybrid split accounting.
#[derive(Debug, Clone)]
pub struct HybridOutcome {
    /// Every pair found, merged in plan-unit order.
    pub result: ResultSet,
    /// Canonical report — bit-identical to the single-device GPU run.
    pub report: JoinReport,
    /// The split decision and per-backend accounting.
    pub hybrid: HybridReport,
}

/// Deterministic worker pool, re-exported from [`crate::pool`].
///
/// The PR-3 bench pool was first promoted here for the hybrid CPU backend;
/// it now lives in [`crate::pool`], shared by every host-parallel layer
/// (sweep cells, the CPU backend, fleet shards, within-device batches).
pub use crate::pool::par_map;

#[cfg(test)]
mod tests {
    use super::*;

    const GPU_RATE: f64 = 1e6;
    const CPU_RATE: f64 = 1e4;

    #[test]
    fn empty_units_cut_zero_without_panic() {
        let c = choose_cut(&[], GPU_RATE, CPU_RATE, 0.0);
        assert_eq!(c.cut, 0);
        assert_eq!(c.predicted_gpu_s, 0.0);
        assert_eq!(c.predicted_cpu_s, 0.0);
        assert!(!c.forced);
    }

    #[test]
    fn single_unit_picks_a_valid_boundary() {
        let c = choose_cut(&[100], GPU_RATE, CPU_RATE, 0.0);
        assert!(c.cut <= 1);
        // The GPU is 100× faster, so the single unit should stay there.
        assert_eq!(c.cut, 1);
    }

    #[test]
    fn zero_cpu_rate_keeps_everything_on_gpu() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = choose_cut(&[5, 5, 5], GPU_RATE, bad, 0.0);
            assert_eq!(c.cut, 3, "cpu_rate={bad}");
            assert_eq!(c.predicted_cpu_s, 0.0);
        }
    }

    #[test]
    fn zero_gpu_rate_pushes_everything_to_cpu() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let c = choose_cut(&[5, 5, 5], bad, CPU_RATE, 0.0);
            assert_eq!(c.cut, 0, "gpu_rate={bad}");
            assert_eq!(c.predicted_gpu_s, 0.0);
        }
    }

    #[test]
    fn both_rates_invalid_fall_back_to_all_gpu() {
        let c = choose_cut(&[5, 5, 5], f64::NAN, 0.0, 0.0);
        assert_eq!(c.cut, 3);
    }

    #[test]
    fn equal_rates_on_equal_weights_split_in_half() {
        let c = choose_cut(&[10, 10, 10, 10], 1.0, 1.0, 0.0);
        assert_eq!(c.cut, 2);
        assert_eq!(c.predicted_gpu_s, c.predicted_cpu_s);
    }

    #[test]
    fn all_equal_weights_with_skewed_rates_lean_gpu() {
        let c = choose_cut(&[7; 100], GPU_RATE, CPU_RATE, 0.0);
        // 100:1 rate ratio → roughly 1 unit in 101 goes to the CPU.
        assert!(c.cut >= 98, "cut={}", c.cut);
        assert!(c.cut <= 100);
    }

    #[test]
    fn chosen_cut_never_beats_no_cut_or_all_cpu_under_the_model() {
        let weights = [400u64, 200, 100, 50, 25, 12, 6, 3, 1, 1];
        let c = choose_cut(&weights, 10.0, 5.0, 0.01);
        let all_gpu = forced_cut(&weights, 0.0, 10.0, 5.0, 0.01);
        let all_cpu = forced_cut(&weights, 1.0, 10.0, 5.0, 0.01);
        let makespan = |x: &CutChoice| x.predicted_gpu_s.max(x.predicted_cpu_s);
        assert!(makespan(&c) <= makespan(&all_gpu) + 1e-12);
        assert!(makespan(&c) <= makespan(&all_cpu) + 1e-12);
    }

    #[test]
    fn dispatch_overhead_discourages_many_tiny_cpu_units() {
        let weights = [100u64, 1, 1, 1, 1, 1, 1, 1];
        let free = choose_cut(&weights, 10.0, 10.0, 0.0);
        let taxed = choose_cut(&weights, 10.0, 10.0, 100.0);
        assert!(taxed.cut >= free.cut);
        assert_eq!(taxed.cut, weights.len());
    }

    #[test]
    fn forced_fraction_endpoints_and_rounding() {
        let weights = [4u64, 3, 2, 1];
        assert_eq!(forced_cut(&weights, 0.0, 1.0, 1.0, 0.0).cut, 4);
        assert_eq!(forced_cut(&weights, 1.0, 1.0, 1.0, 0.0).cut, 0);
        assert_eq!(forced_cut(&weights, 0.5, 1.0, 1.0, 0.0).cut, 2);
        // Clamping and NaN: out-of-range forces a boundary, NaN is all-GPU.
        assert_eq!(forced_cut(&weights, 7.0, 1.0, 1.0, 0.0).cut, 0);
        assert_eq!(forced_cut(&weights, -3.0, 1.0, 1.0, 0.0).cut, 4);
        assert_eq!(forced_cut(&weights, f64::NAN, 1.0, 1.0, 0.0).cut, 4);
        assert!(forced_cut(&weights, 0.5, 1.0, 1.0, 0.0).forced);
    }

    #[test]
    fn forced_cut_survives_invalid_rates() {
        let c = forced_cut(&[5, 5], 0.5, f64::NAN, 0.0, f64::NAN);
        assert_eq!(c.cut, 1);
        assert!(c.predicted_gpu_s.is_finite());
        assert!(c.predicted_cpu_s.is_finite());
    }

    fn timing(kernel_s: f64) -> BatchTiming {
        BatchTiming {
            kernel_s,
            transfer_s: 0.1 * kernel_s,
        }
    }

    #[test]
    fn measured_cut_handles_degenerate_inputs() {
        let empty = choose_cut_measured(&[], 0.0, &[], 4);
        assert_eq!(empty.cut, 0);
        assert_eq!(empty.predicted_gpu_s, 0.0);
        // Free CPU → everything moves off the GPU.
        let free_cpu =
            choose_cut_measured(&[vec![timing(1.0)], vec![timing(1.0)]], 0.0, &[0.0; 2], 4);
        assert_eq!(free_cpu.cut, 0);
        // Unafforable CPU → everything stays (ties prefer the larger cut).
        let dear_cpu =
            choose_cut_measured(&[vec![timing(1.0)], vec![timing(1.0)]], 0.0, &[1e9; 2], 4);
        assert_eq!(dear_cpu.cut, 2);
        // NaN costs are treated as zero, never propagated.
        let nan = choose_cut_measured(&[vec![timing(1.0)]], f64::NAN, &[f64::NAN], 4);
        assert!(nan.predicted_gpu_s.is_finite());
        assert!(nan.predicted_cpu_s.is_finite());
    }

    #[test]
    fn measured_cut_is_no_worse_than_any_forced_cut() {
        // Skewed GPU timings, flat CPU costs: the argmin must beat every
        // candidate cut evaluated with the same score — in particular the
        // all-GPU and all-CPU endpoints.
        let unit_timings: Vec<Vec<BatchTiming>> = [8.0, 4.0, 2.0, 1.0, 0.5, 0.25]
            .iter()
            .map(|&k| vec![timing(k)])
            .collect();
        let cpu_unit_s = [40.0, 20.0, 10.0, 5.0, 2.5, 1.25];
        let n = unit_timings.len();
        let chosen = choose_cut_measured(&unit_timings, 0.0, &cpu_unit_s, 4);
        let score = |cut: usize| {
            let timings: Vec<BatchTiming> = unit_timings[..cut].iter().flatten().copied().collect();
            let gpu = StreamPipeline::new(4).schedule(&timings).total_s;
            let cpu: f64 = cpu_unit_s[cut..].iter().sum();
            gpu.max(cpu)
        };
        let best = chosen.predicted_gpu_s.max(chosen.predicted_cpu_s);
        for cut in 0..=n {
            assert!(
                best <= score(cut) + 1e-12,
                "cut {} (score {}) beats chosen {} (score {best})",
                cut,
                score(cut),
                chosen.cut
            );
        }
        assert!(
            chosen.cut > 0 && chosen.cut < n,
            "skew should split interior"
        );
    }

    #[test]
    fn gpu_throughput_is_positive_and_dimension_sensitive() {
        let gpu = GpuConfig::default();
        let d2 = gpu_weight_throughput(&gpu, 2);
        let d6 = gpu_weight_throughput(&gpu, 6);
        assert!(d2 > 0.0);
        assert!(d6 > 0.0);
        assert!(d2 > d6, "higher dims cost more cycles per weight");
    }

    #[test]
    fn par_map_is_order_preserving_and_jobs_invariant() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(1, items.clone(), |x| x * x + 1);
        for jobs in [2, 3, 8] {
            let parallel = par_map(jobs, items.clone(), |x| x * x + 1);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
        assert_eq!(serial[256], 256 * 256 + 1);
        let empty: Vec<u64> = par_map(4, Vec::<u64>::new(), |x| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn cpu_only_policy_forces_the_full_fraction() {
        let p = HybridPolicy::cpu_only();
        assert_eq!(p.forced_cpu_fraction, Some(1.0));
        assert_eq!(HybridPolicy::default().forced_cpu_fraction, None);
        assert_eq!(HybridPolicy::default().with_jobs(0).jobs, 1);
    }
}
