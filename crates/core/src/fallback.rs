//! Exact CPU fallback join for graceful degradation.
//!
//! When the simulated device fails persistently (device lost, or a launch
//! that keeps failing past its retry budget), the executor completes the
//! join on the host: every query point not yet covered by a salvaged batch
//! is range-queried here, against the same ε-grid and the same resolved
//! access pattern the kernels use. Mirroring the kernel's probe/emission
//! logic exactly — including [`ProbeRelation::OwnCellForward`]'s
//! forward-only scan and the symmetric double emission of the
//! unidirectional patterns — guarantees that the union of GPU-salvaged and
//! CPU-computed pairs is the exact brute-force pair set, no matter where
//! the device died.
//!
//! CPU time is modeled (like `bench::CpuModel` does for SUPER-EGO) by
//! dividing operation counts by a modeled host throughput, so degraded runs
//! stay comparable in model seconds.

use epsgrid::{euclidean_dist_sq, GridIndex, Point};
use warpsim::CostModel;

use crate::kernels::ResolvedPatterns;
use crate::patterns::ProbeRelation;

/// Operation counts of a CPU fallback join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuFallbackStats {
    /// Query points processed.
    pub queries: usize,
    /// Distance calculations performed.
    pub distance_calcs: u64,
    /// Ordered result pairs emitted.
    pub pairs: u64,
}

/// The modeled host CPU the executor degrades onto (defaults approximate
/// the paper's 2× Xeon E5-2620 v4: 16 cores at 2.1 GHz, ~2 effective
/// SIMD/ILP lanes — the same machine `bench::CpuModel` models for
/// SUPER-EGO).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuFallbackModel {
    /// Physical cores.
    pub cores: u32,
    /// Effective SIMD/ILP lanes per core for this workload.
    pub simd_lanes: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
}

impl Default for CpuFallbackModel {
    fn default() -> Self {
        Self {
            cores: 16,
            simd_lanes: 2,
            clock_hz: 2.1e9,
        }
    }
}

impl CpuFallbackModel {
    /// Converts fallback operation counts into model seconds, using the same
    /// per-op cycle costs as the GPU lanes so both substrates share one cost
    /// model.
    pub fn model_seconds(&self, stats: &CpuFallbackStats, dims: u32, cost: &CostModel) -> f64 {
        let cycles = stats.distance_calcs as f64 * cost.distance_op(dims).cycles as f64
            + stats.pairs as f64 * cost.emit_op().cycles as f64;
        cycles / (self.cores as f64 * self.simd_lanes as f64 * self.clock_hz)
    }
}

/// The calibrated host backend model of the hybrid co-executor: the
/// degradation-path [`CpuFallbackModel`] promoted to a peer, with the two
/// costs a co-processing CPU side pays that a tail-end fallback does not.
///
/// A fallback run owns the whole machine after the device is gone; a
/// co-processing run shares the host with the GPU driver loop, pays a
/// per-work-item dispatch on the worker pool, and merges its segments into
/// the canonical output. `parallel_efficiency` derates the fallback
/// throughput for that interference; `dispatch_overhead_s` charges each
/// work item's pool hand-off. Both are model-seconds calibration constants
/// in the same sense as `GpuConfig::ipc_derate` (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuBackendModel {
    /// The underlying host model (cores, SIMD lanes, clock) shared with
    /// the degradation path.
    pub base: CpuFallbackModel,
    /// Fraction of the fallback throughput a co-processing run sustains
    /// (scheduling interference, segment merge): `0 < e <= 1`.
    pub parallel_efficiency: f64,
    /// Host-side dispatch cost per work item handed to the worker pool,
    /// model seconds.
    pub dispatch_overhead_s: f64,
}

impl Default for CpuBackendModel {
    fn default() -> Self {
        Self {
            base: CpuFallbackModel::default(),
            parallel_efficiency: 0.85,
            dispatch_overhead_s: 2e-6,
        }
    }
}

impl CpuBackendModel {
    /// Converts co-processed operation counts into model seconds: the
    /// fallback model derated by `parallel_efficiency`, plus the dispatch
    /// overhead of the `items` work items that produced them.
    pub fn model_seconds(
        &self,
        stats: &CpuFallbackStats,
        dims: u32,
        cost: &CostModel,
        items: usize,
    ) -> f64 {
        self.base.model_seconds(stats, dims, cost) / self.parallel_efficiency.max(f64::MIN_POSITIVE)
            + items as f64 * self.dispatch_overhead_s
    }

    /// Quantified-workload units (candidate counts, the currency of
    /// [`unit_workloads`](crate::unit_workloads)) this backend retires per
    /// model second — the CPU-side rate the hybrid cut chooser compares
    /// against [`gpu_weight_throughput`](crate::hybrid::gpu_weight_throughput).
    pub fn weight_throughput(&self, dims: u32, cost: &CostModel) -> f64 {
        let cycles_per_weight = cost.distance_op(dims).cycles as f64;
        self.base.cores as f64
            * self.base.simd_lanes as f64
            * self.base.clock_hz
            * self.parallel_efficiency
            / cycles_per_weight
    }
}

/// Range-queries `queries` on the host, appending result pairs to `out`.
///
/// Exactly replays the kernel's per-query behaviour: the query's home-cell
/// probe list from `resolved`, the forward-only scan base for
/// [`ProbeRelation::OwnCellForward`], and single- vs double-orientation
/// emission per relation.
pub fn cpu_join_queries<const N: usize>(
    grid: &GridIndex<N>,
    points: &[Point<N>],
    resolved: &ResolvedPatterns,
    epsilon: f32,
    queries: &[u32],
    out: &mut Vec<(u32, u32)>,
) -> CpuFallbackStats {
    let eps_sq = epsilon * epsilon;
    let mut stats = CpuFallbackStats {
        queries: queries.len(),
        ..CpuFallbackStats::default()
    };
    for &query in queries {
        let home = grid.home_cell_of(query as usize);
        let q = &points[query as usize];
        for probe in &resolved.per_cell[home] {
            let Some(cell) = probe.found else { continue };
            let cell_points = grid.cell_points(cell as usize);
            let base_lo = match probe.relation {
                ProbeRelation::OwnCellForward => {
                    (resolved.pos_in_cell[query as usize] + 1) as usize
                }
                _ => 0,
            };
            for &cand in &cell_points[base_lo.min(cell_points.len())..] {
                stats.distance_calcs += 1;
                let d2 = euclidean_dist_sq(q, &points[cand as usize]);
                if d2 <= eps_sq && cand != query {
                    match probe.relation {
                        ProbeRelation::AllBidirectional => {
                            out.push((query, cand));
                            stats.pairs += 1;
                        }
                        ProbeRelation::AllSymmetric | ProbeRelation::OwnCellForward => {
                            out.push((query, cand));
                            out.push((cand, query));
                            stats.pairs += 2;
                        }
                    }
                }
            }
        }
    }
    stats
}

/// Range-queries several query sets on the host, one result vector per set
/// (in set order), returning the summed operation counts.
///
/// The fleet's CPU last resort uses this to finish each unexecuted work
/// item as its own pair segment, so the merged fleet result can interleave
/// CPU-completed units with GPU-completed units in original plan order.
pub fn cpu_join_query_sets<const N: usize>(
    grid: &GridIndex<N>,
    points: &[Point<N>],
    resolved: &ResolvedPatterns,
    epsilon: f32,
    sets: &[&[u32]],
    out_per_set: &mut Vec<Vec<(u32, u32)>>,
) -> CpuFallbackStats {
    let mut stats = CpuFallbackStats::default();
    for &queries in sets {
        let mut out = Vec::new();
        let s = cpu_join_queries(grid, points, resolved, epsilon, queries, &mut out);
        stats.queries += s.queries;
        stats.distance_calcs += s.distance_calcs;
        stats.pairs += s.pairs;
        out_per_set.push(out);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_join;
    use crate::config::AccessPattern;

    fn clustered_points() -> Vec<Point<2>> {
        let mut pts = Vec::new();
        for i in 0..12 {
            pts.push([0.3 + 0.015 * i as f32, 0.4 + 0.01 * (i % 3) as f32]);
        }
        pts.push([2.0, 2.0]);
        pts.push([2.05, 2.02]);
        pts.push([5.0, 5.0]);
        pts.push([-1.0, 3.0]);
        pts
    }

    fn reference(pts: &[Point<2>], eps: f32) -> Vec<(u32, u32)> {
        let mut pairs = brute_force_join(pts, eps);
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn cpu_join_matches_brute_force_for_every_pattern() {
        let pts = clustered_points();
        let eps = 0.12;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let queries: Vec<u32> = (0..pts.len() as u32).collect();
        for pattern in [
            AccessPattern::FullWindow,
            AccessPattern::Unicomp,
            AccessPattern::LidUnicomp,
        ] {
            let resolved = ResolvedPatterns::compute(&grid, pattern);
            let mut out = Vec::new();
            let stats = cpu_join_queries(&grid, &pts, &resolved, eps, &queries, &mut out);
            out.sort_unstable();
            assert_eq!(out, reference(&pts, eps), "{pattern:?}");
            assert_eq!(stats.pairs as usize, out.len());
            assert!(stats.distance_calcs > 0);
        }
    }

    #[test]
    fn partial_query_sets_compose_to_the_full_pair_set() {
        // The degradation contract: GPU-completed queries plus CPU-completed
        // queries must union to the exact pair set, for any split point.
        let pts = clustered_points();
        let eps = 0.12;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let resolved = ResolvedPatterns::compute(&grid, AccessPattern::LidUnicomp);
        let all: Vec<u32> = (0..pts.len() as u32).collect();
        for split in [0, 1, 5, pts.len() - 1, pts.len()] {
            let mut out = Vec::new();
            cpu_join_queries(&grid, &pts, &resolved, eps, &all[..split], &mut out);
            cpu_join_queries(&grid, &pts, &resolved, eps, &all[split..], &mut out);
            out.sort_unstable();
            assert_eq!(out, reference(&pts, eps), "split at {split}");
        }
    }

    #[test]
    fn query_sets_compose_and_sum_stats() {
        let pts = clustered_points();
        let eps = 0.12;
        let grid = GridIndex::build(&pts, eps).unwrap();
        let resolved = ResolvedPatterns::compute(&grid, AccessPattern::Unicomp);
        let all: Vec<u32> = (0..pts.len() as u32).collect();
        let sets: Vec<&[u32]> = vec![&all[..4], &all[4..4], &all[4..]];
        let mut per_set = Vec::new();
        let stats = cpu_join_query_sets(&grid, &pts, &resolved, eps, &sets, &mut per_set);
        assert_eq!(per_set.len(), 3);
        assert!(per_set[1].is_empty());
        let mut combined: Vec<(u32, u32)> = per_set.concat();
        combined.sort_unstable();
        assert_eq!(combined, reference(&pts, eps));
        assert_eq!(stats.queries, pts.len());
        assert_eq!(stats.pairs as usize, combined.len());
    }

    #[test]
    fn backend_model_is_a_derated_fallback_model() {
        let cost = warpsim::GpuConfig::default().cost;
        let stats = CpuFallbackStats {
            queries: 10,
            distance_calcs: 50_000,
            pairs: 400,
        };
        let backend = CpuBackendModel::default();
        let fallback_s = backend.base.model_seconds(&stats, 2, &cost);
        let backend_s = backend.model_seconds(&stats, 2, &cost, 0);
        // Co-processing never beats owning the whole machine.
        assert!(backend_s >= fallback_s);
        // Dispatch overhead is charged per work item.
        let with_items = backend.model_seconds(&stats, 2, &cost, 8);
        assert!((with_items - backend_s - 8.0 * backend.dispatch_overhead_s).abs() < 1e-15);
        // Throughput is finite, positive, and derated by the efficiency.
        let full = CpuBackendModel {
            parallel_efficiency: 1.0,
            ..backend
        };
        let t = backend.weight_throughput(2, &cost);
        assert!(t > 0.0 && t < full.weight_throughput(2, &cost));
    }

    #[test]
    fn model_seconds_scale_with_work() {
        let model = CpuFallbackModel::default();
        let cost = warpsim::GpuConfig::default().cost;
        let small = CpuFallbackStats {
            queries: 1,
            distance_calcs: 100,
            pairs: 10,
        };
        let large = CpuFallbackStats {
            queries: 1,
            distance_calcs: 10_000,
            pairs: 10,
        };
        let s = model.model_seconds(&small, 2, &cost);
        let l = model.model_seconds(&large, 2, &cost);
        assert!(s > 0.0 && l > s * 50.0);
    }
}
