//! Brute-force reference self-join (`O(|D|²)`), used to verify every kernel
//! variant and the CPU comparator.

use epsgrid::{within_epsilon, Point};

/// Computes the self-join by comparing every pair of points.
///
/// Returns **ordered** pairs `(a, b)` with `a ≠ b` and `dist(a, b) ≤ ε` —
/// both orientations of every match, matching the kernels' output
/// convention. Self-pairs are excluded.
pub fn brute_force_join<const N: usize>(points: &[Point<N>], epsilon: f32) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for (i, a) in points.iter().enumerate() {
        for (j, b) in points.iter().enumerate().skip(i + 1) {
            if within_epsilon(a, b, epsilon) {
                pairs.push((i as u32, j as u32));
                pairs.push((j as u32, i as u32));
            }
        }
    }
    pairs
}

/// Counts each point's ε-neighbors by brute force (excluding itself).
pub fn brute_force_neighbor_counts<const N: usize>(points: &[Point<N>], epsilon: f32) -> Vec<u64> {
    let mut counts = vec![0u64; points.len()];
    for (i, a) in points.iter().enumerate() {
        for (j, b) in points.iter().enumerate().skip(i + 1) {
            if within_epsilon(a, b, epsilon) {
                counts[i] += 1;
                counts[j] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_symmetric_pairs() {
        let pts: Vec<Point<2>> = vec![[0.0, 0.0], [0.5, 0.0], [3.0, 3.0]];
        let mut pairs = brute_force_join(&pts, 1.0);
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn excludes_self_pairs() {
        let pts: Vec<Point<2>> = vec![[0.0, 0.0]];
        assert!(brute_force_join(&pts, 10.0).is_empty());
    }

    #[test]
    fn duplicate_points_join_each_other() {
        let pts: Vec<Point<2>> = vec![[1.0, 1.0], [1.0, 1.0], [1.0, 1.0]];
        let pairs = brute_force_join(&pts, 0.0);
        // 3 unordered pairs × 2 orientations
        assert_eq!(pairs.len(), 6);
    }

    #[test]
    fn neighbor_counts_match_pair_list() {
        let pts: Vec<Point<3>> = vec![[0.0; 3], [0.1, 0.0, 0.0], [0.2, 0.0, 0.0], [9.0, 9.0, 9.0]];
        let counts = brute_force_neighbor_counts(&pts, 0.15);
        assert_eq!(counts, vec![1, 2, 1, 0]);
        let pairs = brute_force_join(&pts, 0.15);
        let total: u64 = counts.iter().sum();
        assert_eq!(pairs.len() as u64, total);
    }
}
