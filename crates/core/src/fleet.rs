//! Multi-device sharding: partitioning one batch plan across a
//! [`DeviceFleet`](warpsim::DeviceFleet).
//!
//! The paper's mitigations balance work *within* one GPU; this module
//! extends the same workload quantification (§III-B) *across* GPUs. The
//! executor plans the join once — exactly as it would for a single device —
//! and then cuts the plan's units (strided batches, or queue chunks of the
//! workload-sorted `D'`) into one contiguous region per device:
//!
//! - [`ShardStrategy::WorkloadAware`] cuts on **cumulative unit workload**
//!   (the summed per-point candidate counts, i.e. quantified distance
//!   calculations), equalizing total work per shard;
//! - [`ShardStrategy::EqualCount`] cuts on unit count — the naive baseline
//!   the scaling table compares against. On workload-sorted plans the first
//!   region then holds the heaviest units and dominates the makespan.
//!
//! Because the regions are contiguous in plan order and every launch inside
//! a region is parameterized exactly as the single-device executor would
//! parameterize it (a queue chunk pops from its device's counter, aimed at
//! the chunk's start), the concatenation of the shard results in device
//! order reproduces the single-device run bit for bit: same pairs in the
//! same order, same per-batch model times, same canonical report. What the
//! fleet *adds* is the per-device view: each shard gets its own stream
//! pipeline and fault accounting, and the fleet's **makespan** is the
//! maximum shard response time.

use std::ops::Range;

use warpsim::PipelineReport;

use crate::batching::BatchPlan;
use crate::executor::{DegradationReport, JoinReport};
use crate::result::ResultSet;

/// How plan units are divided among the fleet's devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Cut contiguous regions on cumulative quantified workload, equalizing
    /// total distance calculations per shard (the default).
    #[default]
    WorkloadAware,
    /// Cut contiguous regions of (near-)equal unit count — the naive
    /// baseline.
    EqualCount,
}

impl ShardStrategy {
    /// Short stable name (used by CLI flags and telemetry).
    pub fn label(&self) -> &'static str {
        match self {
            ShardStrategy::WorkloadAware => "workload",
            ShardStrategy::EqualCount => "count",
        }
    }

    /// Parses a [`ShardStrategy::label`] name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "workload" => Some(ShardStrategy::WorkloadAware),
            "count" => Some(ShardStrategy::EqualCount),
            _ => None,
        }
    }
}

/// Quantified workload of every unit of a batch plan: the summed per-point
/// candidate counts of the unit's query points. `per_point` is indexed by
/// point id (as produced by
/// [`WorkloadProfile::per_point`](crate::WorkloadProfile::per_point)).
pub fn unit_workloads(plan: &BatchPlan, per_point: &[u64]) -> Vec<u64> {
    match plan {
        BatchPlan::Strided { batches } => batches
            .iter()
            .map(|b| b.iter().map(|&q| per_point[q as usize]).sum())
            .collect(),
        BatchPlan::Queue { order, chunks } => chunks
            .iter()
            .map(|c| {
                order[c.clone()]
                    .iter()
                    .map(|&q| per_point[q as usize])
                    .sum()
            })
            .collect(),
    }
}

/// Cuts `weights.len()` plan units into exactly `devices` contiguous
/// regions (some possibly empty, in unit order).
///
/// The workload-aware cut closes region `r` as soon as the cumulative
/// weight reaches `r+1` shares of the total, so each region's load lands as
/// close to `total / devices` as unit granularity allows; a zero total
/// falls back to the equal-count cut.
pub fn partition_units(
    weights: &[u64],
    devices: usize,
    strategy: ShardStrategy,
) -> Vec<Range<usize>> {
    partition_units_from_prefix(&inclusive_weight_prefix(weights), devices, strategy)
}

/// The inclusive cumulative-weight prefix over plan units
/// (`prefix[i] = weights[0] + … + weights[i]`, widened to `u128`): the
/// shared input of every contiguous cut over the unit list — the fleet's
/// [`partition_units_from_prefix`] regions and the hybrid co-executor's
/// GPU/CPU cut (see [`crate::hybrid::choose_cut`]).
pub fn inclusive_weight_prefix(weights: &[u64]) -> Vec<u128> {
    let mut acc: u128 = 0;
    weights
        .iter()
        .map(|&w| {
            acc += w as u128;
            acc
        })
        .collect()
}

/// [`partition_units`] from a precomputed inclusive weight prefix
/// (`prefix[i] = weights[0] + … + weights[i]`). The workload-aware cut
/// reads only the prefix, so both sort backends — the host fold and the
/// device exclusive-scan chain — select identical cut points by
/// construction.
pub fn partition_units_from_prefix(
    inclusive_prefix: &[u128],
    devices: usize,
    strategy: ShardStrategy,
) -> Vec<Range<usize>> {
    let devices = devices.max(1);
    let n = inclusive_prefix.len();
    let total: u128 = inclusive_prefix.last().copied().unwrap_or(0);
    let mut regions: Vec<Range<usize>> = Vec::with_capacity(devices);
    match strategy {
        ShardStrategy::WorkloadAware if total > 0 => {
            let mut start = 0usize;
            for (i, &acc) in inclusive_prefix.iter().enumerate() {
                let target = (total * (regions.len() as u128 + 1)).div_ceil(devices as u128);
                if acc >= target && regions.len() + 1 < devices {
                    regions.push(start..i + 1);
                    start = i + 1;
                }
            }
            regions.push(start..n);
        }
        _ => {
            let per = n.div_ceil(devices).max(1);
            let mut start = 0usize;
            while start < n && regions.len() + 1 < devices {
                regions.push(start..(start + per).min(n));
                start = (start + per).min(n);
            }
            regions.push(start..n);
        }
    }
    while regions.len() < devices {
        regions.push(n..n);
    }
    regions
}

/// One device's view of a fleet join.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The device that executed this shard (fleet index).
    pub device: u64,
    /// Contiguous plan-unit region *initially* assigned to this shard;
    /// recovery may move units in or out afterwards (see `reassigned_in` /
    /// `reassigned_out`).
    pub units: Range<usize>,
    /// Query points in the region.
    pub queries: usize,
    /// Quantified workload (summed candidate counts) of the region.
    pub workload: u64,
    /// Batches this shard executed (splits included).
    pub batches: usize,
    /// Result pairs this shard produced (GPU and CPU fallback).
    pub pairs: usize,
    /// This device's own stream-pipeline schedule.
    pub pipeline: PipelineReport,
    /// Fault-recovery accounting local to this shard; `None` when clean.
    pub degradation: Option<DegradationReport>,
    /// Shard response time: pipeline plus this shard's serial recovery
    /// (backoffs and CPU fallback), model seconds.
    pub response_time_s: f64,
    /// Work items this device received from failed or straggling shards.
    pub reassigned_in: usize,
    /// Work items this device handed off (lost to failover or rebalanced
    /// away as a straggler).
    pub reassigned_out: usize,
}

/// Health state transition of one device during fleet recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceHealth {
    /// The device latched `DeviceLost`; its remaining units were handed
    /// off.
    Lost,
    /// The device exhausted the transient retry budget; treated as unusable
    /// for the rest of the join.
    TransientExhausted,
    /// The device finished but ran past the straggler threshold; its tail
    /// units were speculatively re-executed elsewhere.
    Straggler,
    /// The device received re-sharded work from a failed or straggling
    /// peer.
    Reassigned,
}

impl DeviceHealth {
    /// Short stable name (used in telemetry and CLI output).
    pub fn label(&self) -> &'static str {
        match self {
            DeviceHealth::Lost => "lost",
            DeviceHealth::TransientExhausted => "transient_exhausted",
            DeviceHealth::Straggler => "straggler",
            DeviceHealth::Reassigned => "reassigned",
        }
    }
}

/// One entry of the fleet's chronological per-device health timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthEvent {
    /// The device whose health changed (fleet index).
    pub device: u64,
    /// The re-shard round in which the transition happened (round 0 is the
    /// initial assignment).
    pub round: u32,
    /// The new health state.
    pub state: DeviceHealth,
    /// Work items involved in the transition (handed off or received).
    pub units: usize,
}

/// Recovery accounting of a fleet join; all-default when the join ran
/// clean.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetRecoveryReport {
    /// Re-shard rounds actually spent (failover and straggler rebalancing
    /// both draw from the same
    /// [`RecoveryPolicy::max_reshard_rounds`](crate::RecoveryPolicy::max_reshard_rounds)
    /// budget).
    pub reshard_rounds: u32,
    /// Total work items moved between devices by recovery.
    pub reassigned_units: usize,
    /// Devices that latched `DeviceLost` or exhausted their transient
    /// budget.
    pub devices_lost: usize,
    /// Straggler rebalancing passes that actually moved work.
    pub straggler_rebalances: u32,
    /// Query points that ended on the exact CPU last resort.
    pub cpu_last_resort_points: usize,
    /// Result pairs produced by the CPU last resort.
    pub cpu_last_resort_pairs: u64,
    /// Serial host cost of the CPU last resort, model seconds.
    pub cpu_last_resort_model_s: f64,
    /// Chronological per-device health timeline.
    pub health: Vec<HealthEvent>,
}

impl FleetRecoveryReport {
    /// Whether recovery intervened at all.
    pub fn intervened(&self) -> bool {
        self.reshard_rounds > 0
            || self.devices_lost > 0
            || self.cpu_last_resort_points > 0
            || !self.health.is_empty()
    }
}

/// The fleet-level breakdown of a multi-device join.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The partitioning strategy that cut the shards.
    pub strategy: ShardStrategy,
    /// Per-device shard reports, in device order.
    pub shards: Vec<ShardReport>,
    /// Fleet makespan: the maximum shard response time plus any serial CPU
    /// last resort, model seconds — the wall-clock of the join when the
    /// devices run concurrently.
    pub makespan_s: f64,
    /// Failover / straggler-rebalancing accounting; all-default when the
    /// join ran clean.
    pub recovery: FleetRecoveryReport,
}

impl FleetReport {
    /// Ratio of the heaviest shard's quantified workload to the mean — 1.0
    /// is a perfect cut. Degenerate fleets (no shards, or only
    /// empty-region shards) report 1.0: there is no imbalance without
    /// work.
    pub fn workload_imbalance(&self) -> f64 {
        let loads: Vec<f64> = self.shards.iter().map(|s| s.workload as f64).collect();
        if loads.is_empty() {
            return 1.0;
        }
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        if !mean.is_finite() || mean <= 0.0 {
            return 1.0;
        }
        loads.iter().copied().fold(0.0_f64, f64::max) / mean
    }

    /// Jain's fairness index over per-shard response times:
    /// `(Σx)² / (n · Σx²)`. 1.0 means every device finished at the same
    /// instant; `1/n` means one device did everything. Idle (zero-response)
    /// shards count toward `n`, so over-provisioned fleets read as unfair —
    /// which they are. Degenerate fleets (no shards, or no work at all)
    /// report 1.0.
    pub fn jain_fairness(&self) -> f64 {
        let times: Vec<f64> = self.shards.iter().map(|s| s.response_time_s).collect();
        let sum: f64 = times.iter().sum();
        let sum_sq: f64 = times.iter().map(|t| t * t).sum();
        if times.is_empty() || !sum.is_finite() || sum <= 0.0 || sum_sq <= 0.0 {
            return 1.0;
        }
        (sum * sum) / (times.len() as f64 * sum_sq)
    }
}

/// A fleet join's outcome: the merged pair set, the canonical
/// (device-count-invariant) join report, and the per-device breakdown.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The exact self-join result, merged in plan (input) order.
    pub result: ResultSet,
    /// Canonical report: bit-identical to the single-device
    /// [`SelfJoin::run`](crate::SelfJoin::run) on a clean homogeneous
    /// fleet, regardless of device count.
    pub report: JoinReport,
    /// The per-device breakdown and makespan.
    pub fleet: FleetReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_partition_equalizes_shares() {
        // Heaviest-first weights, as a workload-sorted queue plan produces.
        let weights = vec![100, 80, 40, 30, 20, 10, 10, 10];
        let regions = partition_units(&weights, 3, ShardStrategy::WorkloadAware);
        assert_eq!(regions.len(), 3);
        // Coverage: contiguous, disjoint, complete.
        let mut expected_start = 0;
        for r in &regions {
            assert_eq!(r.start, expected_start);
            expected_start = r.end;
        }
        assert_eq!(expected_start, weights.len());
        let load = |r: &Range<usize>| -> u64 { weights[r.clone()].iter().sum() };
        let loads: Vec<u64> = regions.iter().map(load).collect();
        let max = *loads.iter().max().unwrap();
        // Equal-count would put 100+80+40 = 220 of the 300 total in the
        // first region; the workload cut must do strictly better.
        let naive = partition_units(&weights, 3, ShardStrategy::EqualCount);
        let naive_max = naive.iter().map(load).max().unwrap();
        assert!(max < naive_max, "workload cut {max} vs naive {naive_max}");
        assert!(
            max <= 180,
            "no share should exceed ~total/devices + one unit"
        );
    }

    #[test]
    fn equal_count_partition_is_contiguous_and_complete() {
        let weights = vec![1u64; 10];
        let regions = partition_units(&weights, 4, ShardStrategy::EqualCount);
        assert_eq!(regions.len(), 4);
        assert_eq!(regions[0], 0..3);
        assert_eq!(regions[3], 9..10);
        let covered: usize = regions.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 10);
    }

    #[test]
    fn single_device_gets_everything() {
        for strategy in [ShardStrategy::WorkloadAware, ShardStrategy::EqualCount] {
            let regions = partition_units(&[5, 5, 5], 1, strategy);
            assert_eq!(regions, vec![0..3]);
        }
    }

    #[test]
    fn more_devices_than_units_pads_empty_regions() {
        let regions = partition_units(&[7, 3], 4, ShardStrategy::WorkloadAware);
        assert_eq!(regions.len(), 4);
        assert_eq!(regions.iter().map(|r| r.len()).sum::<usize>(), 2);
        assert!(regions[2].is_empty() && regions[3].is_empty());
        let naive = partition_units(&[7, 3], 4, ShardStrategy::EqualCount);
        assert_eq!(naive.len(), 4);
        assert_eq!(naive.iter().map(|r| r.len()).sum::<usize>(), 2);
    }

    #[test]
    fn zero_total_workload_falls_back_to_count() {
        let regions = partition_units(&[0, 0, 0, 0], 2, ShardStrategy::WorkloadAware);
        assert_eq!(regions, vec![0..2, 2..4]);
    }

    #[test]
    fn empty_plan_yields_empty_regions() {
        let regions = partition_units(&[], 3, ShardStrategy::WorkloadAware);
        assert_eq!(regions, vec![0..0, 0..0, 0..0]);
    }

    #[test]
    fn unit_workloads_cover_both_plan_kinds() {
        let per_point = vec![10u64, 20, 30, 40];
        let strided = BatchPlan::Strided {
            batches: vec![vec![0, 2], vec![1, 3]],
        };
        assert_eq!(unit_workloads(&strided, &per_point), vec![40, 60]);
        let queue = BatchPlan::Queue {
            order: vec![3, 2, 1, 0],
            chunks: vec![0..1, 1..3, 3..4],
        };
        assert_eq!(unit_workloads(&queue, &per_point), vec![40, 50, 10]);
    }

    fn empty_pipeline() -> PipelineReport {
        PipelineReport {
            total_s: 0.0,
            kernel_busy_s: 0.0,
            transfer_busy_s: 0.0,
            kernel_starts: Vec::new(),
            transfer_ends: Vec::new(),
            streams: 1,
        }
    }

    fn shard(device: u64, workload: u64, response_time_s: f64) -> ShardReport {
        ShardReport {
            device,
            units: 0..0,
            queries: 0,
            workload,
            batches: 0,
            pairs: 0,
            pipeline: empty_pipeline(),
            degradation: None,
            response_time_s,
            reassigned_in: 0,
            reassigned_out: 0,
        }
    }

    fn report(shards: Vec<ShardReport>) -> FleetReport {
        FleetReport {
            strategy: ShardStrategy::WorkloadAware,
            shards,
            makespan_s: 0.0,
            recovery: FleetRecoveryReport::default(),
        }
    }

    #[test]
    fn workload_imbalance_guards_degenerate_fleets() {
        // 0-shard fleet: no work, no imbalance.
        assert_eq!(report(Vec::new()).workload_imbalance(), 1.0);
        // All shards empty-regioned (more devices than units): the old
        // fold(f64::MIN, max) seed must not leak.
        let idle = report(vec![shard(0, 0, 0.0), shard(1, 0, 0.0)]);
        assert_eq!(idle.workload_imbalance(), 1.0);
        assert!(idle.workload_imbalance().is_finite());
        // Lost-device-only report: the surviving accounting may carry zero
        // workload on every shard yet a degradation on one of them.
        let mut lost = shard(0, 0, 3.0);
        lost.degradation = Some(DegradationReport {
            batches_salvaged: 0,
            points_degraded: 10,
            cpu_pairs: 4,
            cpu_model_s: 3.0,
            transient_retries: 0,
            overflow_splits: 0,
            counter_retries: 0,
            transfer_stalls: 0,
            backoff_s: 0.0,
            device_lost: true,
        });
        let r = report(vec![lost]);
        assert_eq!(r.workload_imbalance(), 1.0);
        // A real imbalance still reads through.
        let skewed = report(vec![shard(0, 30, 0.0), shard(1, 10, 0.0)]);
        assert_eq!(skewed.workload_imbalance(), 1.5);
    }

    #[test]
    fn jain_fairness_reads_response_spread() {
        // Perfectly fair fleet.
        let fair = report(vec![shard(0, 1, 2.0), shard(1, 1, 2.0)]);
        assert!((fair.jain_fairness() - 1.0).abs() < 1e-12);
        // One device does everything: J = 1/n.
        let unfair = report(vec![
            shard(0, 1, 4.0),
            shard(1, 0, 0.0),
            shard(2, 0, 0.0),
            shard(3, 0, 0.0),
        ]);
        assert!((unfair.jain_fairness() - 0.25).abs() < 1e-12);
        // Degenerate fleets are defined as fair.
        assert_eq!(report(Vec::new()).jain_fairness(), 1.0);
        assert_eq!(report(vec![shard(0, 0, 0.0)]).jain_fairness(), 1.0);
    }

    #[test]
    fn recovery_report_default_is_clean() {
        let r = FleetRecoveryReport::default();
        assert!(!r.intervened());
        assert_eq!(r.reshard_rounds, 0);
        let mut touched = r.clone();
        touched.reshard_rounds = 1;
        assert!(touched.intervened());
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [ShardStrategy::WorkloadAware, ShardStrategy::EqualCount] {
            assert_eq!(ShardStrategy::by_name(s.label()), Some(s));
        }
        assert_eq!(ShardStrategy::by_name("nonsense"), None);
        assert_eq!(ShardStrategy::default(), ShardStrategy::WorkloadAware);
    }
}
